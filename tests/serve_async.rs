//! Differential and behavioural suite for the async serving front
//! (`ServiceHandle` / `JobRequest` / `JobTicket` / the result memo).
//!
//! The worker count honours `QITS_POOL_WORKERS` (CI runs the suite at 2
//! and oversubscribed at 8), so every property here doubles as a
//! contention test at several widths.
//!
//! Covered:
//! * **Differential, bit-for-bit**: a mixed batch submitted through the
//!   async front (with mixed priorities) must equal the same batch
//!   through the blocking `submit` path must equal a fresh serial engine
//!   per job — exactly, not approximately. Specs pin `gc_policy(None)`,
//!   which also makes the `QITS_REORDER` CI leg inert here (reordering
//!   rides collections), so exact equality holds on every matrix leg.
//! * **Cancellation stops work**: a token tripped at the k-th GC
//!   safepoint ends the computation with `QitsError::Cancelled` after
//!   exactly k polls — strictly fewer than the uncancelled run's — and
//!   the session survives; pre-tripped tokens shed at dequeue.
//! * **Backpressure**: a 1-deep queue refuses the third submission with
//!   `QueueFull`, nothing is enqueued, and the refusal is counted.
//! * **Deadlines**: a zero-budget job is shed with `DeadlineExpired`.
//! * **The memo**: duplicate submissions return bit-identical outputs
//!   and count hits; a memo shared across pools over *different* systems
//!   never crosses results between them.
//! * **Tickets as futures**: `.await` works from a minimal hand-rolled
//!   executor (no runtime dependency).

use std::future::Future;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::serve::{JobRequest, Priority};
use qits::{
    run_job, CancelToken, EnginePool, EngineSpec, Job, JobOutput, JobTicket, QitsError, ResultMemo,
    Strategy,
};
use qits_circuit::generators::QtsSpec;
use qits_circuit::{Circuit, Gate, Operation};

fn worker_count() -> usize {
    std::env::var("QITS_POOL_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// A minimal executor: enough to prove `JobTicket: Future` against a
/// real `Waker`, with no async runtime in the dependency tree.
fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

fn grover_spec() -> EngineSpec {
    EngineSpec::new(qits_circuit::generators::grover(3)).gc_policy(None)
}

fn qrw_spec() -> EngineSpec {
    EngineSpec::new(qits_circuit::generators::qrw(4, 0.125)).gc_policy(None)
}

/// Strict structural equality on outputs — the differential verdict.
/// Amplitudes compare with `==` on purpose: both sides run `run_job` on
/// engines stamped from one spec with GC (and therefore reordering) off,
/// so any inequality is a real divergence, not float noise.
fn assert_outputs_equal(a: &JobOutput, b: &JobOutput, what: &str) {
    match (a, b) {
        (JobOutput::Image(x), JobOutput::Image(y)) => {
            assert_eq!(x.dim, y.dim, "{what}: image dim");
            assert_eq!(x.amplitudes, y.amplitudes, "{what}: image amplitudes");
        }
        (JobOutput::Reachability(x), JobOutput::Reachability(y)) => {
            assert_eq!(
                (x.dim, x.iterations, x.converged),
                (y.dim, y.iterations, y.converged),
                "{what}: reachability"
            );
        }
        (
            JobOutput::Invariant {
                holds: x,
                reach: xr,
            },
            JobOutput::Invariant {
                holds: y,
                reach: yr,
            },
        ) => {
            assert_eq!(x, y, "{what}: invariant verdict");
            assert_eq!((xr.dim, xr.iterations), (yr.dim, yr.iterations), "{what}");
        }
        (JobOutput::Equivalence { equivalent: x }, JobOutput::Equivalence { equivalent: y }) => {
            assert_eq!(x, y, "{what}: equivalence verdict");
        }
        _ => panic!("{what}: output variants differ"),
    }
}

const N: u32 = 3;

fn arb_gate() -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..N;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q).prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
    ]
}

fn arb_circuit(max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 1..=max_len).prop_map(|gates| {
        let mut c = Circuit::new(N);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole differential: async front == blocking pool == fresh
    /// serial engine, bit for bit, on randomly generated systems.
    #[test]
    fn async_front_agrees_with_sync_pool_and_serial(
        circuit in arb_circuit(6),
        probe in arb_circuit(4),
    ) {
        let system = QtsSpec {
            name: "rand".into(),
            n_qubits: N,
            operations: vec![Operation::from_circuit("rand", &circuit)],
            initial_states: vec![vec![(qits_num::Cplx::ONE, qits_num::Cplx::ZERO); N as usize]],
        };
        let spec = EngineSpec::new(system)
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .gc_policy(None);
        let jobs = vec![
            Job::Image { densify: true },
            Job::reachability(8),
            Job::equivalence(probe.clone(), probe),
            Job::Image { densify: true },
        ];

        // Async front, mixed priorities.
        let pool = EnginePool::builder(spec.clone())
            .workers(worker_count())
            .build()
            .unwrap();
        let handle = pool.handle();
        let tickets: Vec<JobTicket> = jobs
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let priority = [Priority::High, Priority::Normal, Priority::Low][i % 3];
                handle
                    .try_submit(JobRequest::new(job.clone()).priority(priority))
                    .unwrap()
            })
            .collect();
        let front: Vec<JobOutput> =
            tickets.into_iter().map(|t| t.join().unwrap()).collect();
        pool.shutdown();

        // Blocking pool path, same spec.
        let pool = EnginePool::builder(spec.clone())
            .workers(worker_count())
            .build()
            .unwrap();
        let sync: Vec<JobOutput> = pool
            .submit_batch(jobs.clone())
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        pool.shutdown();

        // Fresh serial engine per job, same spec, same run_job.
        for (i, job) in jobs.iter().enumerate() {
            let mut engine = spec.build().unwrap();
            let serial = run_job(&mut engine, job).unwrap();
            assert_outputs_equal(&front[i], &sync[i], &format!("job {i}: front vs sync"));
            assert_outputs_equal(&front[i], &serial, &format!("job {i}: front vs serial"));
        }
    }
}

#[test]
fn tickets_await_from_a_minimal_executor() {
    let pool = EnginePool::builder(grover_spec())
        .workers(worker_count())
        .build()
        .unwrap();
    let handle = pool.handle();
    let a = handle.submit(Job::image());
    let b = handle.submit(Job::reachability(8));
    let out_a = block_on(a).unwrap();
    let out_b = block_on(b).unwrap();
    assert_eq!(out_a.image().unwrap().dim, 2);
    assert_eq!(out_b.reachability().unwrap().dim, 2);
}

#[test]
fn one_deep_queue_refuses_with_queue_full() {
    // One worker, depth 1: job A occupies the worker (we wait for its
    // dequeue via the live queue-depth stat), job B fills the queue, and
    // job C must then be refused at admission — a submission-time error,
    // not a failed ticket. If the worker finishes A before C is even
    // submitted (pathological scheduling on a loaded CI box), retry with
    // a fresh pool rather than flake.
    for _attempt in 0..5 {
        let pool = EnginePool::builder(qrw_spec())
            .workers(1)
            .queue_depth(1)
            .build()
            .unwrap();
        let handle = pool.handle();
        let a = handle.submit(Job::reachability(64));
        while handle.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let b = handle.submit(Job::image());
        match handle.try_submit(Job::image()) {
            Err(QitsError::QueueFull { depth }) => {
                assert_eq!(depth, 1);
                assert!(a.join().is_ok());
                assert!(b.join().is_ok());
                let stats = pool.shutdown();
                assert_eq!(stats.jobs_rejected, 1);
                assert_eq!(stats.jobs_submitted, 2, "a refused job is never submitted");
                assert_eq!(stats.jobs_completed, 2);
                return;
            }
            Ok(c) => {
                // The worker drained A and B already: no backlog existed
                // at C's admission. Clean up and try again.
                let _ = (a.join(), b.join(), c.join());
                pool.shutdown();
            }
            Err(other) => panic!("expected QueueFull, got {other:?}"),
        }
    }
    panic!("could not provoke QueueFull in five attempts");
}

#[test]
fn zero_budget_deadlines_are_shed_at_dequeue() {
    let pool = EnginePool::builder(grover_spec())
        .workers(worker_count())
        .build()
        .unwrap();
    let handle = pool.handle();
    let doomed = handle
        .try_submit(JobRequest::new(Job::reachability(999)).deadline(Duration::ZERO))
        .unwrap();
    assert_eq!(doomed.join().unwrap_err(), QitsError::DeadlineExpired);
    let ok = handle.submit(Job::image());
    assert!(ok.join().is_ok());
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_expired, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_failed, 0, "a shed deadline is not a failure");
}

#[test]
fn cancellation_stops_work_mid_run_by_safepoint_count() {
    // Baseline: the full run's safepoint poll count on a fresh session.
    let spec = qrw_spec();
    let mut engine = spec.build().unwrap();
    let before = engine.manager().stats().safepoints_polled;
    run_job(&mut engine, &Job::reachability(16)).unwrap();
    let full_polls = engine.manager().stats().safepoints_polled - before;
    assert!(
        full_polls > 4,
        "the baseline workload must poll enough safepoints to cancel \
         inside ({full_polls} polled)"
    );

    // Same job, token tripping at the midpoint: the computation must end
    // as `Cancelled` after exactly that many polls — early exit, proven
    // by the counter, not by timing.
    let trip_at = full_polls / 2;
    let mut engine = spec.build().unwrap();
    let token = CancelToken::cancel_after(trip_at);
    engine.set_cancel_token(Some(token.clone()));
    let err = run_job(&mut engine, &Job::reachability(16)).unwrap_err();
    assert_eq!(err, QitsError::Cancelled);
    assert_eq!(
        token.polls(),
        trip_at,
        "the computation must stop at the tripping poll, not run on"
    );
    // The session survives the unwind: clear the token and compute again.
    engine.set_cancel_token(None);
    assert!(run_job(&mut engine, &Job::image()).is_ok());
}

#[test]
fn pool_cancellation_sheds_queued_and_unwinds_running_jobs() {
    let pool = EnginePool::builder(qrw_spec())
        .workers(worker_count())
        .build()
        .unwrap();
    let handle = pool.handle();

    // Pre-tripped token: shed at dequeue, never runs.
    let token = CancelToken::new();
    token.cancel();
    let shed = handle
        .try_submit(JobRequest::new(Job::reachability(64)).cancel_token(token))
        .unwrap();
    assert_eq!(shed.join().unwrap_err(), QitsError::Cancelled);

    // Deterministic mid-run trip: the token arms itself at the 3rd GC
    // safepoint the running job polls.
    let token = CancelToken::cancel_after(3);
    let unwound = handle
        .try_submit(JobRequest::new(Job::reachability(64)).cancel_token(token.clone()))
        .unwrap();
    assert_eq!(unwound.join().unwrap_err(), QitsError::Cancelled);
    assert_eq!(
        token.polls(),
        3,
        "the worker must stop at the tripping poll"
    );

    // Ticket-side cancel on a queued job (single-token convenience path).
    let late = handle.submit(Job::image());
    late.cancel();
    // Whatever the race outcome (shed before running vs completed
    // first), the books must balance and the pool must stay healthy.
    let _ = late.join();
    let ok = handle.submit(Job::image());
    assert!(ok.join().is_ok());
    let stats = pool.shutdown();
    assert!(stats.jobs_cancelled >= 2, "{stats:?}");
    assert_eq!(stats.jobs_failed, 0, "cancellation is not failure");
}

#[test]
fn memo_serves_duplicates_bit_identically() {
    let pool = EnginePool::builder(grover_spec())
        .workers(worker_count())
        .memo_capacity(64)
        .build()
        .unwrap();
    let handle = pool.handle();
    let job = Job::Image { densify: true };
    let first = handle.submit(job.clone()).join().unwrap();
    let second = handle.submit(job.clone()).join().unwrap();
    assert_outputs_equal(&first, &second, "memo duplicate");
    assert_eq!(
        first.image().unwrap().amplitudes,
        second.image().unwrap().amplitudes,
        "a memo hit must be the cached value, bit for bit"
    );
    let stats = pool.shutdown();
    assert!(stats.memo.hits >= 1, "{:?}", stats.memo);
    assert!(stats.memo.inserts >= 1);
    assert_eq!(stats.jobs_completed, 2);
}

#[test]
fn shared_memo_never_crosses_distinct_systems() {
    // One memo, two pools over different systems whose image dimensions
    // differ (Grover3 → 2, GHZ3 → 1): if keys failed to embed the spec
    // fingerprint, the second pool would serve the first pool's cached
    // output and report the wrong dimension.
    let memo = Arc::new(ResultMemo::new(64));
    let grover = EnginePool::builder(grover_spec())
        .workers(worker_count())
        .memo(memo.clone())
        .build()
        .unwrap();
    let ghz =
        EnginePool::builder(EngineSpec::new(qits_circuit::generators::ghz(3)).gc_policy(None))
            .workers(worker_count())
            .memo(memo.clone())
            .build()
            .unwrap();

    let g1 = grover.submit(Job::image()).join().unwrap();
    let h1 = ghz.submit(Job::image()).join().unwrap();
    let g2 = grover.submit(Job::image()).join().unwrap();
    let h2 = ghz.submit(Job::image()).join().unwrap();
    assert_eq!(g1.image().unwrap().dim, 2);
    assert_eq!(g2.image().unwrap().dim, 2);
    assert_eq!(h1.image().unwrap().dim, 1);
    assert_eq!(h2.image().unwrap().dim, 1);

    // Both pools hit the shared memo — on their own entries.
    let fleet = memo.stats();
    assert!(fleet.hits >= 2, "{fleet:?}");
    assert_eq!(fleet.inserts, 2, "one entry per distinct (spec, job)");
    grover.shutdown();
    ghz.shutdown();
}

#[test]
fn service_handle_stats_snapshot_is_live() {
    let pool = EnginePool::builder(grover_spec())
        .workers(worker_count())
        .build()
        .unwrap();
    let handle = pool.handle();
    assert_eq!(handle.workers(), pool.workers());
    let tickets: Vec<JobTicket> = (0..6).map(|_| handle.submit(Job::image())).collect();
    // Live mid-flight: submissions are visible immediately, from the
    // handle, without touching the pool object.
    let mid = handle.stats();
    assert_eq!(mid.jobs_submitted, 6);
    for t in tickets {
        t.join().unwrap();
    }
    let done = handle.stats();
    assert_eq!(done.jobs_completed, 6);
    assert_eq!(done.jobs_failed, 0);
    assert_eq!(done.queue_depth, 0);
    pool.shutdown();
}

#[test]
fn submissions_after_shutdown_fail_cleanly() {
    let pool = EnginePool::builder(grover_spec())
        .workers(1)
        .build()
        .unwrap();
    let handle = pool.handle();
    assert!(handle.submit(Job::image()).join().is_ok());
    pool.shutdown();
    match handle.try_submit(Job::image()) {
        Err(QitsError::JobFailure { detail }) => {
            assert!(detail.contains("shut down"), "{detail}");
        }
        other => panic!("expected a shutdown failure, got {other:?}"),
    }
    // The infallible path resolves the ticket with the same error.
    let ticket = handle.submit(Job::image());
    assert!(ticket.join().is_err());
}
