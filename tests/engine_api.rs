//! Acceptance tests for the session-based engine API: error paths return
//! `Err` (never panic, release builds included), the engine agrees
//! bit-for-bit with the free-function baseline across all four built-in
//! strategies with GC forced at every safepoint, and the `Auto` selector
//! picks the Table-I side of the crossover on one wide and one deep paper
//! circuit.

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::{
    image, Auto, EngineBuilder, ImageStrategy, Operations, QitsError, QuantumTransitionSystem,
    Strategy, Subspace,
};
use qits_circuit::{generators, Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::{GcPolicy, TddManager};

// ----------------------------------------------------------------------
// Error paths: failures are values.
// ----------------------------------------------------------------------

#[test]
fn mismatched_register_operation_is_err_not_panic() {
    // Acceptance criterion: `Engine::image()` on a mismatched-register
    // operation returns `Err(QitsError::RegisterMismatch)` in release
    // mode. Construction already rejects the mismatch...
    let wide = Operation::new("wide", 5);
    let err = EngineBuilder::new()
        .build_with(3, vec![wide.clone()], |_| Subspace::zero(3))
        .unwrap_err();
    assert!(matches!(
        err,
        QitsError::RegisterMismatch {
            expected: 3,
            found: 5,
            ..
        }
    ));

    // ...and a mismatched input subspace at image time errors the same
    // way, leaving the session usable.
    let mut engine = EngineBuilder::new()
        .build_from_spec(&generators::ghz(3))
        .unwrap();
    let wrong = Subspace::zero(5);
    assert!(matches!(
        engine.image_of(&wrong).unwrap_err(),
        QitsError::RegisterMismatch {
            expected: 5,
            found: 3,
            ..
        }
    ));
    assert!(engine.image().is_ok());
}

#[test]
fn empty_operation_list_is_err() {
    let mut engine = EngineBuilder::new().build_bare(2).unwrap();
    assert_eq!(engine.image().unwrap_err(), QitsError::EmptyOperationSet);
    assert_eq!(
        engine.reachable_space(5).unwrap_err(),
        QitsError::EmptyOperationSet
    );
    let inv = Subspace::zero(2);
    assert_eq!(
        engine.check_invariant(&inv, 5).unwrap_err(),
        QitsError::EmptyOperationSet
    );
}

#[test]
fn zero_qubit_system_is_err() {
    assert_eq!(
        EngineBuilder::new().build_bare(0).unwrap_err(),
        QitsError::ZeroQubitSystem
    );
    let spec = qits_circuit::generators::QtsSpec {
        name: "empty".into(),
        n_qubits: 0,
        operations: vec![],
        initial_states: vec![],
    };
    assert_eq!(
        EngineBuilder::new().build_from_spec(&spec).unwrap_err(),
        QitsError::ZeroQubitSystem
    );
}

#[test]
fn equivalence_register_mismatch_is_err() {
    let mut engine = EngineBuilder::new().build_bare(2).unwrap();
    let a = Circuit::new(2);
    let b = Circuit::new(3);
    assert!(matches!(
        engine.equivalent(&a, &b).unwrap_err(),
        QitsError::RegisterMismatch {
            expected: 2,
            found: 3,
            ..
        }
    ));
    assert!(matches!(
        engine.equivalent_up_to_phase(&a, &b).unwrap_err(),
        QitsError::RegisterMismatch { .. }
    ));
}

#[test]
fn check_invariant_register_mismatch_is_err() {
    let mut engine = EngineBuilder::new()
        .build_from_spec(&generators::ghz(3))
        .unwrap();
    let wrong = Subspace::zero(5);
    assert!(matches!(
        engine.check_invariant(&wrong, 5).unwrap_err(),
        QitsError::RegisterMismatch {
            expected: 3,
            found: 5,
            ..
        }
    ));
}

#[test]
fn equivalence_under_gc_does_not_corrupt_the_session() {
    // The equivalence checkers poll a GC safepoint between the two
    // operator contractions; the engine must pin its own system across
    // it, or an aggressive policy sweeps the initial subspace and a later
    // image() dereferences dangling edges.
    let mut engine = EngineBuilder::new()
        .gc_policy(Some(GcPolicy::aggressive()))
        .build_from_spec(&generators::grover(3))
        .unwrap();
    let mut swap = Circuit::new(2);
    swap.push(Gate::swap(0, 1));
    let mut cx3 = Circuit::new(2);
    cx3.push(Gate::cx(0, 1));
    cx3.push(Gate::cx(1, 0));
    cx3.push(Gate::cx(0, 1));
    assert!(engine.equivalent(&swap, &cx3).unwrap());
    assert!(engine.equivalent_up_to_phase(&swap, &cx3).unwrap());
    assert!(
        engine.manager().stats().safepoint_collections > 0,
        "the aggressive policy must actually collect at the safepoint"
    );
    // The session's system survived the equivalence safepoints intact.
    let (img, _) = engine.image().unwrap();
    let initial = engine.initial().clone();
    assert!(img.equals(engine.manager_mut(), &initial));
    assert_eq!(engine.manager().root_count(), 0);
}

#[test]
fn slice_count_overflow_is_err() {
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Addition { k: 64 })
        .build_from_spec(&generators::ghz(3))
        .unwrap();
    assert_eq!(
        engine.image().unwrap_err(),
        QitsError::DimensionOverflow { bits: 64 }
    );
}

// ----------------------------------------------------------------------
// Auto selector: pinned choices on paper circuits.
// ----------------------------------------------------------------------

#[test]
fn auto_picks_addition_on_the_wide_shallow_paper_circuit() {
    // GHZ is the paper's wide family: one gate layer per qubit.
    let spec = generators::ghz(50);
    let ops = Operations::new(spec.n_qubits, spec.operations.clone());
    assert_eq!(Auto::default().select(&ops), Strategy::Addition { k: 1 });
}

#[test]
fn auto_picks_contraction_on_the_deep_paper_circuit() {
    // QFT is the paper's deep family: O(n^2) gates on n qubits.
    let spec = generators::qft(8);
    let ops = Operations::new(spec.n_qubits, spec.operations.clone());
    assert_eq!(
        Auto::default().select(&ops),
        Strategy::Contraction { k1: 4, k2: 4 }
    );
}

#[test]
fn engine_exposes_the_selected_kernel() {
    let engine = EngineBuilder::new()
        .strategy(Auto::default())
        .build_from_spec(&generators::qft(8))
        .unwrap();
    assert_eq!(
        engine.selected_kernel(),
        Strategy::Contraction { k1: 4, k2: 4 }
    );
}

// ----------------------------------------------------------------------
// Engine vs free-function baseline, bit for bit, under forced GC.
// ----------------------------------------------------------------------

fn arb_gate(n: u32) -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The engine (GC forced at every safepoint) and the `image` free
    /// function (grow-only arena) compute bit-for-bit identical images —
    /// every basis vector imports to the exact same canonical edge —
    /// across random circuits, random initial subspaces, and all four
    /// built-in strategies plus the `Auto` selector.
    #[test]
    fn engine_agrees_with_free_function_baseline_under_forced_gc(
        circuit in arb_circuit(3, 8),
        amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), 3), 1..3),
    ) {
        let strategies: Vec<Box<dyn ImageStrategy>> = vec![
            Box::new(Strategy::Basic),
            Box::new(Strategy::Addition { k: 1 }),
            Box::new(Strategy::Contraction { k1: 2, k2: 2 }),
            Box::new(Strategy::AdditionParallel { k: 1 }),
            Box::new(Auto::default()),
        ];
        for strategy in &strategies {
            // Free-function baseline on its own grow-only manager.
            let mut m = TddManager::new();
            let op = Operation::from_circuit("rand", &circuit);
            let vars = Subspace::ket_vars(3);
            let states: Vec<_> = amps.iter().map(|a| m.product_ket(&vars, a)).collect();
            let init = Subspace::from_states(&mut m, 3, &states);
            let mut qts = QuantumTransitionSystem::new(3, vec![op.clone()], init);
            let ops = qts.operations().clone();
            let kernel = strategy.select(&ops);
            let (img_base, _) = image(&mut m, &ops, qts.initial_mut(), kernel);

            // Engine session with GC forced at every safepoint.
            let mut engine = EngineBuilder::new()
                .gc_policy(Some(GcPolicy::aggressive()))
                .build_with(3, vec![op], |m| {
                    let vars = Subspace::ket_vars(3);
                    let states: Vec<_> =
                        amps.iter().map(|a| m.product_ket(&vars, a)).collect();
                    Subspace::from_states(m, 3, &states)
                })
                .unwrap();
            let (img_engine, _) = engine.image_with(strategy.as_ref()).unwrap();

            prop_assert_eq!(
                img_base.dim(),
                img_engine.dim(),
                "{}: dimension differs from the baseline",
                strategy.name()
            );
            for (&b_base, &b_eng) in img_base.basis().iter().zip(img_engine.basis()) {
                let imported = m.import(engine.manager(), b_eng);
                prop_assert_eq!(
                    imported,
                    b_base,
                    "{}: basis vector differs bit-for-bit from the baseline",
                    strategy.name()
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// Session ergonomics.
// ----------------------------------------------------------------------

#[test]
fn engine_reachability_matches_free_function_driver() {
    let spec = generators::qrw(3, 0.4);
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
    let base = qits::mc::reachable_space(&mut m, &qts, strategy, 30);

    let mut engine = EngineBuilder::new()
        .strategy(strategy)
        .build_from_spec(&spec)
        .unwrap();
    let r = engine.reachable_space(30).unwrap();

    assert_eq!(base.converged, r.converged);
    assert_eq!(base.iterations, r.iterations);
    assert_eq!(base.space.dim(), r.space.dim());
}

#[test]
fn engine_leaves_no_roots_behind() {
    // Every internal pin must be released, across plain and GC'd runs.
    for policy in [None, Some(GcPolicy::aggressive())] {
        let mut engine = EngineBuilder::new()
            .gc_policy(policy)
            .strategy(Strategy::Addition { k: 1 })
            .build_from_spec(&generators::qrw(3, 0.2))
            .unwrap();
        engine.image().unwrap();
        let input = engine.initial().clone();
        engine.image_of(&input).unwrap();
        engine.reachable_space(10).unwrap();
        assert_eq!(engine.manager().root_count(), 0, "policy {policy:?}");
    }
}
