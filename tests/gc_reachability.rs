//! Garbage-collection integration tests: a forced collection preserves
//! semantics across random circuits, handles held across collections are
//! bit-identical or detectably stale (never silently recycled), and GC'd
//! reachability fixpoints keep the node store bounded by the live set.

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::{image, mc, QuantumTransitionSystem, Strategy, Subspace};
use qits_circuit::{generators, Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::{GcPolicy, TddManager};
use qits_tensornet::{contract_network, TensorNetwork};

fn arb_gate(n: u32) -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forced `collect()` preserves semantics: contraction, addition, and
    /// inner-product results over a random circuit are **bit-identical**
    /// after protect → collect — collection never moves a node, so the
    /// held edges need no fixup at all.
    #[test]
    fn forced_collect_preserves_operation_results(
        circuit in arb_circuit(3, 8),
        amps1 in proptest::collection::vec(arb_amp(), 3),
        amps2 in proptest::collection::vec(arb_amp(), 3),
    ) {
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(3);
        let psi1 = m.product_ket(&vars, &amps1);
        let psi2 = m.product_ket(&vars, &amps2);
        let net = TensorNetwork::from_circuit(&mut m, &circuit);

        // Reference results, before any collection.
        let op_before = contract_network(&mut m, net.tensors(), &net.external_vars());
        let sum_before = m.add(psi1, psi2);
        let ip_before = m.inner_product(psi1, psi2, &vars);

        // Protect the inputs and the results, collect.
        let mut roots = vec![m.protect(psi1), m.protect(psi2)];
        roots.push(m.protect(op_before.edge));
        roots.push(m.protect(sum_before));
        roots.extend(net.protect(&mut m));
        let _ = m.collect();
        prop_assert!(m.is_live(psi1) && m.is_live(psi2));
        prop_assert!(m.is_live(op_before.edge) && m.is_live(sum_before));
        m.unprotect_all(roots);

        // Recomputing after the collection reproduces the held results
        // exactly — hash-consing lands on the surviving nodes.
        let op_after = contract_network(&mut m, net.tensors(), &net.external_vars());
        prop_assert_eq!(op_after.edge, op_before.edge, "contraction changed across GC");
        let sum_after = m.add(psi1, psi2);
        prop_assert_eq!(sum_after, sum_before, "addition changed across GC");
        let ip_after = m.inner_product(psi1, psi2, &vars);
        prop_assert!(ip_after.approx_eq(ip_before), "inner product changed across GC");
    }

    /// The generational-handle contract: an edge held across forced
    /// collections is either still valid (its subgraph was rooted, and
    /// rebuilding the same diagram returns the *same* handle) or
    /// detectably stale — and a stale handle is never silently recycled:
    /// rebuilding the same diagram after its slot was swept yields a
    /// *different* handle (fresh generation), and churning the store with
    /// new allocations never flips the stale handle back to live.
    #[test]
    fn held_handles_stay_valid_or_detectably_stale(
        circuit in arb_circuit(3, 8),
        amps1 in proptest::collection::vec(arb_amp(), 3),
        amps2 in proptest::collection::vec(arb_amp(), 3),
    ) {
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(3);
        let psi1 = m.product_ket(&vars, &amps1);
        let psi2 = m.product_ket(&vars, &amps2);
        let net = TensorNetwork::from_circuit(&mut m, &circuit);
        let op = contract_network(&mut m, net.tensors(), &net.external_vars());
        let sum = m.add(psi1, psi2);
        let held = [psi1, psi2, op.edge, sum];

        // Root only psi1; everything else survives only if it happens to
        // share psi1's subgraph.
        let root = m.protect(psi1);
        let _ = m.collect();
        let _ = m.collect();
        let live_after_gc: Vec<bool> = held.iter().map(|&e| m.is_live(e)).collect();
        prop_assert!(live_after_gc[0], "the rooted edge must survive");

        // Churn: rebuild everything, forcing swept slots to be reused
        // under new generations.
        let re_psi1 = m.product_ket(&vars, &amps1);
        let re_psi2 = m.product_ket(&vars, &amps2);
        // The old network's gate tensors were swept with everything else,
        // so rebuild it from the circuit before re-contracting.
        let re_net = TensorNetwork::from_circuit(&mut m, &circuit);
        let re_op = contract_network(&mut m, re_net.tensors(), &re_net.external_vars());
        let re_sum = m.add(re_psi1, re_psi2);
        let rebuilt = [re_psi1, re_psi2, re_op.edge, re_sum];

        for (i, (&old, &new)) in held.iter().zip(rebuilt.iter()).enumerate() {
            if live_after_gc[i] {
                // Valid handle: hash-consing finds the surviving node.
                prop_assert_eq!(new, old, "handle {} should be canonical", i);
            } else {
                // Stale handle: the recreated diagram lives under a fresh
                // generation, so the old handle can never be confused
                // with it — and churn must not resurrect it.
                prop_assert!(new != old, "handle {} was silently recycled", i);
                prop_assert!(!m.is_live(old), "handle {} flipped back to live", i);
                prop_assert!(m.is_live(new));
            }
        }
        m.unprotect_all(vec![root]);
    }

    /// `Subspace::contains` answers are identical before and after a
    /// forced collection, across random circuits and states.
    #[test]
    fn forced_collect_preserves_containment_answers(
        circuit in arb_circuit(3, 8),
        amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), 3), 2..4),
        probe_amps in proptest::collection::vec(arb_amp(), 3),
    ) {
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(3);
        let states: Vec<_> = amps.iter().map(|a| m.product_ket(&vars, a)).collect();
        let init = Subspace::from_states(&mut m, 3, &states);
        let op = Operation::from_circuit("rand", &circuit);
        let qts = QuantumTransitionSystem::new(3, vec![op], init);
        let ops = qts.operations().clone();
        let (img, _) = image(&mut m, &ops, qts.initial(), Strategy::Basic);
        let probe = m.product_ket(&vars, &probe_amps);

        let in_image_before = img.contains(&mut m, probe);
        let in_initial_before = qts.initial().clone().contains(&mut m, probe);

        let out = m.collect_retaining(&[&qts, &img, &probe]);
        prop_assert!(out.reclaimed > 0, "an image computation must leave garbage");

        prop_assert_eq!(img.contains(&mut m, probe), in_image_before);
        prop_assert_eq!(qts.initial().clone().contains(&mut m, probe), in_initial_before);
        // The image is still the image: recomputing it after the sweep
        // agrees with the held copy.
        let (img2, _) = image(&mut m, &ops, qts.initial(), Strategy::Basic);
        prop_assert!(img2.equals(&mut m, &img));
    }
}

/// Regression: a multi-iteration reachability run under an aggressive
/// `GcPolicy` keeps the *occupied* slot count pinned to the live set —
/// right after each collection the store holds exactly the rooted
/// survivors, and the free-list keeps total allocation from drifting.
#[test]
fn aggressive_gc_keeps_store_bounded_by_live_set() {
    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.4));
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };
    let ops = qts.operations().clone();
    let mut space = qts.initial().clone();
    let mut collected = 0u64;
    let rebuilds_before = m.stats().unique_rebuilds;
    for _ in 0..10 {
        let (img, _) = image(&mut m, &ops, &space, strategy);
        space = space.join(&mut m, &img);
        // Force a collection every iteration, as aggressively as possible.
        let out = m.collect_retaining(&[&qts, &space]);
        collected += out.reclaimed as u64;
        // Occupancy invariant: after a full collection the store holds
        // exactly the live survivors; everything else sits on the
        // free-list awaiting reuse. No rebuild, no relocation.
        assert_eq!(
            m.arena_occupied(),
            out.live,
            "post-collect occupancy must equal the marked live set"
        );
        // Allocated = occupied + free-list + the always-allocated terminal
        // slot; nothing is ever lost or double-counted.
        assert_eq!(m.arena_len(), m.arena_occupied() + m.arena_free() + 1);
    }
    assert!(collected > 0, "ten iterations must reclaim something");
    assert_eq!(
        m.stats().unique_rebuilds,
        rebuilds_before,
        "collection must never rebuild the unique index"
    );
    // The held fixpoint state is still sound.
    let (img, _) = image(&mut m, &ops, &space, strategy);
    assert!(img.is_subspace_of(&mut m, &space) || space.join(&mut m, &img).dim() > space.dim());
}

/// A 4-qubit binary increment (mod 16): from `|0000>` the reachable
/// dimension grows by exactly one basis state per iteration, giving a
/// guaranteed 15-iteration fixpoint — the long-fixpoint shape the GC
/// exists for.
fn increment_qts(m: &mut TddManager) -> QuantumTransitionSystem {
    let mut c = Circuit::new(4);
    // MSB-first ripple: bit k flips iff all lower bits are 1 (pre-state).
    c.push(Gate::mcx_polarity(&[(1, true), (2, true), (3, true)], 0));
    c.push(Gate::mcx_polarity(&[(2, true), (3, true)], 1));
    c.push(Gate::cx(3, 2));
    c.push(Gate::x(3));
    let vars = Subspace::ket_vars(4);
    let zero = m.basis_ket(&vars, &[false; 4]);
    let initial = Subspace::from_states(m, 4, &[zero]);
    QuantumTransitionSystem::new(4, vec![Operation::from_circuit("inc", &c)], initial)
}

/// Acceptance: a ≥10-iteration reachability fixpoint under `GcPolicy`
/// reclaims nodes and — thanks to free-list reuse — ends with strictly
/// fewer allocated slots than the grow-only run, while computing the
/// same space bit-for-bit (differential grow-only vs aggressive-GC).
#[test]
fn ten_iteration_fixpoint_reclaims_and_stays_below_grow_only() {
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut m_plain = TddManager::new();
    let qts_plain = increment_qts(&mut m_plain);
    let r_plain = mc::reachable_space(&mut m_plain, &qts_plain, strategy, 30);

    let mut m_gc = TddManager::new();
    let qts_gc = increment_qts(&mut m_gc);
    m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
    let r_gc = mc::reachable_space(&mut m_gc, &qts_gc, strategy, 30);

    assert!(r_gc.converged);
    assert!(
        r_gc.iterations >= 10,
        "increment fixpoint must run long: got {} iterations",
        r_gc.iterations
    );
    assert_eq!(r_plain.iterations, r_gc.iterations);
    assert_eq!(r_plain.space.dim(), 16);
    assert_eq!(r_gc.space.dim(), 16);
    assert!(r_gc.collections > 0);
    assert!(r_gc.reclaimed_nodes > 0, "reclaimed counter must move");
    assert!(
        m_gc.arena_len() < m_plain.arena_len(),
        "free-list reuse must keep the GC'd run below the grow-only \
         allocation: {} vs {}",
        m_gc.arena_len(),
        m_plain.arena_len()
    );
    // Bit-for-bit differential: import each grow-only basis vector into
    // the GC'd manager and compare the spanned spaces exactly.
    let mut independent = Subspace::zero(4);
    for &b in r_plain.space.basis() {
        let imported = m_gc.import(&m_plain, b);
        independent.absorb(&mut m_gc, imported);
    }
    assert!(r_gc.space.clone().equals(&mut m_gc, &independent));
}

/// The parallel addition partition inherits the policy into its worker
/// managers and reclaims there without changing the image. Grover's
/// initial subspace has dimension 2, so each worker applies its slice
/// operator to two states — the between-state collection point fires.
#[test]
fn parallel_workers_collect_under_policy() {
    let spec = generators::grover(4);

    let mut m_plain = TddManager::new();
    let qts_plain = QuantumTransitionSystem::from_spec(&mut m_plain, &spec);
    let ops_plain = qts_plain.operations().clone();
    let (img_plain, stats_plain) = image(
        &mut m_plain,
        &ops_plain,
        qts_plain.initial(),
        Strategy::AdditionParallel { k: 2 },
    );
    assert_eq!(stats_plain.reclaimed_nodes, 0);

    let mut m_gc = TddManager::new();
    m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
    let qts_gc = QuantumTransitionSystem::from_spec(&mut m_gc, &spec);
    let ops_gc = qts_gc.operations().clone();
    let (img_gc, stats_gc) = image(
        &mut m_gc,
        &ops_gc,
        qts_gc.initial(),
        Strategy::AdditionParallel { k: 2 },
    );
    assert!(
        stats_gc.reclaimed_nodes > 0,
        "workers must collect under the inherited policy"
    );
    assert_eq!(img_plain.dim(), img_gc.dim());
    // Same image: import the GC run's basis and check mutual containment.
    let mut imported = Subspace::zero(4);
    for &b in img_gc.basis() {
        let e = m_plain.import(&m_gc, b);
        imported.absorb(&mut m_plain, e);
    }
    assert!(imported.equals(&mut m_plain, &img_plain));
}
