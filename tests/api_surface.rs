//! Grep-enforced API-surface contract for the generational GC.
//!
//! The relocation era is over: collection never moves a node, so the
//! `Relocations` side-table, the `Relocatable` trait, and the
//! `gc_restore` hook must not exist anywhere in the workspace source —
//! not as public items, not as `pub(crate)` plumbing, not even as dead
//! private code waiting to be resurrected. This test walks every
//! `crates/*/src` tree and fails on the first occurrence, quoting file
//! and line so a regression is a one-click fix.
//!
//! The forbidden names are assembled with `concat!` so this file does
//! not match itself if it ever migrates into a scanned tree.

use std::fs;
use std::path::{Path, PathBuf};

/// Identifiers of the retired relocation machinery. Assembled at compile
/// time from halves so the scanner cannot trip over its own source.
fn forbidden() -> [&'static str; 3] {
    [
        concat!("Reloc", "ations"),
        concat!("Reloc", "atable"),
        concat!("gc_", "restore"),
    ]
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Every `crates/<name>/src` tree of the workspace, relative to this
/// test's compile-time location (the repository-root `tests/`).
fn workspace_source_roots() -> Vec<PathBuf> {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/core has a workspace root two levels up")
        .to_path_buf();
    let crates = repo_root.join("crates");
    let mut roots = Vec::new();
    for entry in fs::read_dir(&crates).expect("workspace crates/ directory") {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    assert!(
        roots.len() >= 5,
        "expected the full workspace under crates/, found {roots:?}"
    );
    roots
}

#[test]
fn relocation_machinery_is_gone_from_every_crate() {
    let mut sources = Vec::new();
    for root in workspace_source_roots() {
        rust_sources(&root, &mut sources);
    }
    assert!(
        sources.len() > 20,
        "scanner found suspiciously few files: {sources:?}"
    );
    let mut hits = Vec::new();
    for path in &sources {
        let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        for (lineno, line) in text.lines().enumerate() {
            for name in forbidden() {
                if line.contains(name) {
                    hits.push(format!("{}:{}: {name}: {line}", path.display(), lineno + 1));
                }
            }
        }
    }
    assert!(
        hits.is_empty(),
        "retired relocation identifiers resurfaced:\n{}",
        hits.join("\n")
    );
}

#[test]
fn generational_surface_is_present() {
    // The flip side of the contract: the replacement surface the docs
    // promise must actually exist where the docs say it lives.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let tdd_lib = fs::read_to_string(repo_root.join("crates/tdd/src/lib.rs")).expect("tdd lib.rs");
    for name in ["EdgeHolder", "GcPolicy", "GcOutcome", "ArenaExhausted"] {
        assert!(
            tdd_lib.contains(name),
            "crates/tdd must re-export {name} as part of the generational GC surface"
        );
    }
}
