//! Property-based tests: random circuits and random states through the
//! whole symbolic pipeline, cross-checked against the dense oracle.

use std::collections::BTreeMap;

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name from the
// prelude glob; re-import the trait anonymously for method resolution.
use proptest::strategy::Strategy as _;

use qits::{image, QuantumTransitionSystem, Strategy, Subspace};
use qits_circuit::{sim, Circuit, Gate, Operation};
use qits_num::{linalg, Cplx};
use qits_tdd::TddManager;
use qits_tensor::Var;

/// A random gate on up to `n` qubits.
fn arb_gate(n: u32) -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        q.clone()
            .prop_map(|q| Gate::single(qits_circuit::GateKind::S, q)),
        q.clone()
            .prop_map(|q| Gate::single(qits_circuit::GateKind::T, q)),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| { (a != b).then(|| Gate::cx(a, b)) }),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| { (a != b).then(|| Gate::cz(a, b)) }),
        (q.clone(), q.clone(), 0.0..std::f64::consts::TAU)
            .prop_filter_map("distinct", |(a, b, t)| (a != b).then(|| Gate::cp(a, b, t))),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| { (a != b).then(|| Gate::swap(a, b)) }),
        (
            q.clone(),
            q.clone(),
            q.clone(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_filter_map("distinct", |(a, b, c, pa, pb)| {
                (a != b && b != c && a != c).then(|| Gate::mcx_polarity(&[(a, pa), (b, pb)], c))
            }),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Normalised random single-qubit amplitudes.
fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

fn dense_of_ket(m: &TddManager, n: u32, e: qits_tdd::Edge) -> Vec<Cplx> {
    let vars = Subspace::ket_vars(n);
    (0..(1usize << n))
        .map(|i| {
            let asn: BTreeMap<Var, bool> = vars
                .iter()
                .enumerate()
                .map(|(q, &v)| (v, (i >> (n as usize - 1 - q)) & 1 == 1))
                .collect();
            m.eval(e, &asn)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The image of a random product state under a random circuit matches
    /// the dense matrix-vector product, for every strategy.
    #[test]
    fn random_circuit_image_matches_dense(
        circuit in arb_circuit(3, 10),
        amps in proptest::collection::vec(arb_amp(), 3),
    ) {
        let n = 3u32;
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(n);
        let psi = m.product_ket(&vars, &amps);
        let init = Subspace::from_states(&mut m, n, &[psi]);
        let op = Operation::from_circuit("rand", &circuit);
        let mut qts = QuantumTransitionSystem::new(n, vec![op], init);

        // Dense reference.
        let dense_in = sim::product_state(&amps);
        let dense_out = sim::run(&circuit, &dense_in);
        let expect = linalg::gram_schmidt(&[dense_out]);

        for strategy in [
            Strategy::Basic,
            Strategy::Addition { k: 1 },
            Strategy::Contraction { k1: 2, k2: 1 },
            Strategy::Contraction { k1: 1, k2: 2 },
        ] {
            let ops = qts.operations().clone();
            let (img, _) = image(&mut m, &ops, qts.initial_mut(), strategy);
            prop_assert_eq!(img.dim(), expect.len(), "dim mismatch ({})", strategy);
            for &b in img.basis() {
                let v = dense_of_ket(&m, n, b);
                prop_assert!(
                    linalg::in_span(&expect, &v),
                    "image vector escapes dense span ({})", strategy
                );
            }
        }
    }

    /// Subspace span: dimension never exceeds the number of generators,
    /// every generator is contained, and the projector is idempotent.
    #[test]
    fn random_subspace_invariants(
        amp_sets in proptest::collection::vec(
            proptest::collection::vec(arb_amp(), 3), 1..5
        ),
    ) {
        let n = 3u32;
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(n);
        let states: Vec<_> = amp_sets.iter().map(|a| m.product_ket(&vars, a)).collect();
        let s = Subspace::from_states(&mut m, n, &states);
        prop_assert!(s.dim() <= states.len());
        for &st in &states {
            prop_assert!(s.contains(&mut m, st));
        }
        // Idempotency on each generator: P(P psi) == P psi.
        for &st in &states {
            let p1 = s.project(&mut m, st);
            let p2 = s.project(&mut m, p1);
            let d = m.sub(p1, p2);
            let resid = if d.is_zero() { 0.0 } else { m.norm_sqr(d, &vars) };
            prop_assert!(resid < 1e-12, "projector not idempotent: {resid}");
        }
        // Round-trip through the projector decomposition of Section IV-A.
        let back = Subspace::from_projector(&mut m, n, s.projector());
        prop_assert_eq!(back.dim(), s.dim());
        prop_assert!(back.equals(&mut m, &s));
    }

    /// Join is commutative and monotone in dimension.
    #[test]
    fn random_join_properties(
        a_amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), 2), 1..3),
        b_amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), 2), 1..3),
    ) {
        let n = 2u32;
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(n);
        let sa: Vec<_> = a_amps.iter().map(|x| m.product_ket(&vars, x)).collect();
        let sb: Vec<_> = b_amps.iter().map(|x| m.product_ket(&vars, x)).collect();
        let a = Subspace::from_states(&mut m, n, &sa);
        let b = Subspace::from_states(&mut m, n, &sb);
        let ab = a.join(&mut m, &b);
        let ba = b.join(&mut m, &a);
        prop_assert!(ab.equals(&mut m, &ba), "join not commutative");
        prop_assert!(ab.dim() >= a.dim().max(b.dim()));
        prop_assert!(ab.dim() <= a.dim() + b.dim());
        prop_assert!(a.is_subspace_of(&mut m, &ab));
        prop_assert!(b.is_subspace_of(&mut m, &ab));
    }

    /// The monolithic operator TDD of a random circuit matches the dense
    /// circuit matrix entry by entry.
    #[test]
    fn random_circuit_operator_matches_dense(circuit in arb_circuit(3, 8)) {
        use qits_tensornet::{contract_network, TensorNetwork};
        let n = 3u32;
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &circuit);
        let whole = contract_network(&mut m, net.tensors(), &net.external_vars());
        let dense = sim::circuit_matrix(&circuit);
        for col in 0..(1usize << n) {
            for row in 0..(1usize << n) {
                let consistent = (0..n).all(|q| {
                    net.in_var(q) != net.out_var(q)
                        || ((col >> (n - 1 - q)) & 1) == ((row >> (n - 1 - q)) & 1)
                });
                if !consistent {
                    prop_assert!(dense[(row, col)].is_zero());
                    continue;
                }
                let mut asn = BTreeMap::new();
                for q in 0..n {
                    asn.insert(net.in_var(q), (col >> (n - 1 - q)) & 1 == 1);
                    asn.insert(net.out_var(q), (row >> (n - 1 - q)) & 1 == 1);
                }
                let got = m.eval(whole.edge, &asn);
                prop_assert!(
                    got.approx_eq_with(dense[(row, col)], 1e-8),
                    "entry ({row},{col}): {got} vs {}", dense[(row, col)]
                );
            }
        }
    }
}
