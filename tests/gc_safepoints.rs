//! In-image GC safepoint integration tests.
//!
//! The serial Table-I strategies poll safepoints between addition slices,
//! between contraction blocks, and after every Gram–Schmidt residual.
//! These tests force a collection at **every** safepoint (the aggressive
//! policy collects whenever anything was allocated) and check that
//!
//! * `image()` results are bit-for-bit identical to the GC-off run across
//!   random circuits and strategies,
//! * peak arena occupancy of a serial addition-partition `image()` stays
//!   measurably below the grow-only baseline (the memory win the ROADMAP
//!   follow-up asked for), and
//! * unrelated structures pinned across the call survive every mid-image
//!   collection.

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::{image, QuantumTransitionSystem, Strategy, Subspace};
use qits_circuit::{generators, Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::{GcPolicy, Relocatable, TddManager};

fn arb_gate(n: u32) -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

/// Builds the same random system twice — once per manager — so the GC-on
/// and GC-off runs start from identical state.
fn build_qts(
    m: &mut TddManager,
    n: u32,
    circuit: &Circuit,
    amps: &[Vec<(Cplx, Cplx)>],
) -> QuantumTransitionSystem {
    let vars = Subspace::ket_vars(n);
    let states: Vec<_> = amps.iter().map(|a| m.product_ket(&vars, a)).collect();
    let init = Subspace::from_states(m, n, &states);
    let op = Operation::from_circuit("rand", circuit);
    QuantumTransitionSystem::new(n, vec![op], init)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Collecting at every safepoint leaves `image()` bit-for-bit
    /// identical to the GC-off run: same dimension, and every basis
    /// vector imports to the *exact same canonical edge* (hash-consing
    /// makes equal tensors equal edges, so this is equality of the
    /// diagrams themselves, not merely of the spanned subspace).
    #[test]
    fn collect_at_every_safepoint_is_invisible(
        circuit in arb_circuit(3, 8),
        amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), 3), 1..3),
    ) {
        for strategy in [
            Strategy::Basic,
            Strategy::Addition { k: 1 },
            Strategy::Addition { k: 2 },
            Strategy::Contraction { k1: 2, k2: 1 },
            Strategy::Contraction { k1: 1, k2: 2 },
        ] {
            let mut m_plain = TddManager::new();
            let mut qts_plain = build_qts(&mut m_plain, 3, &circuit, &amps);
            let (ops, initial) = qts_plain.parts_mut();
            let (img_plain, st_plain) = image(&mut m_plain, &ops, initial, strategy);
            prop_assert_eq!(st_plain.safepoint_collections, 0);

            let mut m_gc = TddManager::new();
            m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
            let mut qts_gc = build_qts(&mut m_gc, 3, &circuit, &amps);
            let input_dim = qts_gc.initial().dim();
            let (ops, initial) = qts_gc.parts_mut();
            let (img_gc, st_gc) = image(&mut m_gc, &ops, initial, strategy);
            // The basic method's only polls are between Gram–Schmidt
            // residuals, and the final one is skipped: a dimension-1
            // input legitimately polls zero times there.
            if !matches!(strategy, Strategy::Basic) || input_dim > 1 {
                prop_assert!(st_gc.safepoints > 0, "{}: no safepoint polled", strategy);
            }

            prop_assert_eq!(
                img_plain.dim(), img_gc.dim(),
                "{}: dimension changed under forced safepoint collection", strategy
            );
            for (&b_plain, &b_gc) in img_plain.basis().iter().zip(img_gc.basis()) {
                let imported = m_plain.import(&m_gc, b_gc);
                prop_assert_eq!(
                    imported, b_plain,
                    "{}: basis vector differs bit-for-bit", strategy
                );
            }
            // The relocated input is intact too.
            for (&i_plain, &i_gc) in
                qts_plain.initial().basis().iter().zip(qts_gc.initial().basis())
            {
                let imported = m_plain.import(&m_gc, i_gc);
                prop_assert_eq!(imported, i_plain, "{}: input corrupted", strategy);
            }
        }
    }
}

/// Acceptance regression: with the aggressive policy, peak arena
/// occupancy during a serial addition-partition `image()` on the
/// reachability example's systems stays measurably below the grow-only
/// baseline, with bit-for-bit identical results.
#[test]
fn addition_safepoints_cut_peak_arena_below_grow_only() {
    for spec in [generators::grover(4), generators::qrw(4, 0.1)] {
        let strategy = Strategy::Addition { k: 1 };

        let mut m_plain = TddManager::new();
        let mut qts_plain = QuantumTransitionSystem::from_spec(&mut m_plain, &spec);
        let (ops, initial) = qts_plain.parts_mut();
        let (img_plain, st_plain) = image(&mut m_plain, &ops, initial, strategy);

        let mut m_gc = TddManager::new();
        m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
        let mut qts_gc = QuantumTransitionSystem::from_spec(&mut m_gc, &spec);
        let (ops, initial) = qts_gc.parts_mut();
        let (img_gc, st_gc) = image(&mut m_gc, &ops, initial, strategy);

        assert!(
            st_gc.safepoint_collections > 0,
            "{}: safepoints must collect",
            spec.name
        );
        assert!(
            st_gc.safepoint_reclaimed > 0,
            "{}: safepoints must reclaim",
            spec.name
        );
        assert!(
            st_gc.peak_arena < st_plain.peak_arena,
            "{}: peak arena must drop below the grow-only baseline: {} vs {}",
            spec.name,
            st_gc.peak_arena,
            st_plain.peak_arena
        );
        // Bit-for-bit agreement of the images.
        assert_eq!(img_plain.dim(), img_gc.dim(), "{}", spec.name);
        for (&b_plain, &b_gc) in img_plain.basis().iter().zip(img_gc.basis()) {
            let imported = m_plain.import(&m_gc, b_gc);
            assert_eq!(imported, b_plain, "{}: image differs", spec.name);
        }
    }
}

/// The same regression for the contraction partition: per-block and
/// per-residual safepoints keep the arena below the grow-only peak.
#[test]
fn contraction_safepoints_cut_peak_arena_below_grow_only() {
    let spec = generators::qrw(4, 0.1);
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut m_plain = TddManager::new();
    let mut qts_plain = QuantumTransitionSystem::from_spec(&mut m_plain, &spec);
    let (ops, initial) = qts_plain.parts_mut();
    let (_, st_plain) = image(&mut m_plain, &ops, initial, strategy);

    let mut m_gc = TddManager::new();
    m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
    let mut qts_gc = QuantumTransitionSystem::from_spec(&mut m_gc, &spec);
    let (ops, initial) = qts_gc.parts_mut();
    let (_, st_gc) = image(&mut m_gc, &ops, initial, strategy);

    assert!(st_gc.safepoint_collections > 0);
    assert!(
        st_gc.peak_arena < st_plain.peak_arena,
        "peak arena must drop below the grow-only baseline: {} vs {}",
        st_gc.peak_arena,
        st_plain.peak_arena
    );
}

/// A subspace that is neither the image input nor its output survives
/// in-image safepoint collections when pinned — the contract the fixpoint
/// drivers rely on — and unpin restores it exactly.
#[test]
fn pinned_bystander_survives_in_image_collections() {
    let mut m = TddManager::new();
    m.set_gc_policy(Some(GcPolicy::aggressive()));
    let spec = generators::qrw(4, 0.1);
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &spec);

    // An unrelated subspace living on the same manager.
    let vars = Subspace::ket_vars(4);
    let b0 = m.basis_ket(&vars, &[false, true, false, true]);
    let b1 = m.basis_ket(&vars, &[true, true, false, false]);
    let mut bystander = Subspace::from_states(&mut m, 4, &[b0, b1]);

    let (ops, _) = qts.parts_mut();
    let mut input = qts.initial().clone();
    let (img, st) = {
        let mut pinned: Vec<&mut dyn Relocatable> = vec![&mut qts, &mut bystander];
        let pins = m.pin(&mut pinned);
        let result = image(&mut m, &ops, &mut input, Strategy::Addition { k: 1 });
        m.unpin(pins, &mut pinned);
        result
    };
    assert!(
        st.safepoint_collections > 0,
        "test must actually exercise mid-image collections"
    );
    assert!(img.dim() > 0);

    // The bystander was relocated, not corrupted: still dimension 2,
    // still contains exactly its generators.
    assert_eq!(bystander.dim(), 2);
    let b0_again = m.basis_ket(&vars, &[false, true, false, true]);
    let b1_again = m.basis_ket(&vars, &[true, true, false, false]);
    let b2_other = m.basis_ket(&vars, &[true, true, true, true]);
    assert!(bystander.contains(&mut m, b0_again));
    assert!(bystander.contains(&mut m, b1_again));
    assert!(!bystander.contains(&mut m, b2_other));
    // And the pinned transition system still denotes its initial space.
    let fresh = {
        let states: Vec<_> = spec
            .initial_states
            .iter()
            .map(|amps| m.product_ket(&vars, amps))
            .collect();
        Subspace::from_states(&mut m, 4, &states)
    };
    assert!(qts.initial().clone().equals(&mut m, &fresh));
    assert_eq!(m.root_count(), 0, "unpin must release every root");
}

/// The fixpoint drivers fold in-image safepoint collections into their
/// reported totals: an aggressive-GC reachability run shows collections
/// both between iterations and inside images, and per-iteration stats
/// carry the safepoint counters.
#[test]
fn reachability_reports_in_image_safepoint_collections() {
    let mut m = TddManager::new();
    m.set_gc_policy(Some(GcPolicy::aggressive()));
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.4));
    let r = qits::mc::reachable_space(&mut m, &mut qts, Strategy::Addition { k: 1 }, 20);
    assert!(r.converged);
    assert!(r.collections > 0);
    assert!(r.reclaimed_nodes > 0);
    let in_image: u64 = r.stats.iter().map(|s| s.safepoint_collections).sum();
    assert!(in_image > 0, "image() calls must have collected internally");
    assert!(
        r.collections as u64 >= in_image,
        "driver totals must include the in-image collections"
    );
}
