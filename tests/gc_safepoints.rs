//! In-image GC safepoint integration tests, driven through the engine.
//!
//! The serial Table-I strategies poll safepoints between addition slices,
//! between contraction blocks, and after every Gram–Schmidt residual.
//! These tests force a collection at **every** safepoint (the aggressive
//! policy collects whenever anything was allocated) and check that
//!
//! * engine image results are bit-for-bit identical to the GC-off run
//!   across random circuits and strategies,
//! * peak arena occupancy of a serial addition-partition image stays
//!   measurably below the grow-only baseline (the memory win the ROADMAP
//!   follow-up asked for), and
//! * unrelated structures passed as `kept` survive every mid-image
//!   collection — the engine performs the rooting internally.

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::{Engine, EngineBuilder, Strategy, Subspace};
use qits_circuit::{generators, Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::GcPolicy;

fn arb_gate(n: u32) -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

/// Builds the same random system twice — once per session — so the GC-on
/// and GC-off runs start from identical state.
fn build_engine(
    n: u32,
    circuit: &Circuit,
    amps: &[Vec<(Cplx, Cplx)>],
    strategy: Strategy,
    policy: Option<GcPolicy>,
) -> Engine {
    let op = Operation::from_circuit("rand", circuit);
    EngineBuilder::new()
        .strategy(strategy)
        .gc_policy(policy)
        .build_with(n, vec![op], |m| {
            let vars = Subspace::ket_vars(n);
            let states: Vec<_> = amps.iter().map(|a| m.product_ket(&vars, a)).collect();
            Subspace::from_states(m, n, &states)
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Collecting at every safepoint leaves the engine's image bit-for-bit
    /// identical to the GC-off run: same dimension, and every basis
    /// vector imports to the *exact same canonical edge* (hash-consing
    /// makes equal tensors equal edges, so this is equality of the
    /// diagrams themselves, not merely of the spanned subspace).
    #[test]
    fn collect_at_every_safepoint_is_invisible(
        circuit in arb_circuit(3, 8),
        amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), 3), 1..3),
    ) {
        for strategy in [
            Strategy::Basic,
            Strategy::Addition { k: 1 },
            Strategy::Addition { k: 2 },
            Strategy::Contraction { k1: 2, k2: 1 },
            Strategy::Contraction { k1: 1, k2: 2 },
        ] {
            let mut e_plain = build_engine(3, &circuit, &amps, strategy, None);
            let (img_plain, st_plain) = e_plain.image().unwrap();
            prop_assert_eq!(st_plain.safepoint_collections, 0);

            let mut e_gc = build_engine(
                3,
                &circuit,
                &amps,
                strategy,
                Some(GcPolicy::aggressive()),
            );
            let input_dim = e_gc.initial().dim();
            let (img_gc, st_gc) = e_gc.image().unwrap();
            // The basic method's only polls are between Gram–Schmidt
            // residuals, and the final one is skipped: a dimension-1
            // input legitimately polls zero times there.
            if !matches!(strategy, Strategy::Basic) || input_dim > 1 {
                prop_assert!(st_gc.safepoints > 0, "{}: no safepoint polled", strategy);
            }

            prop_assert_eq!(
                img_plain.dim(), img_gc.dim(),
                "{}: image dimension differs under GC", strategy
            );
            for (&b_plain, &b_gc) in img_plain.basis().iter().zip(img_gc.basis()) {
                let imported = e_plain.manager_mut().import(e_gc.manager(), b_gc);
                prop_assert_eq!(
                    imported, b_plain,
                    "{}: basis vector differs bit-for-bit", strategy
                );
            }
            // The input rode through every collection intact too.
            let plain_basis = e_plain.initial().basis().to_vec();
            for (&i_plain, &i_gc) in plain_basis.iter().zip(e_gc.initial().basis()) {
                let imported = e_plain.manager_mut().import(e_gc.manager(), i_gc);
                prop_assert_eq!(imported, i_plain, "{}: input corrupted", strategy);
            }
        }
    }
}

/// Acceptance regression: with the aggressive policy, peak arena
/// occupancy during a serial addition-partition image on the
/// reachability example's systems stays measurably below the grow-only
/// baseline, with bit-for-bit identical results.
#[test]
fn addition_safepoints_cut_peak_arena_below_grow_only() {
    for spec in [generators::grover(4), generators::qrw(4, 0.1)] {
        let strategy = Strategy::Addition { k: 1 };

        let mut e_plain = EngineBuilder::new()
            .strategy(strategy)
            .build_from_spec(&spec)
            .unwrap();
        let (img_plain, st_plain) = e_plain.image().unwrap();

        let mut e_gc = EngineBuilder::new()
            .strategy(strategy)
            .gc_policy(Some(GcPolicy::aggressive()))
            .build_from_spec(&spec)
            .unwrap();
        let (img_gc, st_gc) = e_gc.image().unwrap();

        assert!(
            st_gc.safepoint_collections > 0,
            "{}: safepoints must collect",
            spec.name
        );
        assert!(
            st_gc.safepoint_reclaimed > 0,
            "{}: safepoints must reclaim",
            spec.name
        );
        assert!(
            st_gc.peak_arena < st_plain.peak_arena,
            "{}: peak arena must drop below the grow-only baseline: {} vs {}",
            spec.name,
            st_gc.peak_arena,
            st_plain.peak_arena
        );
        // Bit-for-bit agreement of the images.
        assert_eq!(img_plain.dim(), img_gc.dim(), "{}", spec.name);
        for (&b_plain, &b_gc) in img_plain.basis().iter().zip(img_gc.basis()) {
            let imported = e_plain.manager_mut().import(e_gc.manager(), b_gc);
            assert_eq!(imported, b_plain, "{}: image differs", spec.name);
        }
    }
}

/// The same regression for the contraction partition: per-block and
/// per-residual safepoints keep the arena below the grow-only peak.
#[test]
fn contraction_safepoints_cut_peak_arena_below_grow_only() {
    let spec = generators::qrw(4, 0.1);
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut e_plain = EngineBuilder::new()
        .strategy(strategy)
        .build_from_spec(&spec)
        .unwrap();
    let (_, st_plain) = e_plain.image().unwrap();

    let mut e_gc = EngineBuilder::new()
        .strategy(strategy)
        .gc_policy(Some(GcPolicy::aggressive()))
        .build_from_spec(&spec)
        .unwrap();
    let (_, st_gc) = e_gc.image().unwrap();

    assert!(st_gc.safepoint_collections > 0);
    assert!(
        st_gc.peak_arena < st_plain.peak_arena,
        "peak arena must drop below the grow-only baseline: {} vs {}",
        st_gc.peak_arena,
        st_plain.peak_arena
    );
}

/// A subspace that is neither the image input nor its output survives
/// in-image safepoint collections when passed as `kept` — the engine
/// roots it (and its own system) internally; no root bookkeeping in
/// sight.
#[test]
fn kept_bystander_survives_in_image_collections() {
    let spec = generators::qrw(4, 0.1);
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Addition { k: 1 })
        .gc_policy(Some(GcPolicy::aggressive()))
        .build_from_spec(&spec)
        .unwrap();

    // An unrelated subspace living on the same session.
    let vars = Subspace::ket_vars(4);
    let b0 = engine
        .manager_mut()
        .basis_ket(&vars, &[false, true, false, true]);
    let b1 = engine
        .manager_mut()
        .basis_ket(&vars, &[true, true, false, false]);
    let bystander = engine.subspace_from_states(&[b0, b1]).unwrap();

    let input = engine.initial().clone();
    let (img, st) = engine.image_of_keeping(&input, &[&bystander]).unwrap();
    assert!(
        st.safepoint_collections > 0,
        "test must actually exercise mid-image collections"
    );
    assert!(img.dim() > 0);

    // The bystander is untouched: still dimension 2, still contains
    // exactly its generators.
    assert_eq!(bystander.dim(), 2);
    let b0_again = engine
        .manager_mut()
        .basis_ket(&vars, &[false, true, false, true]);
    let b1_again = engine
        .manager_mut()
        .basis_ket(&vars, &[true, true, false, false]);
    let b2_other = engine
        .manager_mut()
        .basis_ket(&vars, &[true, true, true, true]);
    assert!(bystander.contains(engine.manager_mut(), b0_again));
    assert!(bystander.contains(engine.manager_mut(), b1_again));
    assert!(!bystander.contains(engine.manager_mut(), b2_other));
    // And the internally rooted system still denotes its initial space.
    let fresh = {
        let states: Vec<_> = spec
            .initial_states
            .iter()
            .map(|amps| engine.manager_mut().product_ket(&vars, amps))
            .collect();
        engine.subspace_from_states(&states).unwrap()
    };
    let initial = engine.initial().clone();
    assert!(initial.equals(engine.manager_mut(), &fresh));
    assert_eq!(
        engine.manager().root_count(),
        0,
        "the engine must release every root it takes"
    );
}

/// The fixpoint drivers fold in-image safepoint collections into their
/// reported totals: an aggressive-GC reachability run shows collections
/// both between iterations and inside images, and per-iteration stats
/// carry the safepoint counters.
#[test]
fn reachability_reports_in_image_safepoint_collections() {
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Addition { k: 1 })
        .gc_policy(Some(GcPolicy::aggressive()))
        .build_from_spec(&generators::qrw(3, 0.4))
        .unwrap();
    let r = engine.reachable_space(20).unwrap();
    assert!(r.converged);
    assert!(r.collections > 0);
    assert!(r.reclaimed_nodes > 0);
    let in_image: u64 = r.stats.iter().map(|s| s.safepoint_collections).sum();
    assert!(in_image > 0, "image() calls must have collected internally");
    assert!(
        r.collections as u64 >= in_image,
        "driver totals must include the in-image collections"
    );
}
