//! Format-compatibility guard over a **committed** golden snapshot.
//!
//! `tests/fixtures/golden_v1.qsnap` was written by the version-1 codec
//! (see [`regenerate_golden_fixture`]) and is checked in. This suite
//! proves today's reader still accepts yesterday's bytes: if an edit to
//! the store crate changes the on-disk layout without bumping
//! `FORMAT_VERSION`, the fixture stops parsing (or parses to different
//! contents) and CI fails here — before a user's snapshot silently
//! rots.
//!
//! To regenerate after an *intentional* format bump:
//!
//! ```text
//! cargo test -p qits --test store_compat -- --ignored regenerate
//! ```

use std::path::PathBuf;

use qits::store::{decode_job_output, encode_job_output, Snapshot, FORMAT_VERSION};
use qits::{EngineBuilder, JobOutput};
use qits_circuit::generators;

/// The fixture's synthetic spec fingerprint — round-trip coverage for
/// the `Some` arm without tying the fixture to the live fingerprint
/// hash (whose inputs may legitimately evolve).
const GOLDEN_FINGERPRINT: u128 = 0x5152_5354_5556_5758_595A_0001_0002_0003;

/// Key of the fixture's single memo entry.
const GOLDEN_MEMO_KEY: u128 = 0x42;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden_v1.qsnap")
}

/// The deterministic recipe behind the fixture: GHZ(3), one fixpoint
/// iteration, a synthetic fingerprint, and one memo entry. Everything
/// here is single-threaded and input-pinned, so regeneration is
/// byte-stable unless the codec itself changes.
fn golden_snapshot() -> Snapshot {
    let mut engine = EngineBuilder::new()
        .build_from_spec(&generators::ghz(3))
        .expect("ghz engine builds");
    let partial = engine.reachable_space(1).expect("one iteration");
    let mut snap = engine.snapshot("golden-v1", Some(&partial));
    snap.spec_fingerprint = Some(GOLDEN_FINGERPRINT);
    snap.memo.push(qits::store::MemoEntry {
        key: GOLDEN_MEMO_KEY,
        value: encode_job_output(&JobOutput::Equivalence { equivalent: true }),
    });
    snap
}

/// Rewrites the committed fixture. Run explicitly (`-- --ignored`)
/// after an intentional format change, and commit the result.
#[test]
#[ignore = "regenerates the committed fixture; run on intentional format bumps only"]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    golden_snapshot().write_to(&path).unwrap();
    println!("wrote {}", path.display());
}

#[test]
fn golden_fixture_still_parses() {
    let snap = Snapshot::read_from(fixture_path())
        .expect("version-1 fixture must stay readable — see module docs");
    assert_eq!(snap.label, "golden-v1");
    assert_eq!(snap.spec_fingerprint, Some(GOLDEN_FINGERPRINT));
    assert!(snap.tdd.is_some(), "fixture carries a TDD dump");
    assert_eq!(snap.subspaces.len(), 2, "initial space + frontier");
    let reach = snap.reach.as_ref().expect("fixture checkpoints a fixpoint");
    assert_eq!(reach.iterations, 1);

    assert_eq!(snap.memo.len(), 1);
    assert_eq!(snap.memo[0].key, GOLDEN_MEMO_KEY);
    match decode_job_output(&snap.memo[0].value) {
        Ok(JobOutput::Equivalence { equivalent: true }) => {}
        other => panic!("memo entry decodes to {other:?}"),
    }
}

#[test]
fn golden_fixture_warm_starts_todays_engine() {
    let snap = Snapshot::read_from(fixture_path()).expect("fixture parses");
    // Built through `EngineBuilder` the engine carries no fingerprint,
    // so the synthetic one in the fixture is not compared.
    let mut engine = EngineBuilder::new()
        .build_from_spec(&generators::ghz(3))
        .unwrap();
    let resumed = engine
        .warm_start(&snap)
        .expect("v1 snapshot warm-starts")
        .expect("progress restored");
    assert_eq!(resumed.iterations, 1);

    // The restored frontier must be the frontier today's engine
    // computes for the same recipe.
    let mut fresh = EngineBuilder::new()
        .build_from_spec(&generators::ghz(3))
        .unwrap();
    let expected = fresh.reachable_space(1).unwrap();
    assert_eq!(resumed.space.dim(), expected.space.dim());
    assert_eq!(resumed.converged, expected.converged);

    let continued = engine.resume_reachable_space(&resumed, 64).unwrap();
    assert!(continued.converged);
}

#[test]
fn reencoding_the_fixture_reproduces_its_bytes() {
    // decode ∘ encode must be the identity on the golden bytes: today's
    // *writer* still speaks version 1, not just today's reader. This
    // catches a layout change where reader and writer evolved together
    // (a mere re-read would still pass) without depending on engine
    // internals staying byte-deterministic forever.
    let committed = std::fs::read(fixture_path()).expect("fixture readable");
    let parsed = Snapshot::from_bytes(&committed).expect("fixture parses");
    assert_eq!(
        parsed.to_bytes(),
        committed,
        "re-encoding the parsed fixture diverged from the committed v1 \
         bytes — if the format changed intentionally, bump FORMAT_VERSION \
         (currently {FORMAT_VERSION}) and regenerate the fixture"
    );
}
