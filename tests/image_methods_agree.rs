//! Cross-strategy agreement: the basic algorithm, the addition partition,
//! and the contraction partition must compute the *same* image subspace on
//! every benchmark family — the central soundness claim behind Table I.

use qits::{EngineBuilder, Strategy, Subspace};
use qits_circuit::generators::{self, QtsSpec};

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Addition { k: 2 },
        Strategy::Addition { k: 3 },
        Strategy::Contraction { k1: 1, k2: 1 },
        Strategy::Contraction { k1: 2, k2: 2 },
        Strategy::Contraction { k1: 4, k2: 4 },
        Strategy::Contraction { k1: 3, k2: 1 },
        Strategy::AdditionParallel { k: 1 },
        Strategy::AdditionParallel { k: 2 },
    ]
}

fn check_all_agree(spec: &QtsSpec) {
    check_all_agree_inner(spec, false);
}

/// Like [`check_all_agree`], but forces a garbage collection after every
/// strategy's image computation: the system, the reference image, and the
/// freshly computed image are protected and everything else is swept in
/// place. Cross-strategy agreement must be unaffected.
fn check_all_agree_with_forced_gc(spec: &QtsSpec) {
    check_all_agree_inner(spec, true);
}

fn check_all_agree_inner(spec: &QtsSpec, force_gc: bool) {
    let mut engine = EngineBuilder::new().build_from_spec(spec).unwrap();
    let mut reference: Option<Subspace> = None;
    for s in strategies() {
        let (img, stats) = engine.image_with(&s).unwrap();
        assert_eq!(img.dim(), stats.output_dim);
        if force_gc {
            // The engine retains its own system; the computed images ride
            // through the sweep as `kept` subspaces.
            let mut kept: Vec<&Subspace> = vec![&img];
            if let Some(r) = reference.as_ref() {
                kept.push(r);
            }
            engine.collect(&kept);
        }
        match &reference {
            None => reference = Some(img),
            Some(r) => assert!(
                img.equals(engine.manager_mut(), r),
                "{}: strategy {s} disagrees with basic{}",
                spec.name,
                if force_gc { " (with forced GC)" } else { "" }
            ),
        }
    }
}

#[test]
fn ghz_all_strategies_agree() {
    check_all_agree(&generators::ghz(6));
}

#[test]
fn grover_all_strategies_agree() {
    check_all_agree(&generators::grover(5));
}

#[test]
fn bv_all_strategies_agree() {
    let secret = generators::bv_secret(6);
    check_all_agree(&generators::bernstein_vazirani(6, &secret));
}

#[test]
fn qft_all_strategies_agree() {
    check_all_agree(&generators::qft(5));
}

#[test]
fn qft_with_swaps_all_strategies_agree() {
    check_all_agree(&generators::qft_with_swaps(4));
}

#[test]
fn qrw_all_strategies_agree() {
    check_all_agree(&generators::qrw(4, 0.3));
}

#[test]
fn bitflip_code_all_strategies_agree() {
    check_all_agree(&generators::bitflip_code());
}

#[test]
fn ghz_all_strategies_agree_with_forced_gc() {
    check_all_agree_with_forced_gc(&generators::ghz(5));
}

#[test]
fn qrw_all_strategies_agree_with_forced_gc() {
    check_all_agree_with_forced_gc(&generators::qrw(4, 0.3));
}

#[test]
fn grover_all_strategies_agree_with_forced_gc() {
    check_all_agree_with_forced_gc(&generators::grover(4));
}

#[test]
fn grover_invariance_at_moderate_size() {
    // T(S) = S scales with the register: check at 7 qubits.
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 4, k2: 4 })
        .build_from_spec(&generators::grover(7))
        .unwrap();
    let (img, _) = engine.image().unwrap();
    let initial = engine.initial().clone();
    assert!(img.equals(engine.manager_mut(), &initial));
}

#[test]
fn image_dim_is_bounded_by_branches_times_input_dim() {
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Basic)
        .build_from_spec(&generators::qrw(4, 0.2))
        .unwrap();
    let (img, stats) = engine.image().unwrap();
    assert!(img.dim() <= stats.branches * engine.initial().dim());
}
