//! Cross-strategy agreement: the basic algorithm, the addition partition,
//! and the contraction partition must compute the *same* image subspace on
//! every benchmark family — the central soundness claim behind Table I.

use qits::{image, QuantumTransitionSystem, Strategy, Subspace};
use qits_circuit::generators::{self, QtsSpec};
use qits_tdd::TddManager;

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Addition { k: 2 },
        Strategy::Addition { k: 3 },
        Strategy::Contraction { k1: 1, k2: 1 },
        Strategy::Contraction { k1: 2, k2: 2 },
        Strategy::Contraction { k1: 4, k2: 4 },
        Strategy::Contraction { k1: 3, k2: 1 },
        Strategy::AdditionParallel { k: 1 },
        Strategy::AdditionParallel { k: 2 },
    ]
}

fn check_all_agree(spec: &QtsSpec) {
    check_all_agree_inner(spec, false);
}

/// Like [`check_all_agree`], but forces a garbage collection after every
/// strategy's image computation: the system, the reference image, and the
/// freshly computed image are protected, everything else is swept, and all
/// three are relocated. Cross-strategy agreement must be unaffected.
fn check_all_agree_with_forced_gc(spec: &QtsSpec) {
    check_all_agree_inner(spec, true);
}

fn check_all_agree_inner(spec: &QtsSpec, force_gc: bool) {
    let mut m = TddManager::new();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, spec);
    let mut reference: Option<Subspace> = None;
    for s in strategies() {
        let (ops, initial) = qts.parts_mut();
        let (mut img, stats) = image(&mut m, &ops, initial, s);
        assert_eq!(img.dim(), stats.output_dim);
        if force_gc {
            let mut holders: Vec<&mut dyn qits_tdd::Relocatable> = vec![&mut qts, &mut img];
            if let Some(r) = reference.as_mut() {
                holders.push(r);
            }
            m.collect_retaining(&mut holders);
        }
        match &reference {
            None => reference = Some(img),
            Some(r) => assert!(
                img.equals(&mut m, r),
                "{}: strategy {s} disagrees with basic{}",
                spec.name,
                if force_gc { " (with forced GC)" } else { "" }
            ),
        }
    }
}

#[test]
fn ghz_all_strategies_agree() {
    check_all_agree(&generators::ghz(6));
}

#[test]
fn grover_all_strategies_agree() {
    check_all_agree(&generators::grover(5));
}

#[test]
fn bv_all_strategies_agree() {
    let secret = generators::bv_secret(6);
    check_all_agree(&generators::bernstein_vazirani(6, &secret));
}

#[test]
fn qft_all_strategies_agree() {
    check_all_agree(&generators::qft(5));
}

#[test]
fn qft_with_swaps_all_strategies_agree() {
    check_all_agree(&generators::qft_with_swaps(4));
}

#[test]
fn qrw_all_strategies_agree() {
    check_all_agree(&generators::qrw(4, 0.3));
}

#[test]
fn bitflip_code_all_strategies_agree() {
    check_all_agree(&generators::bitflip_code());
}

#[test]
fn ghz_all_strategies_agree_with_forced_gc() {
    check_all_agree_with_forced_gc(&generators::ghz(5));
}

#[test]
fn qrw_all_strategies_agree_with_forced_gc() {
    check_all_agree_with_forced_gc(&generators::qrw(4, 0.3));
}

#[test]
fn grover_all_strategies_agree_with_forced_gc() {
    check_all_agree_with_forced_gc(&generators::grover(4));
}

#[test]
fn grover_invariance_at_moderate_size() {
    // T(S) = S scales with the register: check at 7 qubits.
    let mut m = TddManager::new();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(7));
    let (ops, initial) = qts.parts_mut();
    let (img, _) = image(
        &mut m,
        &ops,
        initial,
        Strategy::Contraction { k1: 4, k2: 4 },
    );
    assert!(img.equals(&mut m, qts.initial()));
}

#[test]
fn image_dim_is_bounded_by_branches_times_input_dim() {
    let mut m = TddManager::new();
    let spec = generators::qrw(4, 0.2);
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
    let (ops, initial) = qts.parts_mut();
    let (img, stats) = image(&mut m, &ops, initial, Strategy::Basic);
    assert!(img.dim() <= stats.branches * qts.initial().dim());
}
