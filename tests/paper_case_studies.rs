//! End-to-end reproductions of the three worked examples in the paper's
//! Section III-A: combinational (Grover), dynamic (bit-flip code), and
//! noisy (quantum walk) circuits.

use qits::{image, QuantumTransitionSystem, Strategy, Subspace};
use qits_circuit::generators;
use qits_circuit::tensorize::states;
use qits_tdd::TddManager;

const STRATEGY: Strategy = Strategy::Contraction { k1: 3, k2: 2 };

/// Section III-A.1: `T1(S) = S` for `S = span{|++->, |11->}`.
#[test]
fn grover_iteration_preserves_its_invariant_subspace() {
    let mut m = TddManager::new();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
    assert_eq!(qts.initial().dim(), 2);
    let (ops, initial) = qts.parts_mut();
    let (img, _) = image(&mut m, &ops, initial, STRATEGY);
    assert!(img.equals(&mut m, qts.initial()));
}

/// Section III-A.1, sharper: a state in S maps into S, and a state outside
/// S maps outside S's one-step image.
#[test]
fn grover_iteration_image_of_single_state() {
    let mut m = TddManager::new();
    let spec = generators::grover(3);
    let vars = Subspace::ket_vars(3);
    let ppm = m.product_ket(&vars, &[states::PLUS, states::PLUS, states::MINUS]);
    let single = Subspace::from_states(&mut m, 3, &[ppm]);
    let mut qts = QuantumTransitionSystem::new(3, spec.operations.clone(), single);
    let (ops, initial) = qts.parts_mut();
    let (img, _) = image(&mut m, &ops, initial, STRATEGY);
    // One Grover iteration of |++-> is exactly |11-> (marked state found).
    let oom = m.product_ket(&vars, &[states::ONE, states::ONE, states::MINUS]);
    assert_eq!(img.dim(), 1);
    assert!(img.contains(&mut m, oom));
}

/// Section III-A.2: the bit-flip correction maps
/// `span{|100>,|010>,|001>} (x) |000>` to data `|000>` in every branch.
#[test]
fn bitflip_code_corrects_single_errors() {
    let mut m = TddManager::new();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
    let (ops, initial) = qts.parts_mut();
    let (img, _) = image(&mut m, &ops, initial, STRATEGY);
    // Expected: data |000> with the three firing syndromes.
    let vars = Subspace::ket_vars(6);
    let expected_states: Vec<_> = [
        [true, false, true],
        [true, true, false],
        [false, true, true],
    ]
    .iter()
    .map(|synd| m.basis_ket(&vars, &[false, false, false, synd[0], synd[1], synd[2]]))
    .collect();
    let expected = Subspace::from_states(&mut m, 6, &expected_states);
    assert!(img.equals(&mut m, &expected));
}

/// Section III-A.2: with *no* error, only T000 fires and the data is
/// untouched.
#[test]
fn bitflip_code_no_error_passes_through() {
    let mut m = TddManager::new();
    let spec = generators::bitflip_code();
    let vars = Subspace::ket_vars(6);
    let clean = m.basis_ket(&vars, &[false; 6]);
    let init = Subspace::from_states(&mut m, 6, &[clean]);
    let mut qts = QuantumTransitionSystem::new(6, spec.operations.clone(), init);
    let (ops, initial) = qts.parts_mut();
    let (img, _) = image(&mut m, &ops, initial, STRATEGY);
    assert_eq!(img.dim(), 1);
    let expected = m.basis_ket(&vars, &[false; 6]); // syndrome 000
    assert!(img.contains(&mut m, expected));
}

/// Section III-A.3: one noisy walk step maps `span{|0>|i>}` into
/// `span{|0>|(i-1) mod 8>, |1>|(i+1) mod 8>}` — the paper's bound. The
/// exact image is the single ray `(|0>|i-1> + |1>|i+1>)/sqrt(2)`: the
/// bit-flip leaves `|+>` alone, so the noise branches coincide and (as the
/// paper notes) the error "will not influence the reachable subspace".
#[test]
fn noisy_walk_single_step_images() {
    let mut m = TddManager::new();
    let spec = generators::qrw(4, 0.3);
    let vars = Subspace::ket_vars(4);
    for i in 0..8usize {
        let bits: Vec<bool> = std::iter::once(false)
            .chain((0..3).map(|b| (i >> (2 - b)) & 1 == 1))
            .collect();
        let start = m.basis_ket(&vars, &bits);
        let init = Subspace::from_states(&mut m, 4, &[start]);
        let mut qts = QuantumTransitionSystem::new(4, spec.operations.clone(), init);
        let (ops, initial) = qts.parts_mut();
        let (img, _) = image(&mut m, &ops, initial, STRATEGY);

        let down = (i + 7) % 8;
        let up = (i + 1) % 8;
        let down_bits: Vec<bool> = std::iter::once(false)
            .chain((0..3).map(|b| (down >> (2 - b)) & 1 == 1))
            .collect();
        let up_bits: Vec<bool> = std::iter::once(true)
            .chain((0..3).map(|b| (up >> (2 - b)) & 1 == 1))
            .collect();
        let kd = m.basis_ket(&vars, &down_bits);
        let ku = m.basis_ket(&vars, &up_bits);
        // The exact image: one entangled ray inside the paper's span.
        assert_eq!(img.dim(), 1, "walk step from position {i}");
        let superpos = {
            let sum = m.add(kd, ku);
            m.scale(sum, qits_num::Cplx::FRAC_1_SQRT_2)
        };
        assert!(
            img.contains(&mut m, superpos),
            "walk step from position {i}: ray mismatch"
        );
        let bound = Subspace::from_states(&mut m, 4, &[kd, ku]);
        assert!(
            img.is_subspace_of(&mut m, &bound),
            "walk step from position {i}: escapes the paper's span"
        );
    }
}

/// The noise probability must not change the *subspace* semantics (only
/// amplitudes): images for different p coincide.
#[test]
fn noisy_walk_subspace_independent_of_noise_probability() {
    let mut m = TddManager::new();
    let mut images = Vec::new();
    for p in [0.05, 0.5, 0.95] {
        let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(4, p));
        let (ops, initial) = qts.parts_mut();
        let (img, _) = image(&mut m, &ops, initial, STRATEGY);
        images.push(img);
    }
    assert!(images[0].equals(&mut m, &images[1]));
    assert!(images[1].equals(&mut m, &images[2]));
}
