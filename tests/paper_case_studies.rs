//! End-to-end reproductions of the three worked examples in the paper's
//! Section III-A: combinational (Grover), dynamic (bit-flip code), and
//! noisy (quantum walk) circuits — all driven through the engine session.

use qits::{EngineBuilder, Strategy, Subspace};
use qits_circuit::generators;
use qits_circuit::tensorize::states;

const STRATEGY: Strategy = Strategy::Contraction { k1: 3, k2: 2 };

/// Section III-A.1: `T1(S) = S` for `S = span{|++->, |11->}`.
#[test]
fn grover_iteration_preserves_its_invariant_subspace() {
    let mut engine = EngineBuilder::new()
        .strategy(STRATEGY)
        .build_from_spec(&generators::grover(3))
        .unwrap();
    assert_eq!(engine.initial().dim(), 2);
    let (img, _) = engine.image().unwrap();
    let initial = engine.initial().clone();
    assert!(img.equals(engine.manager_mut(), &initial));
}

/// Section III-A.1, sharper: a state in S maps into S, and a state outside
/// S maps outside S's one-step image.
#[test]
fn grover_iteration_image_of_single_state() {
    let spec = generators::grover(3);
    let mut engine = EngineBuilder::new()
        .strategy(STRATEGY)
        .build_with(3, spec.operations.clone(), |m| {
            let vars = Subspace::ket_vars(3);
            let ppm = m.product_ket(&vars, &[states::PLUS, states::PLUS, states::MINUS]);
            Subspace::from_states(m, 3, &[ppm])
        })
        .unwrap();
    let (img, _) = engine.image().unwrap();
    // One Grover iteration of |++-> is exactly |11-> (marked state found).
    let vars = Subspace::ket_vars(3);
    let oom = engine
        .manager_mut()
        .product_ket(&vars, &[states::ONE, states::ONE, states::MINUS]);
    assert_eq!(img.dim(), 1);
    assert!(img.contains(engine.manager_mut(), oom));
}

/// Section III-A.2: the bit-flip correction maps
/// `span{|100>,|010>,|001>} (x) |000>` to data `|000>` in every branch.
#[test]
fn bitflip_code_corrects_single_errors() {
    let mut engine = EngineBuilder::new()
        .strategy(STRATEGY)
        .build_from_spec(&generators::bitflip_code())
        .unwrap();
    let (img, _) = engine.image().unwrap();
    // Expected: data |000> with the three firing syndromes.
    let vars = Subspace::ket_vars(6);
    let expected_states: Vec<_> = [
        [true, false, true],
        [true, true, false],
        [false, true, true],
    ]
    .iter()
    .map(|synd| {
        engine
            .manager_mut()
            .basis_ket(&vars, &[false, false, false, synd[0], synd[1], synd[2]])
    })
    .collect();
    let expected = engine.subspace_from_states(&expected_states).unwrap();
    assert!(img.equals(engine.manager_mut(), &expected));
}

/// Section III-A.2: with *no* error, only T000 fires and the data is
/// untouched.
#[test]
fn bitflip_code_no_error_passes_through() {
    let spec = generators::bitflip_code();
    let mut engine = EngineBuilder::new()
        .strategy(STRATEGY)
        .build_with(6, spec.operations.clone(), |m| {
            let vars = Subspace::ket_vars(6);
            let clean = m.basis_ket(&vars, &[false; 6]);
            Subspace::from_states(m, 6, &[clean])
        })
        .unwrap();
    let (img, _) = engine.image().unwrap();
    assert_eq!(img.dim(), 1);
    let vars = Subspace::ket_vars(6);
    let expected = engine.manager_mut().basis_ket(&vars, &[false; 6]); // syndrome 000
    assert!(img.contains(engine.manager_mut(), expected));
}

/// Section III-A.3: one noisy walk step maps `span{|0>|i>}` into
/// `span{|0>|(i-1) mod 8>, |1>|(i+1) mod 8>}` — the paper's bound. The
/// exact image is the single ray `(|0>|i-1> + |1>|i+1>)/sqrt(2)`: the
/// bit-flip leaves `|+>` alone, so the noise branches coincide and (as the
/// paper notes) the error "will not influence the reachable subspace".
#[test]
fn noisy_walk_single_step_images() {
    let spec = generators::qrw(4, 0.3);
    let vars = Subspace::ket_vars(4);
    for i in 0..8usize {
        let bits: Vec<bool> = std::iter::once(false)
            .chain((0..3).map(|b| (i >> (2 - b)) & 1 == 1))
            .collect();
        let mut engine = EngineBuilder::new()
            .strategy(STRATEGY)
            .build_with(4, spec.operations.clone(), |m| {
                let start = m.basis_ket(&Subspace::ket_vars(4), &bits);
                Subspace::from_states(m, 4, &[start])
            })
            .unwrap();
        let (img, _) = engine.image().unwrap();

        let down = (i + 7) % 8;
        let up = (i + 1) % 8;
        let down_bits: Vec<bool> = std::iter::once(false)
            .chain((0..3).map(|b| (down >> (2 - b)) & 1 == 1))
            .collect();
        let up_bits: Vec<bool> = std::iter::once(true)
            .chain((0..3).map(|b| (up >> (2 - b)) & 1 == 1))
            .collect();
        let kd = engine.manager_mut().basis_ket(&vars, &down_bits);
        let ku = engine.manager_mut().basis_ket(&vars, &up_bits);
        // The exact image: one entangled ray inside the paper's span.
        assert_eq!(img.dim(), 1, "walk step from position {i}");
        let superpos = {
            let m = engine.manager_mut();
            let sum = m.add(kd, ku);
            m.scale(sum, qits_num::Cplx::FRAC_1_SQRT_2)
        };
        assert!(
            img.contains(engine.manager_mut(), superpos),
            "walk step from position {i}: ray mismatch"
        );
        let bound = engine.subspace_from_states(&[kd, ku]).unwrap();
        assert!(
            img.is_subspace_of(engine.manager_mut(), &bound),
            "walk step from position {i}: escapes the paper's span"
        );
    }
}

/// The noise probability must not change the *subspace* semantics (only
/// amplitudes): images for different p coincide.
#[test]
fn noisy_walk_subspace_independent_of_noise_probability() {
    let mut engines = Vec::new();
    let mut images = Vec::new();
    for p in [0.05, 0.5, 0.95] {
        let mut engine = EngineBuilder::new()
            .strategy(STRATEGY)
            .build_from_spec(&generators::qrw(4, p))
            .unwrap();
        let (img, _) = engine.image().unwrap();
        engines.push(engine);
        images.push(img);
    }
    // Compare across sessions by importing each basis into the first.
    let (first, rest) = engines.split_at_mut(1);
    for (other_img, other_engine) in images[1..].iter().zip(rest.iter()) {
        let mut imported = Subspace::zero(4);
        for &b in other_img.basis() {
            let e = first[0].manager_mut().import(other_engine.manager(), b);
            imported.absorb(first[0].manager_mut(), e);
        }
        assert!(images[0].equals(first[0].manager_mut(), &imported));
    }
}
