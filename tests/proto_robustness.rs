//! No client line may kill the server: adversarial and randomized inputs
//! through every textual surface — `parse_request`, the shared gate DSL,
//! the scenario parser, and the live serve loop.
//!
//! The contract under test is uniform: every function here returns a
//! typed `Err` on bad input and never panics. The proptest cases assert
//! nothing *about* the results beyond "the call returned" — reaching the
//! end of the closure is the property — plus a few sanity checks that
//! errors render as non-empty messages (they end up on the wire).

use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use qits::serve::proto::{self, parse_circuit, parse_json, parse_request};
use qits::{EnginePool, EngineSpec};
use qits_circuit::parse::{parse_circuit_pair, parse_scenario};

// ----------------------------------------------------------------------
// Generators: byte soup, near-miss DSL, adversarial scenario documents,
// and JSON-ish request lines.
// ----------------------------------------------------------------------

/// Arbitrary bytes forced into a `str` — exercises the lexers on inputs
/// far outside the grammar (control characters, lone separators, UTF-8
/// replacement characters from invalid sequences).
fn byte_soup() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(0u8..=255, 0..64)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// A token that looks almost like a gate mnemonic: the real set, common
/// typos, and noise.
fn gate_token() -> impl proptest::strategy::Strategy<Value = String> {
    prop_oneof![
        Just("h".to_string()),
        Just("x".to_string()),
        Just("cx".to_string()),
        Just("ccx".to_string()),
        Just("cp".to_string()),
        Just("swap".to_string()),
        Just("proj".to_string()),
        Just("rz".to_string()),
        Just("sdg".to_string()),
        Just("cnot".to_string()),
        Just("H".to_string()),
        Just("hadamard".to_string()),
        Just("".to_string()),
        Just("{".to_string()),
        Just("#h".to_string()),
    ]
}

/// A token in wire position: in-range, out-of-range, overflowing,
/// negative, fractional, or plain garbage.
fn wire_token() -> impl proptest::strategy::Strategy<Value = String> {
    prop_oneof![
        (0u32..4).prop_map(|w| w.to_string()),
        Just("99999999999999999999".to_string()),
        Just("4294967296".to_string()),
        Just("-1".to_string()),
        Just("1.5".to_string()),
        Just("q0".to_string()),
        Just("0x2".to_string()),
        Just("".to_string()),
    ]
}

/// A token in angle position: finite, special, overflowing, or garbage.
fn angle_token() -> impl proptest::strategy::Strategy<Value = String> {
    prop_oneof![
        (-10.0..10.0f64).prop_map(|t| t.to_string()),
        Just("nan".to_string()),
        Just("inf".to_string()),
        Just("-inf".to_string()),
        Just("1e999".to_string()),
        Just("pi".to_string()),
        Just("--2".to_string()),
    ]
}

/// A near-miss DSL statement: a gate-ish head with 0..=4 argument
/// tokens — wrong arity, duplicate wires, and malformed numbers all
/// arise naturally from the combination.
fn dsl_statement() -> impl proptest::strategy::Strategy<Value = String> {
    (
        gate_token(),
        proptest::collection::vec(prop_oneof![wire_token(), angle_token()], 0..4),
    )
        .prop_map(|(gate, args)| {
            let mut s = gate;
            for a in args {
                s.push(' ');
                s.push_str(&a);
            }
            s
        })
}

/// A whole DSL program: statements joined by the grammar's separators
/// (and some that are not separators).
fn dsl_program() -> impl proptest::strategy::Strategy<Value = String> {
    (
        proptest::collection::vec(dsl_statement(), 0..6),
        prop_oneof![
            Just("; ".to_string()),
            Just("\n".to_string()),
            Just(";;".to_string()),
            Just(" ".to_string()),
        ],
    )
        .prop_map(|(stmts, sep)| stmts.join(&sep))
}

/// A line that belongs to (or nearly belongs to) the scenario grammar.
fn scenario_line() -> impl proptest::strategy::Strategy<Value = String> {
    prop_oneof![
        Just("scenario fuzz".to_string()),
        (0u32..6).prop_map(|n| format!("qubits {n}")),
        Just("qubits -3".to_string()),
        Just("qubits 99999999999999999999".to_string()),
        dsl_statement().prop_map(|s| format!("op a {{ {s} }}")),
        Just("op a {".to_string()),
        dsl_statement(),
        Just("}".to_string()),
        (wire_token(), angle_token()).prop_map(|(q, p)| format!("channel bitflip {q} {p}")),
        Just("circuit c { h 0 }".to_string()),
        Just("init 0 0".to_string()),
        Just("init + - (0.6,0;0.8,0)".to_string()),
        Just("init (".to_string()),
        (0usize..20).prop_map(|k| format!("reach {k}")),
        Just("invariant 4 {".to_string()),
        Just("0 1".to_string()),
        Just("equivalent a b".to_string()),
        Just("equivalent a b maybe".to_string()),
        Just("# comment".to_string()),
        byte_soup(),
    ]
}

/// A scenario document: random lines, sometimes with a plausible prefix.
fn scenario_doc() -> impl proptest::strategy::Strategy<Value = String> {
    (
        proptest::prelude::any::<bool>(),
        proptest::collection::vec(scenario_line(), 0..12),
    )
        .prop_map(|(prefixed, lines)| {
            let mut doc = String::new();
            if prefixed {
                doc.push_str("qubits 3\nop base { h 0 }\ninit 0 0 0\n");
            }
            for l in lines {
                doc.push_str(&l);
                doc.push('\n');
            }
            doc
        })
}

/// A request line: structurally valid JSON with adversarial payloads, or
/// outright non-JSON.
fn request_line() -> impl proptest::strategy::Strategy<Value = String> {
    prop_oneof![
        byte_soup(),
        dsl_program().prop_map(|p| {
            format!(
                "{{\"op\":\"submit\",\"id\":\"f\",\"job\":{{\"type\":\"equivalence\",\
                 \"a\":\"{}\",\"b\":\"h 0\"}}}}",
                proto::escape_json(&p)
            )
        }),
        (0usize..3, proptest::prelude::any::<u64>()).prop_map(|(depth, n)| {
            let pad = "[".repeat(depth * 8);
            format!("{pad}{n}")
        }),
        Just("{\"op\":\"submit\"}".to_string()),
        Just(
            "{\"op\":\"submit\",\"id\":\"x\",\"job\":{\"type\":\"invariant\",\
              \"n_qubits\":4294967296,\"max_iterations\":1,\"states\":[]}}"
                .to_string()
        ),
        Just(
            "{\"op\":\"submit\",\"id\":\"x\",\"job\":{\"type\":\"reachability\",\
              \"max_iterations\":18446744073709551616}}"
                .to_string()
        ),
        Just("{\"op\":\"stats\"".to_string()),
        Just("null".to_string()),
    ]
}

// ----------------------------------------------------------------------
// The properties: every surface returns, no input panics.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random bytes through every parser entry point.
    #[test]
    fn byte_soup_never_panics(text in byte_soup()) {
        let _ = parse_json(&text);
        let _ = parse_request(&text);
        let _ = parse_circuit(&text);
        let _ = parse_circuit_pair(&text, &text);
        let _ = parse_scenario(&text);
    }

    /// Near-miss DSL programs: either a circuit or a typed error with a
    /// renderable message — never a panic (duplicate wires included).
    #[test]
    fn near_miss_dsl_never_panics(program in dsl_program()) {
        if let Err(e) = qits_circuit::parse::parse_circuit(&program) {
            prop_assert!(!e.to_string().is_empty());
        }
        let _ = parse_circuit_pair(&program, "h 0");
        let _ = parse_circuit_pair("h 0", &program);
    }

    /// Adversarial scenario documents through the scenario parser.
    #[test]
    fn scenario_documents_never_panic(doc in scenario_doc()) {
        match parse_scenario(&doc) {
            // A parsed scenario must also survive spec construction and
            // circuit lookup — the CLI calls both on client input.
            Ok(s) => {
                let _ = s.to_spec();
                for (name, _) in &s.circuits {
                    let _ = s.circuit(name);
                }
                let _ = s.circuit("no-such-circuit");
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Request lines — including submits whose embedded circuits are
    /// near-miss DSL — through the wire-protocol parser.
    #[test]
    fn request_lines_never_panic(line in request_line()) {
        if let Err(e) = parse_request(&line) {
            prop_assert!(!e.is_empty());
        }
    }
}

/// The named regressions, pinned deterministically: each of these once
/// panicked (or could have) somewhere below the protocol layer.
#[test]
fn adversarial_corpus_is_typed_errors() {
    let corpus = [
        "cx 0 0",
        "swap 2 2",
        "ccx 0 1 0",
        "ccx 1 0 0",
        "cp 3 3 0.5",
        "h 18446744073709551616",
        "proj 0 2",
        "rz 0 not-a-number",
        "h 0 extra",
        "cx 0",
        "\u{0}\u{1}\u{2}",
        "h \u{221e}",
    ];
    for line in corpus {
        let err = qits_circuit::parse::parse_circuit(line)
            .expect_err(&format!("{line:?} must be refused"));
        assert!(!err.to_string().is_empty(), "{line:?}");
        // The same line smuggled through a wire-protocol equivalence job.
        let req = format!(
            "{{\"op\":\"submit\",\"id\":\"x\",\"job\":{{\"type\":\"equivalence\",\
             \"a\":\"{}\",\"b\":\"h 0\"}}}}",
            proto::escape_json(line)
        );
        assert!(parse_request(&req).is_err(), "{line:?} via equivalence");
    }

    // JSON-layer nasties: truncation, trailing junk, nesting bombs (the
    // parser's depth cap must turn a megabyte of '['s into a typed error,
    // not a stack overflow), and numbers that overflow the integer
    // conversions.
    for line in [
        "{\"op\":\"stats\"",
        "{\"op\":\"stats\"} trailing",
        &"[".repeat(1 << 20),
        &"{\"k\":".repeat(1 << 18),
        "{\"op\":\"submit\",\"id\":\"x\",\"job\":{\"type\":\"reachability\",\
         \"max_iterations\":18446744073709551616}}",
        "{\"op\":\"submit\",\"id\":\"x\",\"job\":{\"type\":\"invariant\",\
         \"n_qubits\":4294967296,\"max_iterations\":1,\"states\":[]}}",
    ] {
        assert!(parse_request(line).is_err(), "{line:?}");
    }
}

/// A `Write` sink the test can read back after `serve` hands ownership
/// of the stream to its poller thread.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The serve loop under fire: a deck of malformed, hostile, and valid
/// lines interleaved. Every bad line must come back as an `error` (or
/// `rejected`) event, every good job must still be answered, and the
/// loop must run through to its `bye` — the server outlives all of it.
#[test]
fn serve_loop_survives_adversarial_lines() {
    let deck = [
        "this is not json",
        "{\"op\":\"submit\",\"id\":\"dup\",\"job\":{\"type\":\"equivalence\",\
         \"a\":\"cx 0 0\",\"b\":\"h 0\"}}",
        "{\"op\":\"submit\",\"id\":\"arity\",\"job\":{\"type\":\"equivalence\",\
         \"a\":\"ccx 0 1\",\"b\":\"h 0\"}}",
        "{\"op\":\"frobnicate\"}",
        "{\"op\":\"submit\",\"id\":\"notype\",\"job\":{}}",
        "{\"op\":\"submit\"}",
        "\u{0}\"\u{7f}{[",
        "{\"op\":\"submit\",\"id\":\"ok1\",\"job\":{\"type\":\"reachability\",\
         \"max_iterations\":8}}",
        "{\"op\":\"submit\",\"id\":\"ok2\",\"job\":{\"type\":\"equivalence\",\
         \"a\":\"h 1; cx 0 1; h 1\",\"b\":\"cz 0 1\"}}",
        "{\"op\":\"stats\"}",
        "{\"op\":\"shutdown\"}",
    ];
    let input = deck.join("\n");

    let pool = EnginePool::builder(EngineSpec::new(qits_circuit::generators::ghz(3)))
        .workers(2)
        .build()
        .expect("the fuzz pool must build");
    let sink = SharedSink::default();
    proto::serve(pool.handle(), Cursor::new(input), sink.clone()).expect("serve must not error");
    let stats = pool.shutdown();

    let output = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let errors = output.matches("\"event\": \"error\"").count()
        + output.matches("\"event\": \"rejected\"").count();
    assert!(
        errors >= 7,
        "each of the seven bad lines must produce an error or rejected \
         event; got {errors} in:\n{output}"
    );
    for id in ["ok1", "ok2"] {
        assert!(
            output.contains(&format!("\"event\": \"accepted\", \"id\": \"{id}\"")),
            "{id} must be accepted:\n{output}"
        );
        assert!(
            output.contains(&format!("\"id\": \"{id}\", \"status\": \"ok\"")),
            "{id} must still be answered after the hostile lines:\n{output}"
        );
    }
    assert!(
        output.contains("\"event\": \"stats\""),
        "stats must answer:\n{output}"
    );
    assert!(
        output.trim_end().ends_with("{\"event\": \"bye\"}"),
        "the loop must run through to its goodbye:\n{output}"
    );
    assert_eq!(stats.jobs_completed, 2, "{stats:?}");
    assert_eq!(stats.jobs_failed, 0, "{stats:?}");
}
