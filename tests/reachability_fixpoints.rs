//! Reachability-analysis integration tests: convergence, monotonicity,
//! and strategy-independence of the fixpoint.

use qits::{mc, QuantumTransitionSystem, Strategy};
use qits_circuit::generators;
use qits_tdd::TddManager;

#[test]
fn fixpoints_agree_across_strategies() {
    let mut dims = Vec::new();
    for s in [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Contraction { k1: 2, k2: 2 },
    ] {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.4));
        let r = mc::reachable_space(&mut m, &qts, s, 30);
        assert!(r.converged, "strategy {s} did not converge");
        dims.push(r.space.dim());
    }
    assert!(dims.windows(2).all(|w| w[0] == w[1]), "dims {dims:?}");
}

#[test]
fn iterates_are_monotone() {
    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(4, 0.2));
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };
    // Manually unroll the iteration, checking S_i <= S_{i+1}.
    let ops = qts.operations().clone();
    let mut space = qts.initial().clone();
    for _ in 0..6 {
        let (img, _) = qits::image(&mut m, &ops, &space, strategy);
        let joined = space.join(&mut m, &img);
        assert!(space.is_subspace_of(&mut m, &joined));
        if joined.dim() == space.dim() {
            break;
        }
        space = joined;
    }
}

#[test]
fn ghz_reachable_space_is_small() {
    // The GHZ preparation from |0..0> cycles among a handful of states.
    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(4));
    let r = mc::reachable_space(&mut m, &qts, Strategy::Basic, 40);
    assert!(r.converged);
    assert!(
        r.space.dim() < 1 << 4,
        "GHZ reachability should not fill the space, got {}",
        r.space.dim()
    );
}

#[test]
fn bitflip_reachability_converges_fast() {
    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
    let r = mc::reachable_space(&mut m, &qts, Strategy::Contraction { k1: 3, k2: 2 }, 20);
    assert!(r.converged);
    // Initial errors + corrected states.
    assert!(r.space.dim() >= 3);
    assert!(r.iterations <= 5);
}

#[test]
fn safety_property_via_complement() {
    // "The walk never reaches coin=|1>, position=|0...0>" — stated as a
    // bad subspace, checked as an invariant through its complement.
    use qits::Subspace;
    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.3));
    let vars = Subspace::ket_vars(3);
    let bad_ket = m.basis_ket(&vars, &[true, false, false]); // |1>|00>
    let bad = Subspace::from_states(&mut m, 3, &[bad_ket]);
    let safe = bad.complement(&mut m);
    let (holds, r) = mc::check_invariant(
        &mut m,
        &qts,
        &safe,
        Strategy::Contraction { k1: 2, k2: 2 },
        20,
    );
    assert!(r.converged);
    // The walk spreads over the whole cycle, so the bad state IS
    // eventually reachable: the safety property must be reported violated.
    assert!(!holds);
    // Restricting to the 1-step horizon, |1>|00> is not yet reachable
    // from |0>|00> (one step reaches only |0>|111>+|1>|001>).
    let one_step = mc::reachable_space(&mut m, &qts, Strategy::Basic, 1);
    assert!(one_step.space.is_subspace_of(&mut m, &safe));
}

#[test]
fn invariant_check_on_truncated_run_reports_unconverged() {
    let mut m = TddManager::new();
    let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(4, 0.5));
    let inv = qts.initial().clone();
    let (_, r) = mc::check_invariant(
        &mut m,
        &qts,
        &inv,
        Strategy::Contraction { k1: 2, k2: 2 },
        1,
    );
    assert!(!r.converged);
}
