//! Operation caching is manager-owned, so repeated image computations in
//! one engine session reuse each other's work, and the hit rates are
//! observable from `ImageStats` / `ManagerStats`.

use qits::{EngineBuilder, Strategy};
use qits_circuit::generators;

#[test]
fn second_contraction_image_hits_the_cache() {
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .build_from_spec(&generators::grover(3))
        .unwrap();

    let (img1, stats1) = engine.image().unwrap();
    let (img2, stats2) = engine.image().unwrap();

    assert!(
        img1.equals(engine.manager_mut(), &img2),
        "same computation, same image"
    );
    assert!(
        stats2.cont_cache.hits > 0,
        "second image() run in the same session must hit the contraction \
         cache: {:?}",
        stats2.cont_cache
    );
    assert!(
        stats2.cont_hit_rate() > stats1.cont_hit_rate(),
        "reuse must increase on the repeat run: first {:.3}, second {:.3}",
        stats1.cont_hit_rate(),
        stats2.cont_hit_rate()
    );
    // The manager-level view agrees with the per-run deltas.
    let total = engine.manager().stats();
    assert!(total.cont_cache.hits >= stats1.cont_cache.hits + stats2.cont_cache.hits);
}

#[test]
fn contraction_partition_reuses_within_a_single_run() {
    // Multiple basis states against the same pre-contracted blocks: the
    // reuse the paper's contraction partition depends on shows up as a
    // nonzero hit rate already within one image() call (Grover's initial
    // subspace has dimension 2).
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .build_from_spec(&generators::grover(3))
        .unwrap();
    assert!(
        engine.initial().dim() >= 2,
        "need >= 2 basis states for reuse"
    );
    let (_, stats) = engine.image().unwrap();
    assert!(
        stats.cont_cache.hits > 0,
        "block-against-state contractions must share structure: {:?}",
        stats.cont_cache
    );
    assert!(stats.cont_hit_rate() > 0.0);
}

#[test]
fn image_stats_cache_counters_cover_all_strategies() {
    for strategy in [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Contraction { k1: 2, k2: 2 },
        Strategy::AdditionParallel { k: 1 },
    ] {
        let mut engine = EngineBuilder::new()
            .strategy(strategy)
            .build_from_spec(&generators::ghz(4))
            .unwrap();
        let (_, stats) = engine.image().unwrap();
        assert!(
            stats.cont_cache.lookups() > 0,
            "{strategy}: image() must exercise the contraction cache"
        );
        let rate = stats.cont_hit_rate();
        assert!(
            (0.0..=1.0).contains(&rate),
            "{strategy}: hit rate out of range: {rate}"
        );
    }
}

#[test]
fn caching_disabled_computes_the_same_image() {
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut cached = EngineBuilder::new()
        .strategy(strategy)
        .build_from_spec(&generators::grover(3))
        .unwrap();
    let (img_c, stats_c) = cached.image().unwrap();

    let mut plain = EngineBuilder::new()
        .strategy(strategy)
        .cache_capacity(0)
        .build_from_spec(&generators::grover(3))
        .unwrap();
    let (img_p, stats_p) = plain.image().unwrap();

    assert_eq!(img_c.dim(), img_p.dim());
    assert_eq!(stats_c.output_dim, stats_p.output_dim);
    assert_eq!(stats_p.cont_cache.hits, 0, "disabled cache must never hit");
    // Same subspace: every cached basis vector lies in the uncached image.
    for &b in img_c.basis() {
        let moved = plain.manager_mut().import(cached.manager(), b);
        assert!(
            img_p.contains(plain.manager_mut(), moved),
            "cached image vector escapes the uncached image"
        );
    }
}
