//! The PR's acceptance criterion: operation caching is manager-owned, so
//! repeated image computations on one manager reuse each other's work, and
//! the hit rates are observable from `ImageStats` / `ManagerStats`.

use qits::{image, QuantumTransitionSystem, Strategy};
use qits_circuit::generators;
use qits_tdd::TddManager;

#[test]
fn second_contraction_image_hits_the_cache() {
    let mut m = TddManager::new();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let (ops, initial) = qts.parts_mut();
    let (img1, stats1) = image(&mut m, &ops, initial, strategy);
    let (img2, stats2) = image(&mut m, &ops, initial, strategy);

    assert!(img1.equals(&mut m, &img2), "same computation, same image");
    assert!(
        stats2.cont_cache.hits > 0,
        "second image() run on the same manager must hit the contraction \
         cache: {:?}",
        stats2.cont_cache
    );
    assert!(
        stats2.cont_hit_rate() > stats1.cont_hit_rate(),
        "reuse must increase on the repeat run: first {:.3}, second {:.3}",
        stats1.cont_hit_rate(),
        stats2.cont_hit_rate()
    );
    // The manager-level view agrees with the per-run deltas.
    let total = m.stats();
    assert!(total.cont_cache.hits >= stats1.cont_cache.hits + stats2.cont_cache.hits);
}

#[test]
fn contraction_partition_reuses_within_a_single_run() {
    // Multiple basis states against the same pre-contracted blocks: the
    // reuse the paper's contraction partition depends on shows up as a
    // nonzero hit rate already within one image() call (Grover's initial
    // subspace has dimension 2).
    let mut m = TddManager::new();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
    assert!(qts.initial().dim() >= 2, "need >= 2 basis states for reuse");
    let (ops, initial) = qts.parts_mut();
    let (_, stats) = image(
        &mut m,
        &ops,
        initial,
        Strategy::Contraction { k1: 2, k2: 2 },
    );
    assert!(
        stats.cont_cache.hits > 0,
        "block-against-state contractions must share structure: {:?}",
        stats.cont_cache
    );
    assert!(stats.cont_hit_rate() > 0.0);
}

#[test]
fn image_stats_cache_counters_cover_all_strategies() {
    for strategy in [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Contraction { k1: 2, k2: 2 },
        Strategy::AdditionParallel { k: 1 },
    ] {
        let mut m = TddManager::new();
        let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(4));
        let (ops, initial) = qts.parts_mut();
        let (_, stats) = image(&mut m, &ops, initial, strategy);
        assert!(
            stats.cont_cache.lookups() > 0,
            "{strategy}: image() must exercise the contraction cache"
        );
        let rate = stats.cont_hit_rate();
        assert!(
            (0.0..=1.0).contains(&rate),
            "{strategy}: hit rate out of range: {rate}"
        );
    }
}

#[test]
fn caching_disabled_computes_the_same_image() {
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut cached = TddManager::new();
    let mut qts_c = QuantumTransitionSystem::from_spec(&mut cached, &generators::grover(3));
    let (ops_c, initial_c) = qts_c.parts_mut();
    let (img_c, stats_c) = image(&mut cached, &ops_c, initial_c, strategy);

    let mut plain = TddManager::new();
    plain.set_cache_capacity(0);
    let mut qts_p = QuantumTransitionSystem::from_spec(&mut plain, &generators::grover(3));
    let (ops_p, initial_p) = qts_p.parts_mut();
    let (img_p, stats_p) = image(&mut plain, &ops_p, initial_p, strategy);

    assert_eq!(img_c.dim(), img_p.dim());
    assert_eq!(stats_c.output_dim, stats_p.output_dim);
    assert_eq!(stats_p.cont_cache.hits, 0, "disabled cache must never hit");
    // Same subspace: every cached basis vector lies in the uncached image.
    for &b in img_c.basis() {
        let moved = plain.import(&cached, b);
        assert!(
            img_p.contains(&mut plain, moved),
            "cached image vector escapes the uncached image"
        );
    }
}
