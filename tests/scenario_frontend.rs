//! The committed sample scenarios drive the full frontend: parse the
//! textual QTS, build an engine, and check every declared property's
//! verdict — the exact pipeline `qits run` executes.
//!
//! The verdicts asserted here are the committed contract of the sample
//! files (CI greps `qits run` output for the same numbers): `adder3`
//! reaches an 8-dimensional fixpoint in 7 iterations, `repcode5` a
//! 6-dimensional one in 2, `cliffordt4` a 4-dimensional one in 3; every
//! invariant holds and every declared equivalence is genuine.

use qits::{run_job, EnginePool, EngineSpec, Job, JobOutput};
use qits_circuit::parse::{parse_scenario, render_scenario, ParseErrorKind, Property, Scenario};

/// A committed sample and its expected property verdicts, in declaration
/// order: (reachable dim, iterations to converge).
const SAMPLES: [(&str, usize, usize); 3] = [
    ("adder3.qts", 8, 7),
    ("repcode5.qts", 6, 2),
    ("cliffordt4.qts", 4, 3),
];

fn read_sample(file: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading committed sample {}: {e}", path.display()))
}

fn job_for(scenario: &Scenario, property: &Property) -> Job {
    match property {
        Property::Reachability { max_iterations } => Job::reachability(*max_iterations),
        Property::Invariant {
            states,
            max_iterations,
        } => Job::invariant(scenario.n_qubits, states.clone(), *max_iterations),
        Property::Equivalence { a, b, up_to_phase } => Job::Equivalence {
            a: scenario.circuit(a).expect("declared circuit must resolve"),
            b: scenario.circuit(b).expect("declared circuit must resolve"),
            up_to_phase: *up_to_phase,
        },
    }
}

#[test]
fn committed_scenarios_answer_their_properties() {
    for (file, want_dim, want_iters) in SAMPLES {
        let scenario =
            parse_scenario(&read_sample(file)).unwrap_or_else(|e| panic!("{file} must parse: {e}"));
        assert!(
            scenario.properties.len() >= 3,
            "{file} must declare all three property kinds"
        );
        let mut engine = EngineSpec::new(scenario.to_spec())
            .build()
            .unwrap_or_else(|e| panic!("{file} must build an engine: {e}"));
        let mut seen = (false, false, false);
        for property in &scenario.properties {
            let out = run_job(&mut engine, &job_for(&scenario, property))
                .unwrap_or_else(|e| panic!("{file}: property must run: {e}"));
            match out {
                JobOutput::Reachability(r) => {
                    seen.0 = true;
                    assert!(r.converged, "{file}: reachability must converge");
                    assert_eq!(r.dim, want_dim, "{file}: reachable dimension");
                    assert_eq!(r.iterations, want_iters, "{file}: fixpoint iterations");
                }
                JobOutput::Invariant { holds, reach } => {
                    seen.1 = true;
                    assert!(holds, "{file}: the declared invariant must hold");
                    assert_eq!(reach.dim, want_dim, "{file}: invariant reach dim");
                }
                JobOutput::Equivalence { equivalent } => {
                    seen.2 = true;
                    assert!(equivalent, "{file}: the declared equivalence is genuine");
                }
                other => panic!("{file}: unexpected output {other:?}"),
            }
        }
        assert_eq!(
            seen,
            (true, true, true),
            "{file} must answer reachability, invariant, and equivalence"
        );
    }
}

/// The serial engine and the pool must agree on every sample verdict —
/// the `--workers` path of `qits run` is not a different answer.
#[test]
fn pool_path_agrees_with_serial_on_samples() {
    for (file, want_dim, _) in SAMPLES {
        let scenario = parse_scenario(&read_sample(file)).unwrap();
        let pool = EnginePool::builder(EngineSpec::new(scenario.to_spec()))
            .workers(2)
            .memo_capacity(64)
            .build()
            .unwrap();
        let handle = pool.handle();
        let tickets: Vec<_> = scenario
            .properties
            .iter()
            .map(|p| handle.submit(job_for(&scenario, p)))
            .collect();
        for (property, ticket) in scenario.properties.iter().zip(tickets) {
            let out = ticket
                .join()
                .unwrap_or_else(|e| panic!("{file}: pooled property must run: {e}"));
            match out {
                JobOutput::Reachability(r) => assert_eq!(r.dim, want_dim, "{file}"),
                JobOutput::Invariant { holds, .. } => assert!(holds, "{file}"),
                JobOutput::Equivalence { equivalent } => {
                    assert!(equivalent, "{file}: {property:?}")
                }
                other => panic!("{file}: unexpected output {other:?}"),
            }
        }
        pool.shutdown();
    }
}

/// Render → parse must be a fixpoint: the committed files are their own
/// `qits export` output, and re-rendering a parsed scenario reproduces
/// the same system, circuits, and properties.
#[test]
fn committed_scenarios_render_round_trip() {
    for (file, _, _) in SAMPLES {
        let first = parse_scenario(&read_sample(file)).unwrap();
        let rendered = render_scenario(&first.to_spec(), &first.circuits, &first.properties)
            .unwrap_or_else(|e| panic!("{file} must render: {e}"));
        let second = parse_scenario(&rendered)
            .unwrap_or_else(|e| panic!("{file}: rendered text must re-parse: {e}"));

        let (a, b) = (first.to_spec(), second.to_spec());
        assert_eq!(a.name, b.name, "{file}");
        assert_eq!(a.n_qubits, b.n_qubits, "{file}");
        assert_eq!(a.operations, b.operations, "{file}: operations");
        assert_eq!(a.initial_states, b.initial_states, "{file}: initial states");
        assert_eq!(first.circuits, second.circuits, "{file}: circuits");
        assert_eq!(first.properties, second.properties, "{file}: properties");
    }
}

#[test]
fn circuit_lookup_resolves_ops_and_refuses_unknowns() {
    let scenario = parse_scenario(&read_sample("adder3.qts")).unwrap();
    // A channel-free op doubles as a circuit for equivalence queries.
    let add = scenario.circuit("add").expect("'add' is a pure op");
    assert!(!add.gates().is_empty());
    // A declared pure circuit resolves too.
    assert!(scenario.circuit("ripple").is_ok());
    let err = scenario.circuit("no-such").unwrap_err();
    assert!(
        matches!(&err.kind, ParseErrorKind::UnknownOp { name } if name == "no-such"),
        "{err:?}"
    );
}
