//! Round-trip suite for the persistence layer (`qits::store`).
//!
//! Three layers, three guarantees:
//!
//! * **TDD dumps are bit-for-bit.** A dump loaded into a fresh, empty
//!   manager installs the dumped variable order and reconstructs the
//!   node store weight-for-weight, so evaluating any root under any
//!   assignment yields *equal* floats, not merely close ones — proven
//!   here by proptest over random circuits, with the source order
//!   randomly sifted (adjacent-level swaps) before dumping.
//! * **Snapshots fail typed, never panic.** Truncations at every prefix
//!   length and byte flips across the file parse to `StoreError`s, and
//!   surface through the engine as `QitsError::Store*` variants.
//! * **Warm starts agree with cold runs.** An engine resumed from a
//!   checkpoint converges to the same fixpoint as a straight run, and a
//!   pool warm-started from a spilled memo serves outputs identical to
//!   a cold pool computing them fresh.
//!
//! Cross-*order* loads (a sifted dump landing in a manager that already
//! holds nodes) go through Shannon expansion, which re-normalises
//! weights: those are compared at tolerance, with the structural facts
//! (dimensions, iteration counts, verdicts) still exact.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::store::{decode_tdd_dump, encode_tdd_dump, ByteReader, ByteWriter, Snapshot};
use qits::{
    EngineBuilder, EnginePool, EngineSpec, Job, JobOutput, QitsError, StaticOrder, Strategy,
};
use qits_circuit::generators::{self, QtsSpec};
use qits_circuit::{Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::{Edge, TddManager};
use qits_tensor::Var;

const N: u32 = 3;

/// A scratch path under the Cargo-managed test temp dir (never `/tmp`).
fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("store_roundtrip");
    std::fs::create_dir_all(&dir).expect("create test temp dir");
    dir.join(name)
}

fn arb_gate() -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..N;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q).prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
    ]
}

fn arb_circuit(max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 1..=max_len).prop_map(|gates| {
        let mut c = Circuit::new(N);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

fn random_system(circuit: &Circuit, amps: Vec<Vec<(Cplx, Cplx)>>) -> QtsSpec {
    QtsSpec {
        name: "store-roundtrip".into(),
        n_qubits: N,
        operations: vec![Operation::from_circuit("rand", circuit)],
        initial_states: amps,
    }
}

/// Every assignment of the interleaved ket/row variables of `n` qubits
/// (basis kets only branch on kets; projectors on both — `eval` ignores
/// variables a diagram does not depend on).
fn all_assignments(n: u32) -> Vec<BTreeMap<Var, bool>> {
    let vars: Vec<Var> = (0..n).flat_map(|q| [Var::ket(q), Var::row(q)]).collect();
    (0..1usize << vars.len())
        .map(|bits| {
            vars.iter()
                .enumerate()
                .map(|(i, v)| (*v, bits >> i & 1 == 1))
                .collect()
        })
        .collect()
}

/// Bitwise (`PartialEq` on the raw floats) evaluation agreement of two
/// root lists on two managers, across every variable assignment.
fn eval_identical(
    src: &TddManager,
    src_roots: &[Edge],
    dst: &TddManager,
    dst_roots: &[Edge],
) -> Result<(), String> {
    if src_roots.len() != dst_roots.len() {
        return Err(format!(
            "root count {} != {}",
            src_roots.len(),
            dst_roots.len()
        ));
    }
    for (i, (a, b)) in src_roots.iter().zip(dst_roots).enumerate() {
        for asn in all_assignments(N) {
            let (va, vb) = (src.eval(*a, &asn), dst.eval(*b, &asn));
            if va != vb {
                return Err(format!("root {i}: {va:?} != {vb:?} under {asn:?}"));
            }
        }
    }
    Ok(())
}

/// Tolerance-level evaluation agreement (for cross-order loads, where
/// Shannon expansion re-normalises weights).
fn eval_close(
    src: &TddManager,
    src_roots: &[Edge],
    dst: &TddManager,
    dst_roots: &[Edge],
) -> Result<(), String> {
    assert_eq!(src_roots.len(), dst_roots.len());
    for (i, (a, b)) in src_roots.iter().zip(dst_roots).enumerate() {
        for asn in all_assignments(N) {
            let (va, vb) = (src.eval(*a, &asn), dst.eval(*b, &asn));
            if !va.approx_eq_with(vb, 1e-9) {
                return Err(format!("root {i}: {va:?} !~ {vb:?} under {asn:?}"));
            }
        }
    }
    Ok(())
}

/// The roots worth persisting from a partially-run engine: the initial
/// subspace and the reachability frontier, bases and projectors both.
fn engine_roots(initial: &qits::Subspace, frontier: &qits::Subspace) -> Vec<Edge> {
    let mut roots: Vec<Edge> = Vec::new();
    roots.extend_from_slice(initial.basis());
    roots.push(initial.projector());
    roots.extend_from_slice(frontier.basis());
    roots.push(frontier.projector());
    roots
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// dump → encode → decode → load into a fresh manager → every root
    /// evaluates bit-for-bit, including when the source order was sifted
    /// away from natural before dumping.
    #[test]
    fn dump_round_trip_evaluates_bit_for_bit(
        circuit in arb_circuit(6),
        amps in proptest::collection::vec(
            proptest::collection::vec(arb_amp(), N as usize), 1..3),
        swaps in proptest::collection::vec(0..u32::MAX, 0..4),
    ) {
        let spec = EngineSpec::new(random_system(&circuit, amps))
            .strategy(Strategy::Contraction { k1: 2, k2: 2 });
        let mut engine = spec.build().expect("engine builds");
        let partial = engine.reachable_space(2).expect("partial fixpoint");
        let roots = engine_roots(engine.initial(), &partial.space);
        let dump = engine.manager().dump(&roots);

        // Byte-level codec identity.
        let mut w = ByteWriter::new();
        encode_tdd_dump(&dump, &mut w);
        let bytes = w.into_bytes();
        let decoded = decode_tdd_dump(&mut ByteReader::new(&bytes)).expect("decodes");
        prop_assert_eq!(&decoded, &dump);

        // A fresh empty manager installs the dumped order: bit-identical.
        let mut natural = TddManager::new();
        let loaded = natural.load_dump(&decoded).expect("well-formed dump");
        let r = eval_identical(engine.manager(), &roots, &natural, &loaded);
        prop_assert!(r.is_ok(), "natural reload: {}", r.unwrap_err());

        // Sift the reloaded manager's order with random adjacent swaps,
        // re-dump under the non-natural order, reload fresh: still
        // bit-for-bit, and the dump carries the sifted order.
        let var_count = decoded
            .nodes
            .iter()
            .map(|n| n.var)
            .collect::<std::collections::BTreeSet<_>>()
            .len() as u32;
        let did_swap = var_count >= 2 && !swaps.is_empty();
        for s in &swaps {
            if var_count >= 2 {
                natural.swap_adjacent_levels(s % (var_count - 1));
            }
        }
        let sifted_dump = natural.dump(&loaded);
        if did_swap {
            prop_assert!(sifted_dump.order.is_some(), "sifted order not dumped");
        }
        let mut fresh = TddManager::new();
        let reloaded = fresh.load_dump(&sifted_dump).expect("sifted dump loads");
        let r = eval_identical(&natural, &loaded, &fresh, &reloaded);
        prop_assert!(r.is_ok(), "sifted reload: {}", r.unwrap_err());
        // Transitively against the original engine's values the match is
        // at tolerance only: the adjacent-level *swaps* renormalise the
        // rewritten nodes (ulp-level drift), while the dump/load legs on
        // either side of them stay bit-exact (proven above).
        let r = eval_close(engine.manager(), &roots, &fresh, &reloaded);
        prop_assert!(r.is_ok(), "sifted vs source: {}", r.unwrap_err());
    }
}

/// A snapshot taken mid-fixpoint warm-starts a sibling engine built from
/// the same spec: the restored frontier matches at tolerance (dimension
/// exactly), and resuming converges to the same fixpoint as a straight
/// uninterrupted run.
#[test]
fn engine_warm_start_resumes_to_the_same_fixpoint() {
    let spec =
        EngineSpec::new(generators::qrw(3, 0.25)).strategy(Strategy::Contraction { k1: 2, k2: 2 });
    let mut first = spec.build().unwrap();
    let partial = first.reachable_space(1).unwrap();
    // Iteration totals only fold cleanly when the checkpoint is strictly
    // pre-convergence (resuming a converged run re-confirms with one
    // extra image).
    assert!(
        !partial.converged,
        "qrw(3) must not converge in 1 iteration"
    );
    let path = tmp("engine-warm-start.qsnap");
    first
        .save_snapshot(&path, "mid-fixpoint", Some(&partial))
        .unwrap();

    let mut second = spec.build().unwrap();
    let resumed = second
        .warm_start_from(&path)
        .unwrap()
        .expect("snapshot carries reachability progress");
    assert_eq!(resumed.iterations, partial.iterations);
    assert_eq!(resumed.converged, partial.converged);
    assert_eq!(resumed.space.dim(), partial.space.dim());
    eval_close(
        first.manager(),
        partial.space.basis(),
        second.manager(),
        resumed.space.basis(),
    )
    .unwrap();

    let continued = second.resume_reachable_space(&resumed, 64).unwrap();
    let straight = spec.build().unwrap().reachable_space(64).unwrap();
    assert!(continued.converged && straight.converged);
    assert_eq!(continued.space.dim(), straight.space.dim());
    assert_eq!(continued.iterations, straight.iterations);
}

/// A dump taken under a deliberately non-natural static order
/// (`PositionMajor`: all kets above all rows) restores into a
/// natural-order engine through Shannon expansion — dimensions exact,
/// amplitudes at tolerance.
#[test]
fn cross_order_warm_start_restores_the_frontier() {
    let system = generators::grover(3);
    let mut source = EngineBuilder::new()
        .static_order(StaticOrder::PositionMajor)
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .build_from_spec(&system)
        .unwrap();
    let partial = source.reachable_space(2).unwrap();
    let snap = source.snapshot("position-major", Some(&partial));

    let mut target = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .build_from_spec(&system)
        .unwrap();
    let resumed = target
        .warm_start(&snap)
        .unwrap()
        .expect("progress restored");
    assert_eq!(resumed.space.dim(), partial.space.dim());
    assert_eq!(resumed.iterations, partial.iterations);
    eval_close(
        source.manager(),
        partial.space.basis(),
        target.manager(),
        resumed.space.basis(),
    )
    .unwrap();

    let continued = target.resume_reachable_space(&resumed, 64).unwrap();
    assert!(continued.converged);
}

/// Corrupted, truncated, and wrong-version snapshot files must yield
/// typed `StoreError`/`QitsError::Store*` values — never a panic.
#[test]
fn corrupted_snapshots_fail_typed_never_panic() {
    let spec = EngineSpec::new(generators::ghz(3));
    let mut engine = spec.build().unwrap();
    let partial = engine.reachable_space(1).unwrap();
    let snap = engine.snapshot("victim", Some(&partial));
    let bytes = snap.to_bytes();
    assert!(Snapshot::from_bytes(&bytes).is_ok());

    // Every proper prefix is rejected (and must not panic).
    for k in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..k]).is_err(),
            "prefix of {k} bytes parsed"
        );
    }
    // Single-byte flips: the header fields each carry their own typed
    // rejection, and any payload flip trips the checksum. Sample the
    // whole file rather than flipping every byte of a large payload.
    let step = (bytes.len() / 64).max(1);
    for i in (0..bytes.len().min(32)).chain((0..bytes.len()).step_by(step)) {
        let mut tampered = bytes.clone();
        tampered[i] ^= 0x40;
        assert!(
            Snapshot::from_bytes(&tampered).is_err(),
            "flip at byte {i} parsed"
        );
    }

    // Through the engine the failures surface as QitsError variants.
    let truncated_path = tmp("truncated.qsnap");
    std::fs::write(&truncated_path, &bytes[..bytes.len() / 2]).unwrap();
    let mut fresh = spec.build().unwrap();
    match fresh.warm_start_from(&truncated_path) {
        Err(QitsError::StoreCorrupt { .. }) => {}
        other => panic!("truncated file: expected StoreCorrupt, got {other:?}"),
    }

    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    let version_path = tmp("version.qsnap");
    std::fs::write(&version_path, &wrong_version).unwrap();
    match fresh.warm_start_from(&version_path) {
        Err(QitsError::StoreVersion { found: 99, .. }) => {}
        other => panic!("future version: expected StoreVersion, got {other:?}"),
    }

    let mut bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    let magic_path = tmp("magic.qsnap");
    std::fs::write(&magic_path, &bad_magic).unwrap();
    match fresh.warm_start_from(&magic_path) {
        Err(QitsError::StoreCorrupt { .. }) => {}
        other => panic!("bad magic: expected StoreCorrupt, got {other:?}"),
    }

    match fresh.warm_start_from(tmp("does-not-exist.qsnap")) {
        Err(QitsError::StoreIo { .. }) => {}
        other => panic!("missing file: expected StoreIo, got {other:?}"),
    }
}

/// Bit-for-bit equality degrades to tolerance under the CI leg that
/// forces sifting (`QITS_REORDER=aggressive`) — see
/// `tests/pool_agreement.rs` for the full rationale.
fn forced_reorder() -> bool {
    std::env::var("QITS_REORDER").is_ok_and(|v| v == "aggressive")
}

/// Semantic equality of job outputs across independently-built pools,
/// ignoring timing-carrying stats.
fn outputs_agree(warm: &JobOutput, cold: &JobOutput) -> Result<(), String> {
    match (warm, cold) {
        (JobOutput::Image(w), JobOutput::Image(c)) => {
            if w.dim != c.dim {
                return Err(format!("image dim {} != {}", w.dim, c.dim));
            }
            let same_shape = w.amplitudes.len() == c.amplitudes.len()
                && w.amplitudes
                    .iter()
                    .zip(&c.amplitudes)
                    .all(|(a, b)| a.len() == b.len());
            let agree = if forced_reorder() {
                same_shape
                    && w.amplitudes
                        .iter()
                        .flatten()
                        .zip(c.amplitudes.iter().flatten())
                        .all(|(a, b)| a.approx_eq_with(*b, 1e-9))
            } else {
                w.amplitudes == c.amplitudes
            };
            agree
                .then_some(())
                .ok_or_else(|| "image amplitudes differ".to_string())
        }
        (JobOutput::Reachability(w), JobOutput::Reachability(c)) => {
            if (w.dim, w.iterations, w.converged) != (c.dim, c.iterations, c.converged) {
                return Err("reachability results differ".to_string());
            }
            Ok(())
        }
        (JobOutput::Equivalence { equivalent: w }, JobOutput::Equivalence { equivalent: c }) => {
            if w != c {
                return Err(format!("equivalence verdict {w} != {c}"));
            }
            Ok(())
        }
        _ => Err("job output variants differ".to_string()),
    }
}

fn pool_jobs() -> Vec<Job> {
    let mut probe = Circuit::new(3);
    probe.push(Gate::h(0));
    probe.push(Gate::cx(0, 1));
    vec![
        Job::Image { densify: true },
        Job::reachability(8),
        Job::equivalence(probe.clone(), probe),
    ]
}

fn run_pool(pool: &EnginePool, jobs: &[Job]) -> Vec<JobOutput> {
    pool.submit_batch(jobs.to_vec())
        .into_iter()
        .map(|h| h.join().expect("job succeeds"))
        .collect()
}

/// A pool warm-started from a spilled memo serves every duplicate from
/// the persisted entries — and those answers are identical to what a
/// cold pool computes from scratch.
#[test]
fn warm_started_pool_agrees_with_cold_pool() {
    let spec =
        EngineSpec::new(generators::grover(3)).strategy(Strategy::Contraction { k1: 2, k2: 2 });
    let jobs = pool_jobs();
    let path = tmp("pool-memo.qsnap");

    // Seed run: compute everything once, spill the memo to disk.
    let seed = EnginePool::builder(spec.clone())
        .workers(2)
        .memo_capacity(64)
        .build()
        .unwrap();
    let seed_outputs = run_pool(&seed, &jobs);
    let spilled = seed
        .handle()
        .save_snapshot(&path, "seed memo")
        .expect("snapshot saves");
    assert_eq!(spilled, jobs.len(), "every result spills");
    seed.shutdown();

    // Warm pool: every job is a warm memo hit.
    let warm = EnginePool::builder(spec.clone())
        .workers(2)
        .memo_capacity(64)
        .warm_start(&path)
        .expect("snapshot accepted")
        .build()
        .unwrap();
    let warm_outputs = run_pool(&warm, &jobs);
    let warm_stats = warm.shutdown();
    assert_eq!(warm_stats.memo.warm_hits, jobs.len() as u64);

    // Cold pool: same jobs computed fresh.
    let cold = EnginePool::builder(spec).workers(2).build().unwrap();
    let cold_outputs = run_pool(&cold, &jobs);
    cold.shutdown();

    for (i, ((w, c), s)) in warm_outputs
        .iter()
        .zip(&cold_outputs)
        .zip(&seed_outputs)
        .enumerate()
    {
        outputs_agree(w, c).unwrap_or_else(|e| panic!("job {i} warm vs cold: {e}"));
        outputs_agree(w, s).unwrap_or_else(|e| panic!("job {i} warm vs seed: {e}"));
    }

    // A spec with a different fingerprint rejects the snapshot outright.
    match EnginePool::builder(EngineSpec::new(generators::qft(3))).warm_start(&path) {
        Err(QitsError::StoreSpecMismatch { .. }) => {}
        other => panic!(
            "foreign spec: expected StoreSpecMismatch, got {:?}",
            other.map(|_| "builder")
        ),
    }
}

/// `ServiceHandle::load_snapshot` preloads a running pool's memo (warm
/// hits follow), and reports `StoreMemoUnavailable` when the pool was
/// built without a memo to preload into.
#[test]
fn service_handle_loads_snapshots_into_a_running_pool() {
    let spec =
        EngineSpec::new(generators::grover(3)).strategy(Strategy::Contraction { k1: 2, k2: 2 });
    let jobs = pool_jobs();
    let path = tmp("handle-load.qsnap");

    let seed = EnginePool::builder(spec.clone())
        .workers(2)
        .memo_capacity(64)
        .build()
        .unwrap();
    run_pool(&seed, &jobs);
    seed.handle().save_snapshot(&path, "handle seed").unwrap();
    seed.shutdown();

    let pool = EnginePool::builder(spec.clone())
        .workers(2)
        .memo_capacity(64)
        .build()
        .unwrap();
    let loaded = pool.handle().load_snapshot(&path).unwrap();
    assert_eq!(loaded, jobs.len());
    run_pool(&pool, &jobs);
    let stats = pool.shutdown();
    assert_eq!(stats.memo.warm_hits, jobs.len() as u64);

    let memoless = EnginePool::builder(spec).workers(2).build().unwrap();
    match memoless.handle().load_snapshot(&path) {
        Err(QitsError::StoreMemoUnavailable) => {}
        other => panic!("memoless pool: expected StoreMemoUnavailable, got {other:?}"),
    }
    memoless.shutdown();
}
