//! Dynamic-variable-reordering integration tests: a reachability
//! fixpoint computed with sifting forced at **every** GC safepoint is
//! differentially compared against the grow-only run — same fixpoint,
//! same dimensions, same amplitudes — while the reorder counters prove
//! the sifting actually happened mid-fixpoint.

use qits::{mc, EngineBuilder, QuantumTransitionSystem, ReorderPolicy, Strategy, Subspace};
use qits_circuit::{generators, Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::{GcPolicy, TddManager};
use qits_tensor::Var;
use std::collections::BTreeMap;

/// A 4-qubit binary increment (mod 16): from `|0000>` the reachable
/// dimension grows by one basis state per iteration — a long fixpoint
/// whose amplitudes are all exactly 0 or 1, so the differential
/// comparison below can demand bit-for-bit equality.
fn increment_qts(m: &mut TddManager) -> QuantumTransitionSystem {
    let mut c = Circuit::new(4);
    c.push(Gate::mcx_polarity(&[(1, true), (2, true), (3, true)], 0));
    c.push(Gate::mcx_polarity(&[(2, true), (3, true)], 1));
    c.push(Gate::cx(3, 2));
    c.push(Gate::x(3));
    let vars = Subspace::ket_vars(4);
    let zero = m.basis_ket(&vars, &[false; 4]);
    let initial = Subspace::from_states(m, 4, &[zero]);
    QuantumTransitionSystem::new(4, vec![Operation::from_circuit("inc", &c)], initial)
}

/// Every projector amplitude of `space`, as a dense assignment-indexed
/// vector read straight off the diagram with `eval`.
fn projector_amplitudes(m: &mut TddManager, space: &Subspace, n: u32) -> Vec<Cplx> {
    let p = space.projector();
    let vars: Vec<Var> = Subspace::ket_vars(n)
        .into_iter()
        .chain(Subspace::row_vars(n))
        .collect();
    let k = vars.len();
    (0..1usize << k)
        .map(|bits| {
            let asn: BTreeMap<Var, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits >> (k - 1 - i) & 1 == 1))
                .collect();
            m.eval(p, &asn)
        })
        .collect()
}

/// Differential reachability with exact arithmetic: the increment
/// fixpoint under aggressive GC **plus sifting at every collection**
/// reaches the same space as the grow-only run, with bit-for-bit
/// identical projector amplitudes — reordering in the middle of a
/// fixpoint is invisible to the result.
#[test]
fn forced_sifting_fixpoint_matches_grow_only_bit_for_bit() {
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut m_plain = TddManager::new();
    let qts_plain = increment_qts(&mut m_plain);
    let r_plain = mc::reachable_space(&mut m_plain, &qts_plain, strategy, 30);

    let mut m_dvo = TddManager::new();
    let qts_dvo = increment_qts(&mut m_dvo);
    m_dvo.set_gc_policy(Some(
        GcPolicy::aggressive().with_reorder(ReorderPolicy::EveryCollection),
    ));
    let r_dvo = mc::reachable_space(&mut m_dvo, &qts_dvo, strategy, 30);

    assert!(r_plain.converged && r_dvo.converged);
    assert_eq!(r_plain.iterations, r_dvo.iterations);
    assert_eq!(r_plain.space.dim(), 16);
    assert_eq!(r_dvo.space.dim(), 16);

    // The sifting really ran, mid-fixpoint, more than once.
    let s = m_dvo.stats();
    assert!(r_dvo.collections > 0);
    assert!(
        s.sift_passes > 1,
        "every collection must trigger a sifting pass: got {}",
        s.sift_passes
    );
    assert!(s.swaps > 0, "sifting must perform level swaps");

    // Same span, checked in the reordered manager.
    let mut imported = Subspace::zero(4);
    for &b in r_plain.space.basis() {
        let e = m_dvo.import(&m_plain, b);
        imported.absorb(&mut m_dvo, e);
    }
    assert!(r_dvo.space.clone().equals(&mut m_dvo, &imported));

    // Bit-for-bit amplitudes: the increment system is all 0/1 weights,
    // so the two projectors must agree exactly, entry by entry.
    let amps_plain = projector_amplitudes(&mut m_plain, &r_plain.space, 4);
    let amps_dvo = projector_amplitudes(&mut m_dvo, &r_dvo.space, 4);
    assert_eq!(
        amps_plain, amps_dvo,
        "reordering must not perturb a single amplitude bit"
    );
}

/// The same differential on a genuinely complex-weighted system (the
/// noisy quantum walk), through the engine facade: forced sifting at
/// every safepoint leaves the reachable space equal and every projector
/// amplitude within interning tolerance of the grow-only run.
#[test]
fn forced_sifting_engine_fixpoint_matches_grow_only() {
    let spec = generators::qrw(3, 0.2);
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };

    let mut plain = EngineBuilder::new()
        .strategy(strategy)
        .build_from_spec(&spec)
        .expect("well-formed spec");
    let r_plain = plain.reachable_space(20).expect("plain fixpoint");

    let mut dvo = EngineBuilder::new()
        .strategy(strategy)
        .gc_policy(Some(GcPolicy::aggressive()))
        .reorder(ReorderPolicy::EveryCollection)
        .build_from_spec(&spec)
        .expect("well-formed spec");
    let r_dvo = dvo.reachable_space(20).expect("reordered fixpoint");

    assert_eq!(r_plain.space.dim(), r_dvo.space.dim());
    assert!(
        dvo.manager().stats().sift_passes > 0,
        "the reorder schedule must have fired"
    );

    let amps_plain = projector_amplitudes(plain.manager_mut(), &r_plain.space, 3);
    let amps_dvo = projector_amplitudes(dvo.manager_mut(), &r_dvo.space, 3);
    for (i, (a, b)) in amps_plain.iter().zip(&amps_dvo).enumerate() {
        assert!(
            a.approx_eq_with(*b, 1e-8),
            "projector entry {i} drifted under reordering: {a:?} vs {b:?}"
        );
    }
}
