//! Differential suite for `EnginePool`: a batch of mixed jobs pushed
//! through the pool (2 and 4 workers) must agree with running each job
//! on a fresh serial `Engine` built from the same `EngineSpec` — across
//! all four built-in strategies plus `Auto`, with GC forced at every
//! safepoint (`GcPolicy::aggressive()`).
//!
//! Discrete outputs (dimensions, iteration counts, verdicts, error
//! values) must match **exactly**. Amplitudes are compared to a `1e-9`
//! tolerance, not bit-for-bit: a pool worker keeps its engine — and
//! therefore its tolerance-snapping complex-weight table — across jobs,
//! so a later job's weights can snap to near-equal entries interned by
//! whichever jobs happened to run earlier on that worker. Which worker
//! gets which job is scheduling-dependent, so bit-for-bit equality is
//! not a stable property of the pool (it flakes under CPU load); the
//! tolerance bound is. Real pool races — a stolen job mutating shared
//! state, a relocation applied to the wrong holder, cross-job cache
//! contamination — still show: they corrupt amplitudes far beyond the
//! weight tolerance or change a discrete field outright. The same bound
//! covers `QITS_REORDER=aggressive` runs, where a worker additionally
//! carries the variable order earlier jobs sifted into.

use proptest::prelude::*;
// `qits::Strategy` shadows the proptest trait of the same name.
use proptest::strategy::Strategy as _;

use qits::{
    run_job, Auto, EnginePool, EngineSpec, ImageStrategy, Job, JobOutput, QitsError, Strategy,
};
use qits_circuit::generators::QtsSpec;
use qits_circuit::{Circuit, Gate, Operation};
use qits_num::Cplx;
use qits_tdd::GcPolicy;

const N: u32 = 3;

fn arb_gate() -> impl proptest::strategy::Strategy<Value = Gate> {
    let q = 0..N;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::z),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q).prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
    ]
}

fn arb_circuit(max_len: usize) -> impl proptest::strategy::Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 1..=max_len).prop_map(|gates| {
        let mut c = Circuit::new(N);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_amp() -> impl proptest::strategy::Strategy<Value = (Cplx, Cplx)> {
    (0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        (
            Cplx::real((theta / 2.0).cos()),
            Cplx::from_polar((theta / 2.0).sin(), phi),
        )
    })
}

/// Field-wise comparison, timing-carrying stats excluded: discrete
/// fields exactly, amplitudes to tolerance (see the module docs for why
/// bit-for-bit is not a stable property of a worker that keeps its
/// weight table across jobs).
fn outputs_match(pool: &JobOutput, serial: &JobOutput) -> Result<(), String> {
    match (pool, serial) {
        (JobOutput::Image(p), JobOutput::Image(s)) => {
            if p.dim != s.dim {
                return Err(format!("image dim {} != {}", p.dim, s.dim));
            }
            let same_shape = p.amplitudes.len() == s.amplitudes.len()
                && p.amplitudes
                    .iter()
                    .zip(&s.amplitudes)
                    .all(|(a, b)| a.len() == b.len());
            let close = same_shape
                && p.amplitudes
                    .iter()
                    .flatten()
                    .zip(s.amplitudes.iter().flatten())
                    .all(|(a, b)| a.approx_eq_with(*b, 1e-9));
            if !close {
                return Err("image amplitudes differ beyond tolerance".to_string());
            }
            Ok(())
        }
        (JobOutput::Reachability(p), JobOutput::Reachability(s)) => {
            if (p.dim, p.iterations, p.converged) != (s.dim, s.iterations, s.converged) {
                return Err(format!(
                    "reachability (dim, iters, converged) ({}, {}, {}) != ({}, {}, {})",
                    p.dim, p.iterations, p.converged, s.dim, s.iterations, s.converged
                ));
            }
            Ok(())
        }
        (
            JobOutput::Invariant {
                holds: p,
                reach: pr,
            },
            JobOutput::Invariant {
                holds: s,
                reach: sr,
            },
        ) => {
            if p != s {
                return Err(format!("invariant verdict {p} != {s}"));
            }
            if (pr.dim, pr.iterations) != (sr.dim, sr.iterations) {
                return Err("invariant witness run differs".to_string());
            }
            Ok(())
        }
        (JobOutput::Equivalence { equivalent: p }, JobOutput::Equivalence { equivalent: s }) => {
            if p != s {
                return Err(format!("equivalence verdict {p} != {s}"));
            }
            Ok(())
        }
        _ => Err("job output variants differ".to_string()),
    }
}

/// Runs the batch through a pool of `workers` and serially (one fresh
/// engine per job, same spec), comparing pairwise.
fn check_pool_against_serial(
    spec: &EngineSpec,
    workers: usize,
    jobs: &[Job],
) -> Result<(), String> {
    let pool = EnginePool::builder(spec.clone())
        .workers(workers)
        .build()
        .map_err(|e| format!("pool build: {e}"))?;
    let handles = pool.submit_batch(jobs.to_vec());
    let pool_results: Vec<Result<JobOutput, QitsError>> =
        handles.into_iter().map(|h| h.join()).collect();
    let stats = pool.shutdown();
    if stats.jobs_completed != jobs.len() as u64 || stats.jobs_failed != 0 {
        return Err(format!(
            "pool stats: {} completed, {} failed, expected {} clean",
            stats.jobs_completed,
            stats.jobs_failed,
            jobs.len()
        ));
    }
    for (i, (job, pool_result)) in jobs.iter().zip(&pool_results).enumerate() {
        let mut serial = spec.build().map_err(|e| format!("serial build: {e}"))?;
        let serial_result = run_job(&mut serial, job);
        match (pool_result, serial_result) {
            (Ok(p), Ok(s)) => {
                outputs_match(p, &s).map_err(|e| format!("job {i} ({workers} workers): {e}"))?
            }
            (Err(p), Err(s)) => {
                if *p != s {
                    return Err(format!("job {i}: pool error {p:?} != serial error {s:?}"));
                }
            }
            (p, s) => {
                return Err(format!(
                    "job {i}: pool {:?} vs serial {:?} disagree on success",
                    p.is_ok(),
                    s.is_ok()
                ))
            }
        }
    }
    Ok(())
}

fn check_strategy(
    system: &QtsSpec,
    strategy: impl ImageStrategy + Clone + Sync + 'static,
    jobs: &[Job],
) -> Result<(), String> {
    let name = strategy.name();
    // Forced aggressive GC: every safepoint of every job on every worker
    // collects, so a rooting mistake in the pool path cannot hide.
    let spec = EngineSpec::new(system.clone())
        .strategy(strategy)
        .gc_policy(Some(GcPolicy::aggressive()));
    for workers in [2, 4] {
        check_pool_against_serial(&spec, workers, jobs).map_err(|e| format!("[{name}] {e}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn pool_agrees_with_fresh_serial_engines(
        circuit in arb_circuit(6),
        amps in proptest::collection::vec(proptest::collection::vec(arb_amp(), N as usize), 1..3),
        probe in arb_circuit(4),
    ) {
        let system = QtsSpec {
            name: "rand".into(),
            n_qubits: N,
            operations: vec![Operation::from_circuit("rand", &circuit)],
            initial_states: amps.clone(),
        };
        let mut probe_plus_x = probe.clone();
        probe_plus_x.push(Gate::x(0));
        let jobs = vec![
            Job::Image { densify: true },
            Job::reachability(8),
            Job::Image { densify: true },
            // A valid invariant over the initial product states.
            Job::invariant(N, amps, 8),
            // Self-equivalence is always true; appending X never is.
            Job::equivalence(probe.clone(), probe.clone()),
            Job::Equivalence { a: probe.clone(), b: probe_plus_x, up_to_phase: true },
        ];
        let r = check_strategy(&system, Strategy::Basic, &jobs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let r = check_strategy(&system, Strategy::Addition { k: 1 }, &jobs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let r = check_strategy(&system, Strategy::Contraction { k1: 2, k2: 2 }, &jobs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let r = check_strategy(&system, Strategy::AdditionParallel { k: 1 }, &jobs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let r = check_strategy(&system, Auto::default(), &jobs);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

/// Non-random pin of the same property on a paper system, so a failure
/// here names a deterministic reproduction straight away.
#[test]
fn pool_agrees_on_the_grover_benchmark() {
    let system = qits_circuit::generators::grover(3);
    let jobs = vec![
        Job::Image { densify: true },
        Job::reachability(10),
        Job::Image { densify: true },
        Job::reachability(10),
    ];
    for workers in [2, 4] {
        let spec = EngineSpec::new(system.clone())
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .gc_policy(Some(GcPolicy::aggressive()));
        check_pool_against_serial(&spec, workers, &jobs).unwrap();
    }
}
