//! Concurrency stress and fault isolation for `EnginePool`.
//!
//! The worker count honours `QITS_POOL_WORKERS` (CI runs this suite once
//! with 2 threads and once oversubscribed with 8 on its 2-core runners),
//! so the same tests double as a contention test at several widths.
//!
//! Covered here:
//! * N >> workers jobs with one deliberately malformed job (register
//!   mismatch): that job alone is `Err`, every other job completes, and
//!   the pool stays usable afterwards;
//! * a job that *panics* in its worker (invariant row shorter than its
//!   claimed register hits `product_ket`'s length assert) surfaces as
//!   `QitsError::JobFailure` and the worker rebuilds its engine and
//!   keeps serving;
//! * shutdown drains the queue — every handle of a pre-shutdown batch
//!   resolves `Ok` even when shutdown is called with the queue still full;
//! * `PoolStats` aggregation: fleet totals equal the sum of the
//!   per-worker safepoint/reclaim counters, and the shutdown stats sink
//!   observes the same totals.

use std::sync::{Arc, Mutex};

use qits::{EnginePool, EngineSpec, Job, PoolStats, QitsError, Strategy};
use qits_num::Cplx;
use qits_tdd::GcPolicy;

fn worker_count() -> usize {
    std::env::var("QITS_POOL_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn qrw_spec() -> EngineSpec {
    EngineSpec::new(qits_circuit::generators::qrw(3, 0.25))
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .gc_policy(Some(GcPolicy::aggressive()))
}

/// One `(alpha, beta)` row per qubit: the basis state `|0...0>`.
fn zero_state(n: usize) -> Vec<(Cplx, Cplx)> {
    vec![(Cplx::ONE, Cplx::ZERO); n]
}

#[test]
fn one_malformed_job_fails_alone_and_the_pool_stays_usable() {
    let workers = worker_count();
    let pool = EnginePool::builder(qrw_spec())
        .workers(workers)
        .build()
        .unwrap();
    let total = workers * 12; // N >> workers
    let bad_index = total / 2;
    let jobs: Vec<Job> = (0..total)
        .map(|i| {
            if i == bad_index {
                // Coherent in itself, wrong register for the 3-qubit
                // system: the canonical malformed job.
                Job::invariant(5, vec![zero_state(5)], 4)
            } else {
                Job::image()
            }
        })
        .collect();
    let results: Vec<_> = pool
        .submit_batch(jobs)
        .into_iter()
        .map(|h| h.join())
        .collect();
    for (i, r) in results.iter().enumerate() {
        if i == bad_index {
            assert!(
                matches!(
                    r,
                    Err(QitsError::RegisterMismatch {
                        expected: 3,
                        found: 5,
                        ..
                    })
                ),
                "job {i}: {r:?}"
            );
        } else {
            assert!(r.is_ok(), "job {i} must be unaffected: {r:?}");
        }
    }
    // The pool is not poisoned: it keeps serving after the failure.
    assert!(pool.submit(Job::image()).join().is_ok());
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, total as u64);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn a_panicking_job_is_isolated_as_job_failure() {
    let workers = worker_count();
    let pool = EnginePool::builder(qrw_spec())
        .workers(workers)
        .build()
        .unwrap();
    let total = workers * 8;
    let bad_index = 1; // early, so later jobs run on the rebuilt engine
    let jobs: Vec<Job> = (0..total)
        .map(|i| {
            if i == bad_index {
                // Claims 3 qubits but supplies a 2-amplitude row:
                // `product_ket` panics inside the worker.
                Job::invariant(3, vec![zero_state(2)], 4)
            } else {
                Job::image()
            }
        })
        .collect();
    let results: Vec<_> = pool
        .submit_batch(jobs)
        .into_iter()
        .map(|h| h.join())
        .collect();
    for (i, r) in results.iter().enumerate() {
        if i == bad_index {
            assert!(
                matches!(r, Err(QitsError::JobFailure { .. })),
                "job {i}: {r:?}"
            );
        } else {
            assert!(r.is_ok(), "job {i} must be unaffected: {r:?}");
        }
    }
    // The worker that caught the panic rebuilt its engine; the pool still
    // computes correct images afterwards.
    let out = pool.submit(Job::Image { densify: true }).join().unwrap();
    assert!(out.image().unwrap().dim > 0);
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, total as u64);
}

#[test]
fn shutdown_drains_the_queue() {
    let workers = worker_count();
    let pool = EnginePool::builder(qrw_spec())
        .workers(workers)
        .build()
        .unwrap();
    // Enqueue far more work than the workers can have started, then shut
    // down immediately: every handle must still resolve Ok.
    let handles = pool.submit_batch(vec![Job::image(); workers * 16]);
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_completed, (workers * 16) as u64);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.queue_depth, 0, "shutdown must drain, not drop");
    for h in handles {
        assert!(h.join().is_ok());
    }
}

#[test]
fn pool_stats_totals_are_the_sum_of_worker_counters() {
    let workers = worker_count();
    let sink_seen: Arc<Mutex<Option<PoolStats>>> = Arc::default();
    let sink_seen2 = sink_seen.clone();
    let pool = EnginePool::builder(qrw_spec())
        .workers(workers)
        .stats_sink(move |s| {
            *sink_seen2.lock().unwrap() = Some(s.clone());
        })
        .build()
        .unwrap();
    // Mixed batch so fixpoint iterations land in the image counters too.
    let mut jobs = vec![Job::image(); workers * 6];
    jobs.extend(vec![Job::reachability(6); workers * 2]);
    let n_jobs = jobs.len() as u64;
    for h in pool.submit_batch(jobs) {
        h.join().unwrap();
    }
    let stats = pool.shutdown();

    assert_eq!(stats.workers.len(), workers);
    assert_eq!(stats.jobs_submitted, n_jobs);
    assert_eq!(stats.jobs_completed, n_jobs);

    // The aggregation invariant (the satellite under test): every fleet
    // total is exactly the sum of the per-worker rows.
    let sum = |f: &dyn Fn(&qits::WorkerStats) -> u64| stats.workers.iter().map(f).sum::<u64>();
    assert_eq!(stats.jobs_completed, sum(&|w| w.jobs_completed));
    assert_eq!(stats.jobs_failed, sum(&|w| w.jobs_failed));
    assert_eq!(stats.images, sum(&|w| w.images));
    assert_eq!(
        stats.manager.safepoints_polled,
        sum(&|w| w.manager.safepoints_polled),
        "safepoint totals must sum across workers"
    );
    assert_eq!(
        stats.manager.safepoint_collections,
        sum(&|w| w.manager.safepoint_collections)
    );
    assert_eq!(
        stats.manager.nodes_reclaimed,
        sum(&|w| w.manager.nodes_reclaimed),
        "reclaim totals must sum across workers"
    );
    assert_eq!(
        stats.image.safepoint_reclaimed,
        stats
            .workers
            .iter()
            .map(|w| w.image.safepoint_reclaimed)
            .sum::<u64>()
    );

    // Under the aggressive policy the counters are live, not zero.
    assert!(stats.manager.safepoints_polled > 0);
    assert!(stats.manager.safepoint_collections > 0);
    assert!(stats.manager.nodes_reclaimed > 0);
    assert!(stats.images >= n_jobs, "fixpoint jobs run >= 1 image each");

    // The shutdown sink observed the same totals.
    let seen = sink_seen.lock().unwrap();
    let seen = seen.as_ref().expect("sink must run at shutdown");
    assert_eq!(seen.jobs_completed, stats.jobs_completed);
    assert_eq!(
        seen.manager.safepoints_polled,
        stats.manager.safepoints_polled
    );
    assert_eq!(seen.manager.nodes_reclaimed, stats.manager.nodes_reclaimed);
}

#[test]
fn work_stealing_conserves_the_batch_across_workers() {
    // Round-robin sharding spreads a batch over every shard, and
    // stealing lets any worker drain any shard — so which worker serves
    // which job is scheduler-dependent (a late-woken worker may serve
    // none; that is stealing working, not failing). The invariant that
    // IS guaranteed: no job is lost and no job is served twice, so the
    // per-worker counters partition the batch exactly.
    let workers = worker_count();
    let pool = EnginePool::builder(qrw_spec())
        .workers(workers)
        .build()
        .unwrap();
    let total = workers * 10;
    for h in pool.submit_batch(vec![Job::image(); total]) {
        h.join().unwrap();
    }
    let stats = pool.shutdown();
    let served: u64 = stats.workers.iter().map(|w| w.jobs_completed).sum();
    assert_eq!(served, total as u64, "workers must partition the batch");
    assert!(
        stats.workers.iter().any(|w| w.jobs_completed > 0),
        "someone served"
    );
}
