//! Compile-time thread-safety contract of the session stack.
//!
//! `EnginePool` moves whole `Engine` sessions onto worker threads, and the
//! parallel addition partition shares a `&TddManager` across scoped
//! threads. Both rely on auto-derived `Send`/`Sync`: nothing in the stack
//! may grow an `Rc`, `RefCell`, raw pointer, or other thread-affine field.
//! These assertions make such a regression a **compile error in this test
//! target** — with a named witness per type — rather than a distant
//! trait-bound failure inside the pool internals.

use qits::{
    Engine, EnginePool, EngineSpec, ImageStats, Job, JobHandle, JobOutput, Operations, PoolStats,
    QitsError, QuantumTransitionSystem, Strategy, Subspace, WorkerStats,
};
use qits_tdd::{Edge, GcPolicy, ManagerStats, TddManager};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn session_types_are_send() {
    // The tentpole four: a future Rc/RefCell in any of them fails here.
    assert_send::<Engine>();
    assert_send::<TddManager>();
    assert_send::<Subspace>();
    assert_send::<QuantumTransitionSystem>();
}

#[test]
fn shared_read_side_is_sync() {
    // Shared by reference across threads (the addition partition passes
    // `&TddManager` into scoped workers; `Operations` is the Arc-shared
    // read view of a system).
    assert_sync::<TddManager>();
    assert_sync::<Operations>();
    assert_sync::<Subspace>();
    assert_sync::<Edge>();
    assert_sync::<ManagerStats>();
    assert_sync::<GcPolicy>();
}

#[test]
fn serving_vocabulary_is_send() {
    // Everything that crosses the pool's queue or comes back over a
    // result channel.
    assert_send::<EngineSpec>();
    assert_sync::<EngineSpec>();
    assert_send::<Job>();
    assert_send::<JobOutput>();
    assert_send::<JobHandle>();
    assert_send::<QitsError>();
    assert_send::<ImageStats>();
    assert_send::<PoolStats>();
    assert_send::<WorkerStats>();
    assert_send::<EnginePool>();
}

#[test]
fn strategy_objects_are_send() {
    // `ImageStrategy` has `Send` as a supertrait, so boxed strategy
    // objects (what `Engine` owns) are `Send` by construction.
    assert_send::<Box<dyn qits::ImageStrategy>>();
    assert_send::<Strategy>();
    assert_sync::<Strategy>();
    assert_send::<qits::Auto>();
}

#[test]
fn an_engine_actually_crosses_a_thread() {
    // The runtime twin of the static assertions: build a session here,
    // move it onto another thread, compute there, hand it back.
    let spec = EngineSpec::new(qits_circuit::generators::grover(3));
    let mut engine = spec.build().unwrap();
    let handle = std::thread::spawn(move || {
        let (img, _) = engine.image().unwrap();
        (engine, img.dim())
    });
    let (mut engine, dim) = handle.join().unwrap();
    assert_eq!(dim, 2);
    // Still usable on the original thread after the round trip.
    assert!(engine.image().is_ok());
}
