//! Dynamic variable reordering: static orders at build time, sifting at
//! GC safepoints.
//!
//! Runs the same image computation three ways on each benchmark system:
//!
//! 1. the natural (interleaved, qubit-major) order — the default;
//! 2. the position-major order (all kets above all rows — the classic
//!    anti-pattern for operator diagrams, though small separable systems
//!    can shrug it off), to show the order is a real degree of freedom;
//! 3. position-major again, but with sifting scheduled at every GC
//!    collection (`ReorderPolicy::EveryCollection`) — the manager digs
//!    itself out of the bad order mid-run, in place, without
//!    invalidating a single handle.
//!
//! The printed live-node counts tell the story: (2) changes the diagram
//! sizes, (3) re-optimises them mid-run, and the swap/sift counters show
//! the machinery that did it. Sifting is a *local* search over the order
//! for the live set at each collection — on most systems it recovers
//! (or beats) the natural order's footprint, but a system whose final
//! structure prefers a different order than its mid-run intermediates
//! (GHZ's cascade, for instance) can end elsewhere.
//!
//! Run with: `cargo run --example reordering`

use qits::{EngineBuilder, ReorderPolicy, StaticOrder, Strategy};
use qits_circuit::generators;
use qits_tdd::GcPolicy;

fn run(
    spec: &qits_circuit::generators::QtsSpec,
    order: StaticOrder,
    reorder: ReorderPolicy,
) -> (usize, u64, u64) {
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .static_order(order)
        .gc_policy(Some(GcPolicy::aggressive()))
        .reorder(reorder)
        .build_from_spec(spec)
        .expect("well-formed benchmark system");
    let (_, stats) = engine.image().expect("image computes");
    (stats.live_nodes, stats.swaps, stats.sift_passes)
}

fn main() {
    let specs = vec![
        generators::grover(4),
        generators::ghz(5),
        generators::qrw(4, 0.125),
    ];
    println!(
        "{:<10} {:>14} {:>14} {:>22}",
        "System", "natural", "position-major", "position-major+sift"
    );
    for spec in specs {
        let (nat, _, _) = run(&spec, StaticOrder::Natural, ReorderPolicy::Off);
        let (bad, _, _) = run(&spec, StaticOrder::PositionMajor, ReorderPolicy::Off);
        let (sifted, swaps, passes) = run(
            &spec,
            StaticOrder::PositionMajor,
            ReorderPolicy::EveryCollection,
        );
        println!(
            "{:<10} {:>9} live {:>9} live {:>9} live ({} swaps, {} passes)",
            spec.name, nat, bad, sifted, swaps, passes
        );
        assert!(
            passes > 0 && swaps > 0,
            "the every-collection schedule must have sifted"
        );
    }
    println!();
    println!(
        "Sifting rewrites node slots in place — every handle held across a \
         pass keeps denoting the same tensor, so the schedule can fire in \
         the middle of a fixpoint."
    );
}
