//! Circuit equivalence checking on operator TDDs — the verification task
//! the paper's introduction cites as motivation (its refs. [1]-[4]).
//!
//! A bare engine session (no transition system) supplies the manager and
//! the fallible API: register mismatches come back as `Err`, not panics.
//!
//! Run with: `cargo run --example equivalence`

use qits::EngineBuilder;
use qits_circuit::decompose::{ccx_to_clifford_t, elementarize, ElementarizeOptions};
use qits_circuit::{generators, Circuit, Gate};

fn main() {
    let mut engine = EngineBuilder::new()
        .build_bare(2)
        .expect("a bare session only needs a non-empty register");

    // 1. SWAP vs three CX gates.
    let mut swap = Circuit::new(2);
    swap.push(Gate::swap(0, 1));
    let mut cxs = Circuit::new(2);
    cxs.push(Gate::cx(0, 1));
    cxs.push(Gate::cx(1, 0));
    cxs.push(Gate::cx(0, 1));
    println!(
        "SWAP == CX;CX;CX           : {}",
        engine.equivalent(&swap, &cxs).unwrap()
    );

    // 2. Toffoli vs its 15-gate Clifford+T realisation.
    let mut ccx = Circuit::new(3);
    ccx.push(Gate::ccx(0, 1, 2));
    let ct: Circuit = {
        let mut c = Circuit::new(3);
        for g in ccx_to_clifford_t(0, 1, 2) {
            c.push(g);
        }
        c
    };
    println!(
        "CCX == Clifford+T sequence : {}",
        engine.equivalent(&ccx, &ct).unwrap()
    );

    // 3. Primitive Grover vs its Toffoli-ladder compilation. The compiled
    //    circuit agrees only on the |0...0> ancilla sector (elsewhere the
    //    ladders act differently), so project both sides onto that sector
    //    before comparing — full-operator equivalence would rightly fail.
    let grover = generators::grover(4).operations[0]
        .kraus_branches()
        .remove(0);
    let elem = elementarize(&grover, ElementarizeOptions::default());
    let (sector_a, sector_b) = {
        let project_ancillas = |src: &Circuit| {
            let mut c = Circuit::new(elem.n_qubits());
            for q in 4..elem.n_qubits() {
                c.push(Gate::projector(q, false));
            }
            for g in src.gates() {
                c.push(g.clone());
            }
            for q in 4..elem.n_qubits() {
                c.push(Gate::projector(q, false));
            }
            c
        };
        let mut padded = Circuit::new(elem.n_qubits());
        for g in grover.gates() {
            padded.push(g.clone());
        }
        (project_ancillas(&padded), project_ancillas(&elem))
    };
    println!(
        "Grover4 == ladder compile  : {} (on the |0> ancilla sector)",
        engine.equivalent(&sector_a, &sector_b).unwrap()
    );

    // 4. A deliberate non-equivalence: CX direction matters.
    let mut ab = Circuit::new(2);
    ab.push(Gate::cx(0, 1));
    let mut ba = Circuit::new(2);
    ba.push(Gate::cx(1, 0));
    println!(
        "CX(0,1) == CX(1,0)         : {}",
        engine.equivalent_up_to_phase(&ab, &ba).unwrap()
    );

    // 5. Mismatched registers are an error value, not a panic.
    let wide = Circuit::new(3);
    let narrow = Circuit::new(2);
    println!(
        "3-qubit vs 2-qubit circuit : {}",
        engine.equivalent(&wide, &narrow).unwrap_err()
    );
}
