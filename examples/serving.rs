//! Batch serving: answer a mixed batch of model-checking queries over one
//! system through an `EnginePool`.
//!
//! Quantum model-checking workloads arrive query-batched — many
//! reachability, invariant, and equivalence questions over the same
//! transition system. The pool owns one private `Engine` per worker
//! thread (caches stay warm across the jobs a worker serves) behind a
//! sharded work queue with stealing; every result is a
//! `Result<JobOutput, QitsError>`, and a malformed query fails alone
//! without touching its neighbours.
//!
//! Run with: `cargo run --example serving`

use qits::{EnginePool, EngineSpec, Job, Strategy};
use qits_circuit::{generators, Circuit, Gate};
use qits_num::Cplx;
use qits_tdd::GcPolicy;

fn main() {
    let system = generators::qrw(4, 0.125);
    println!("system: {} ({} qubits)", system.name, system.n_qubits);

    // One spec shared by every worker: strategy, GC policy, tolerance.
    let spec = EngineSpec::new(system)
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .gc_policy(Some(GcPolicy::default()));
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .min(4);
    let pool = EnginePool::builder(spec)
        .workers(workers)
        .build()
        .expect("well-formed spec");
    println!("pool: {} workers, sharded queue", pool.workers());

    // A mixed batch: images, reachability fixpoints, an invariant check,
    // two circuit-equivalence queries — and one deliberately malformed
    // job (a 6-qubit invariant against the 4-qubit system).
    let mut swap = Circuit::new(2);
    swap.push(Gate::swap(0, 1));
    let mut cx3 = Circuit::new(2);
    cx3.push(Gate::cx(0, 1));
    cx3.push(Gate::cx(1, 0));
    cx3.push(Gate::cx(0, 1));
    let zero4 = vec![(Cplx::ONE, Cplx::ZERO); 4];
    let zero6 = vec![(Cplx::ONE, Cplx::ZERO); 6];
    let mut jobs = vec![Job::image(); 8];
    jobs.push(Job::reachability(12));
    jobs.push(Job::invariant(4, vec![zero4], 12));
    jobs.push(Job::equivalence(swap.clone(), cx3));
    jobs.push(Job::equivalence(swap.clone(), swap));
    jobs.push(Job::invariant(6, vec![zero6], 12)); // malformed: wrong register

    let handles = pool.submit_batch(jobs);
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(out) => {
                if let Some(img) = out.image() {
                    println!("job {i:>2}: image       dim {}", img.dim);
                } else if let Some(r) = out.reachability() {
                    println!(
                        "job {i:>2}: reachable   dim {} in {} iterations (converged: {})",
                        r.dim, r.iterations, r.converged
                    );
                } else if let Some(holds) = out.invariant_holds() {
                    println!("job {i:>2}: invariant   holds: {holds}");
                } else if let Some(eq) = out.equivalent() {
                    println!("job {i:>2}: equivalence verdict: {eq}");
                }
            }
            Err(e) => println!("job {i:>2}: FAILED — {e} (isolated to this job)"),
        }
    }

    // Aggregated fleet statistics: totals are the sum of the per-worker
    // counters (see PoolStats).
    let stats = pool.shutdown();
    println!(
        "pool served {} jobs ({} failed), {} image computations",
        stats.jobs_completed, stats.jobs_failed, stats.images
    );
    for (i, w) in stats.workers.iter().enumerate() {
        println!(
            "  worker {i}: {:>3} jobs, {:>3} images, {:>6} safepoints polled, {:>7} nodes reclaimed",
            w.jobs_completed + w.jobs_failed,
            w.images,
            w.manager.safepoints_polled,
            w.manager.nodes_reclaimed,
        );
    }
    println!(
        "  totals:   {:>3} jobs, {:>3} images, {:>6} safepoints polled, {:>7} nodes reclaimed",
        stats.jobs_completed + stats.jobs_failed,
        stats.images,
        stats.manager.safepoints_polled,
        stats.manager.nodes_reclaimed,
    );
    assert_eq!(stats.jobs_failed, 1, "exactly the malformed job fails");
}
