//! Model checking by reachability: the application image computation
//! exists for (Section I).
//!
//! Computes the reachable subspace of several benchmark systems and checks
//! a safety invariant on each — with automatic garbage collection enabled,
//! so the fixpoint iterations run with a bounded live set. The reclaim
//! counters printed per system are the observable effect: between
//! iterations the engine protects the live subspaces and sweeps
//! everything else in place (collection never moves a node) — all
//! internal to the session, with failures surfacing as `Result` values
//! rather than panics.
//!
//! Run with: `cargo run --example reachability`

use qits::{EngineBuilder, Strategy};
use qits_circuit::generators;
use qits_tdd::GcPolicy;

fn main() {
    let strategy = Strategy::Contraction { k1: 4, k2: 4 };
    let specs = vec![
        generators::ghz(4),
        generators::grover(4),
        generators::qrw(4, 0.1),
        generators::bitflip_code(),
    ];
    for spec in specs {
        // Collect whenever occupancy grows 1.5x past the last live set,
        // re-checked at every safepoint of the fixpoint, sweeping at most
        // 4096 slots per poll so no single safepoint pays a full sweep.
        let mut engine = EngineBuilder::new()
            .gc_policy(Some(GcPolicy {
                watermark: 1.5,
                min_interval: 1 << 10,
                sweep_budget: 1 << 12,
                ..GcPolicy::default()
            }))
            .strategy(strategy)
            .build_from_spec(&spec)
            .expect("well-formed benchmark system");
        let r = engine.reachable_space(40).expect("fixpoint runs");
        let total_time: std::time::Duration = r.stats.iter().map(|s| s.elapsed).sum();
        println!(
            "{name:<14} initial dim {init:>2} -> reachable dim {dim:>3} in {it:>2} iterations \
             (converged {conv}, {time:?})",
            name = spec.name,
            init = engine.initial().dim(),
            dim = r.space.dim(),
            it = r.iterations,
            conv = r.converged,
            time = total_time,
        );
        println!(
            "  gc: {coll} collections reclaimed {recl} nodes; arena {arena} \
             (live after last gc {live})",
            coll = r.collections,
            recl = r.reclaimed_nodes,
            arena = engine.manager().arena_len(),
            live = engine.manager().stats().live_after_last_gc,
        );
        // Safety: the reachable space is itself an invariant. The GC'd
        // run above swept around the session's system and `r.space`, so
        // both are bit-identical here — a root-registration bug would
        // have left them detectably stale and corrupt this check.
        let inv = r.space.clone();
        let (holds, _) = engine.check_invariant(&inv, 40).expect("check runs");
        assert!(holds, "reachable space must be invariant");
    }
    println!("all reachability fixpoints verified as invariants (with GC enabled)");
}
