//! Model checking by reachability: the application image computation
//! exists for (Section I).
//!
//! Computes the reachable subspace of several benchmark systems and checks
//! a safety invariant on each.
//!
//! Run with: `cargo run --example reachability`

use qits::{mc, QuantumTransitionSystem, Strategy};
use qits_circuit::generators;
use qits_tdd::TddManager;

fn main() {
    let strategy = Strategy::Contraction { k1: 4, k2: 4 };
    let specs = vec![
        generators::ghz(4),
        generators::grover(4),
        generators::qrw(4, 0.1),
        generators::bitflip_code(),
    ];
    for spec in specs {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
        let r = mc::reachable_space(&mut m, &qts, strategy, 40);
        let total_time: std::time::Duration = r.stats.iter().map(|s| s.elapsed).sum();
        println!(
            "{name:<14} initial dim {init:>2} -> reachable dim {dim:>3} in {it:>2} iterations \
             (converged {conv}, {time:?})",
            name = spec.name,
            init = qts.initial().dim(),
            dim = r.space.dim(),
            it = r.iterations,
            conv = r.converged,
            time = total_time,
        );
        // Safety: the reachable space is itself an invariant.
        let (holds, _) = mc::check_invariant(&mut m, &qts, &r.space, strategy, 40);
        assert!(holds, "reachable space must be invariant");
    }
    println!("all reachability fixpoints verified as invariants");
}
