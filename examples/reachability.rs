//! Model checking by reachability: the application image computation
//! exists for (Section I).
//!
//! Computes the reachable subspace of several benchmark systems and checks
//! a safety invariant on each — with automatic garbage collection enabled,
//! so the fixpoint iterations run with a bounded live set. The reclaim
//! counters printed per system are the observable effect: between
//! iterations the driver protects the live subspaces, sweeps everything
//! else, and relocates the survivors.
//!
//! Run with: `cargo run --example reachability`

use qits::{mc, QuantumTransitionSystem, Strategy};
use qits_circuit::generators;
use qits_tdd::{GcPolicy, TddManager};

fn main() {
    let strategy = Strategy::Contraction { k1: 4, k2: 4 };
    let specs = vec![
        generators::ghz(4),
        generators::grover(4),
        generators::qrw(4, 0.1),
        generators::bitflip_code(),
    ];
    for spec in specs {
        let mut m = TddManager::new();
        // Collect whenever the arena grows 1.5x past the last live set,
        // re-checked between fixpoint iterations.
        m.set_gc_policy(Some(GcPolicy {
            watermark: 1.5,
            min_interval: 1 << 10,
        }));
        let mut qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
        let r = mc::reachable_space(&mut m, &mut qts, strategy, 40);
        let total_time: std::time::Duration = r.stats.iter().map(|s| s.elapsed).sum();
        println!(
            "{name:<14} initial dim {init:>2} -> reachable dim {dim:>3} in {it:>2} iterations \
             (converged {conv}, {time:?})",
            name = spec.name,
            init = qts.initial().dim(),
            dim = r.space.dim(),
            it = r.iterations,
            conv = r.converged,
            time = total_time,
        );
        println!(
            "  gc: {coll} collections reclaimed {recl} nodes; arena {arena} \
             (live after last gc {live})",
            coll = r.collections,
            recl = r.reclaimed_nodes,
            arena = m.arena_len(),
            live = m.stats().live_after_last_gc,
        );
        // Safety: the reachable space is itself an invariant. The GC'd
        // run above relocated `qts` and `r.space` in place, so both are
        // valid here — a root-registration bug would panic or corrupt
        // this check.
        let mut inv = r.space.clone();
        let (holds, _) = mc::check_invariant(&mut m, &mut qts, &mut inv, strategy, 40);
        assert!(holds, "reachable space must be invariant");
    }
    println!("all reachability fixpoints verified as invariants (with GC enabled)");
}
