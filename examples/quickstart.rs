//! Quickstart: verify the Grover-iteration invariant of Section III-A.1.
//!
//! The subspace `S = span{|++->, |11->}` is invariant under one Grover
//! iteration: `T(S) = S`. We open an engine session on the transition
//! system, compute the image with all three methods, and check they agree
//! — then garbage-collect the arena down to the session's live set and
//! verify the invariant again on the relocated diagrams. The engine owns
//! the manager, the system, and every GC root: no `parts_mut`, no
//! `pin`/`unpin`.
//!
//! Run with: `cargo run --example quickstart`

use qits::{Auto, EngineBuilder, ImageStrategy, Strategy};
use qits_circuit::generators;

fn main() {
    let n = 5; // 4 search qubits + 1 oracle ancilla
    let spec = generators::grover(n);
    println!("benchmark: {} ({} qubits)", spec.name, spec.n_qubits);

    let mut engine = EngineBuilder::new()
        .build_from_spec(&spec)
        .expect("well-formed benchmark system");
    println!("initial subspace dimension: {}", engine.initial().dim());

    for strategy in [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Contraction { k1: 4, k2: 4 },
    ] {
        let (img, stats) = engine
            .image_with(&strategy)
            .expect("image computation succeeds");
        let initial = engine.initial().clone();
        let invariant = img.equals(engine.manager_mut(), &initial);
        println!(
            "{strategy:<24} image dim {dim}  max #node {nodes:<6}  time {t:?}  \
             cont-cache {hit:.1}%  T(S)=S: {invariant}",
            dim = img.dim(),
            nodes = stats.max_nodes,
            t = stats.elapsed,
            hit = 100.0 * stats.cont_hit_rate(),
        );
        assert!(invariant, "Grover subspace must be invariant");
    }
    println!("all methods agree: T(S) = S holds");

    // Reclaim every dead intermediate: the engine protects its system,
    // sweeps, and relocates — one call.
    let before = engine.manager().arena_len();
    let out = engine.collect(&[]);
    println!(
        "gc: arena {before} -> {after} nodes ({reclaimed} reclaimed, {live} live)",
        after = engine.manager().arena_len(),
        reclaimed = out.reclaimed,
        live = out.live,
    );
    assert!(out.reclaimed > 0, "three image computations leave garbage");

    // The relocated session is fully usable: re-verify the invariant.
    let kernel = Strategy::Contraction { k1: 4, k2: 4 };
    let (img, _) = engine.image_with(&kernel).expect("post-gc image");
    let initial = engine.initial().clone();
    assert!(img.equals(engine.manager_mut(), &initial));
    println!("post-gc image computation still verifies T(S) = S");

    // The Auto selector routes this deep circuit to the same kernel:
    println!(
        "auto selector would run: {}",
        Auto::default().select(engine.operations())
    );
}
