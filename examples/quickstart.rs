//! Quickstart: verify the Grover-iteration invariant of Section III-A.1.
//!
//! The subspace `S = span{|++->, |11->}` is invariant under one Grover
//! iteration: `T(S) = S`. We build the transition system, compute the image
//! with all three methods, and check they agree.
//!
//! Run with: `cargo run --example quickstart`

use qits::{image, QuantumTransitionSystem, Strategy};
use qits_circuit::generators;
use qits_tdd::TddManager;

fn main() {
    let n = 5; // 4 search qubits + 1 oracle ancilla
    let mut m = TddManager::new();
    let spec = generators::grover(n);
    println!("benchmark: {} ({} qubits)", spec.name, spec.n_qubits);

    let qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
    println!("initial subspace dimension: {}", qts.initial().dim());

    for strategy in [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Contraction { k1: 4, k2: 4 },
    ] {
        let (img, stats) = image(&mut m, qts.operations(), qts.initial(), strategy);
        let invariant = img.equals(&mut m, qts.initial());
        println!(
            "{strategy:<24} image dim {dim}  max #node {nodes:<6}  time {t:?}  \
             cont-cache {hit:.1}%  T(S)=S: {invariant}",
            dim = img.dim(),
            nodes = stats.max_nodes,
            t = stats.elapsed,
            hit = 100.0 * stats.cont_hit_rate(),
        );
        assert!(invariant, "Grover subspace must be invariant");
    }
    println!("all methods agree: T(S) = S holds");
}
