//! Quickstart: verify the Grover-iteration invariant of Section III-A.1.
//!
//! The subspace `S = span{|++->, |11->}` is invariant under one Grover
//! iteration: `T(S) = S`. We build the transition system, compute the image
//! with all three methods, and check they agree — then garbage-collect the
//! arena down to the rooted transition system and verify the invariant
//! again on the relocated diagrams.
//!
//! Run with: `cargo run --example quickstart`

use qits::{image, QuantumTransitionSystem, Strategy};
use qits_circuit::generators;
use qits_tdd::TddManager;

fn main() {
    let n = 5; // 4 search qubits + 1 oracle ancilla
    let mut m = TddManager::new();
    let spec = generators::grover(n);
    println!("benchmark: {} ({} qubits)", spec.name, spec.n_qubits);

    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
    println!("initial subspace dimension: {}", qts.initial().dim());

    for strategy in [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Contraction { k1: 4, k2: 4 },
    ] {
        let (ops, initial) = qts.parts_mut();
        let (img, stats) = image(&mut m, &ops, initial, strategy);
        let invariant = img.equals(&mut m, qts.initial());
        println!(
            "{strategy:<24} image dim {dim}  max #node {nodes:<6}  time {t:?}  \
             cont-cache {hit:.1}%  T(S)=S: {invariant}",
            dim = img.dim(),
            nodes = stats.max_nodes,
            t = stats.elapsed,
            hit = 100.0 * stats.cont_hit_rate(),
        );
        assert!(invariant, "Grover subspace must be invariant");
    }
    println!("all methods agree: T(S) = S holds");

    // Reclaim every dead intermediate: protect the system, sweep, relocate.
    let before = m.arena_len();
    let out = m.collect_retaining(&mut [&mut qts]);
    println!(
        "gc: arena {before} -> {after} nodes ({reclaimed} reclaimed, {live} live)",
        after = m.arena_len(),
        reclaimed = out.reclaimed,
        live = out.live,
    );
    assert!(out.reclaimed > 0, "three image computations leave garbage");

    // The relocated system is fully usable: re-verify the invariant.
    let (ops, initial) = qts.parts_mut();
    let (img, _) = image(
        &mut m,
        &ops,
        initial,
        Strategy::Contraction { k1: 4, k2: 4 },
    );
    assert!(img.equals(&mut m, qts.initial()));
    println!("post-gc image computation still verifies T(S) = S");
}
