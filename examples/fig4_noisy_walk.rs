//! Reproduces Fig. 4 of the paper: the noisy quantum-walk circuit on an
//! 8-length cycle — Hadamard coin, bit-flip noise `N`, and the
//! multi-controlled-X shift cascades.
//!
//! Run with: `cargo run --example fig4_noisy_walk`

use qits_circuit::{generators, render};

fn main() {
    let spec = generators::qrw(4, 0.1);
    println!("quantum walk on an 8-cycle (coin qubit q0, position q1..q3)\n");

    println!("T1 (noiseless): coin, then shift S = S0 (+) S1");
    let t1 = spec.operations[0].kraus_branches().remove(0);
    println!("{}", render::ascii(&t1));

    println!("T2 (bit-flip after the coin) expands into Kraus branches:");
    for (i, branch) in spec.operations[1].kraus_branches().iter().enumerate() {
        println!("\nKraus branch {i}:");
        println!("{}", render::ascii(branch));
    }
    println!("(negative controls ○ implement the X-conjugated controls drawn in the paper)");
}
