//! Async serving: the non-blocking front over an `EnginePool` —
//! streamed results, priorities, deadlines, cancellation, and the
//! fleet-wide result memo.
//!
//! Where `examples/serving.rs` submits a batch and joins in order, this
//! example drives the pool through a [`qits::ServiceHandle`]: callers
//! get a [`qits::JobTicket`] back immediately, consume results in
//! *completion* order, attach priorities and deadlines per job, cancel
//! in-flight work cooperatively at GC safepoints, and let duplicate
//! queries be answered from a shared [`qits::ResultMemo`] without
//! touching a worker. Tickets are also plain `Future`s — the tail of
//! the example awaits one from a ten-line hand-rolled executor, no
//! async runtime in sight.
//!
//! Run with: `cargo run --example async_serving`

use std::future::Future;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use qits::serve::{JobRequest, Priority};
use qits::{CancelToken, EnginePool, EngineSpec, Job, JobTicket, QitsError, Strategy};
use qits_circuit::generators;

/// A minimal single-future executor: park the thread until the ticket's
/// waker fires. This is all `JobTicket: Future` needs — any real
/// runtime's waker works the same way.
fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

fn main() {
    let system = generators::qrw(4, 0.125);
    println!("system: {} ({} qubits)", system.name, system.n_qubits);

    let spec = EngineSpec::new(system)
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .gc_policy(None);
    let pool = EnginePool::builder(spec)
        .workers(4)
        .memo_capacity(256)
        .build()
        .expect("well-formed spec");
    let handle = pool.handle();
    println!(
        "pool: {} workers behind a cloneable ServiceHandle\n",
        handle.workers()
    );

    // --- Streamed results: submit a mixed-priority burst, consume in
    // completion order. The handle never blocks the submitting thread.
    let mut inflight: Vec<(usize, JobTicket)> = (0..8)
        .map(|i| {
            let priority = [Priority::High, Priority::Normal, Priority::Low][i % 3];
            let job = if i % 2 == 0 {
                Job::image()
            } else {
                Job::reachability(16)
            };
            let ticket = handle
                .try_submit(JobRequest::new(job).priority(priority))
                .expect("queue is unbounded here");
            (i, ticket)
        })
        .collect();
    while !inflight.is_empty() {
        inflight.retain_mut(|(i, ticket)| match ticket.try_join() {
            None => true,
            Some(result) => {
                let latency = ticket.latency().unwrap_or_default();
                match result {
                    Ok(out) => {
                        if let Some(img) = out.image() {
                            println!("job {i}: image dim {} ({latency:.1?})", img.dim);
                        } else if let Some(r) = out.reachability() {
                            println!(
                                "job {i}: reachable dim {} in {} iterations ({latency:.1?})",
                                r.dim, r.iterations
                            );
                        }
                    }
                    Err(e) => println!("job {i}: FAILED — {e}"),
                }
                false
            }
        });
        std::thread::sleep(Duration::from_micros(200));
    }

    // --- Deadlines: a job whose budget is already spent is shed at
    // dequeue with `DeadlineExpired`; a worker never touches it.
    let doomed = handle
        .try_submit(JobRequest::new(Job::reachability(999)).deadline(Duration::ZERO))
        .unwrap();
    assert_eq!(doomed.join().unwrap_err(), QitsError::DeadlineExpired);
    println!("\ndeadline: zero-budget job shed before running");

    // --- Cancellation: the token trips at the 3rd GC safepoint the
    // running computation polls, and the worker unwinds cooperatively.
    let token = CancelToken::cancel_after(3);
    let cancelled = handle
        .try_submit(JobRequest::new(Job::reachability(64)).cancel_token(token.clone()))
        .unwrap();
    assert_eq!(cancelled.join().unwrap_err(), QitsError::Cancelled);
    println!(
        "cancel:   mid-run token tripped after {} safepoint polls",
        token.polls()
    );

    // --- The memo: the second identical query is answered from the
    // fleet-wide cache — bit-identical output, no worker involved.
    let first = handle.submit(Job::Image { densify: true }).join().unwrap();
    let second = handle.submit(Job::Image { densify: true }).join().unwrap();
    assert_eq!(
        first.image().unwrap().amplitudes,
        second.image().unwrap().amplitudes
    );
    println!("memo:     duplicate image served from cache, bit-identical");

    // --- Tickets are futures: await one from the minimal executor.
    let awaited = block_on(handle.submit(Job::image())).unwrap();
    println!(
        "await:    image dim {} via `impl Future`",
        awaited.image().unwrap().dim
    );

    let stats = pool.shutdown();
    println!(
        "\nstats: {} submitted, {} completed, {} cancelled, {} expired; \
         memo {} hits / {} misses",
        stats.jobs_submitted,
        stats.jobs_completed,
        stats.jobs_cancelled,
        stats.jobs_expired,
        stats.memo.hits,
        stats.memo.misses,
    );
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.memo.hits >= 1);
}
