//! Dynamic-circuit case study: the bit-flip error-correction circuit of
//! Fig. 3 (Section III-A.2).
//!
//! The system has four operations `T_s`, one per syndrome outcome. Starting
//! from `span{|100>, |010>, |001>} (x) |000>` (one bit-flip error
//! somewhere), the image under `T = v_s T_s` must have all data qubits
//! corrected to `|000>`.
//!
//! Run with: `cargo run --example bitflip_code`

use qits::{image, QuantumTransitionSystem, Strategy, Subspace};
use qits_circuit::generators;
use qits_tdd::TddManager;

fn main() {
    let mut m = TddManager::new();
    let spec = generators::bitflip_code();
    let mut qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
    println!(
        "bit-flip code: {} operations, initial dim {}",
        qts.operations().len(),
        qts.initial().dim()
    );

    let (ops, initial) = qts.parts_mut();
    let (img, stats) = image(
        &mut m,
        &ops,
        initial,
        Strategy::Contraction { k1: 3, k2: 2 },
    );
    println!(
        "image dim {} (max #node {}, {:?})",
        img.dim(),
        stats.max_nodes,
        stats.elapsed
    );

    // The corrected space: data |000>, syndromes in {101, 110, 011}.
    let vars = Subspace::ket_vars(6);
    let expected_states: Vec<_> = [
        [true, false, true],
        [true, true, false],
        [false, true, true],
    ]
    .iter()
    .map(|synd| {
        let bits = [false, false, false, synd[0], synd[1], synd[2]];
        m.basis_ket(&vars, &bits)
    })
    .collect();
    let expected = Subspace::from_states(&mut m, 6, &expected_states);

    let corrected = img.equals(&mut m, &expected);
    println!("data register corrected to |000> in every branch: {corrected}");
    assert!(corrected, "error correction must succeed");
}
