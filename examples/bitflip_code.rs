//! Dynamic-circuit case study: the bit-flip error-correction circuit of
//! Fig. 3 (Section III-A.2).
//!
//! The system has four operations `T_s`, one per syndrome outcome. Starting
//! from `span{|100>, |010>, |001>} (x) |000>` (one bit-flip error
//! somewhere), the image under `T = v_s T_s` must have all data qubits
//! corrected to `|000>`.
//!
//! Run with: `cargo run --example bitflip_code`

use qits::{EngineBuilder, Strategy, Subspace};
use qits_circuit::generators;

fn main() {
    let spec = generators::bitflip_code();
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 3, k2: 2 })
        .build_from_spec(&spec)
        .expect("well-formed benchmark system");
    println!(
        "bit-flip code: {} operations, initial dim {}",
        engine.operations().len(),
        engine.initial().dim()
    );

    let (img, stats) = engine.image().expect("image computation succeeds");
    println!(
        "image dim {} (max #node {}, {:?})",
        img.dim(),
        stats.max_nodes,
        stats.elapsed
    );

    // The corrected space: data |000>, syndromes in {101, 110, 011}.
    let vars = Subspace::ket_vars(6);
    let expected_states: Vec<_> = [
        [true, false, true],
        [true, true, false],
        [false, true, true],
    ]
    .iter()
    .map(|synd| {
        let bits = [false, false, false, synd[0], synd[1], synd[2]];
        engine.manager_mut().basis_ket(&vars, &bits)
    })
    .collect();
    let expected = engine
        .subspace_from_states(&expected_states)
        .expect("states fit the register");

    let corrected = img.equals(engine.manager_mut(), &expected);
    println!("data register corrected to |000> in every branch: {corrected}");
    assert!(corrected, "error correction must succeed");
}
