//! Reproduces Fig. 5 of the paper: the undirected interaction graph of the
//! Grover-iteration tensor network, whose highest-degree vertices are the
//! slicing candidates of the addition partition.
//!
//! Run with: `cargo run --example fig5_graph`

use qits_circuit::generators;
use qits_tdd::TddManager;
use qits_tensornet::{InteractionGraph, TensorNetwork};

fn main() {
    let spec = generators::grover(3);
    let circuit = spec.operations[0].kraus_branches().remove(0);
    let mut m = TddManager::new();
    let net = TensorNetwork::from_circuit(&mut m, &circuit);
    let g = InteractionGraph::of(&net);

    println!("interaction graph of the Grover iteration (q<i>.<j> = j-th index on qubit i):\n");
    println!("{}", g.render());

    let top = g.highest_degree_vars(3);
    println!("highest-degree vertices (addition-partition slicing candidates):");
    for v in top {
        println!("  {v} with degree {}", g.degree(v));
    }
}
