//! Scenario frontend end to end: author a scenario as text, parse it,
//! build an engine, and answer every declared property — the same path
//! the `qits run` CLI drives, without touching a single constructor.
//!
//! ```text
//! cargo run --release -p qits --example scenario
//! ```

use qits::{run_job, EngineSpec};
use qits_circuit::parse::{parse_scenario, Property};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = "\
scenario bell-monitor
qubits 2

# Prepare a Bell pair, let a bit-flip strike qubit 1, then post-select
# the syndrome-free branch.
op bell {
  h 0
  cx 0 1
  channel bitflip 1 0.125
}

circuit cz_via_h { h 1; cx 0 1; h 1 }
circuit cz_direct { cz 0 1 }

init 0 0

reach 8
invariant 8 {
  0 0
  0 1
  1 0
  1 1
}
equivalent cz_via_h cz_direct
";
    let scenario = parse_scenario(text)?;
    println!(
        "scenario '{}': {} qubits, {} op(s), {} properties",
        scenario.name,
        scenario.n_qubits,
        scenario.operations.len(),
        scenario.properties.len()
    );

    let mut engine = EngineSpec::new(scenario.to_spec()).build()?;
    for property in &scenario.properties {
        let job = match property {
            Property::Reachability { max_iterations } => qits::Job::reachability(*max_iterations),
            Property::Invariant {
                states,
                max_iterations,
            } => qits::Job::invariant(scenario.n_qubits, states.clone(), *max_iterations),
            Property::Equivalence { a, b, up_to_phase } => qits::Job::Equivalence {
                a: scenario.circuit(a)?,
                b: scenario.circuit(b)?,
                up_to_phase: *up_to_phase,
            },
        };
        let output = run_job(&mut engine, &job)?;
        match output {
            qits::JobOutput::Reachability(r) => {
                println!(
                    "reachability: dim {} after {} iteration(s), converged = {}",
                    r.dim, r.iterations, r.converged
                );
                assert!(r.converged, "the Bell monitor reaches a fixpoint");
            }
            qits::JobOutput::Invariant { holds, reach } => {
                println!(
                    "invariant over the full basis: holds = {holds} (dim {})",
                    reach.dim
                );
                assert!(holds, "the whole space is trivially invariant");
            }
            qits::JobOutput::Equivalence { equivalent } => {
                println!("cz_via_h == cz_direct: {equivalent}");
                assert!(equivalent, "H-CX-H on the target is CZ");
            }
            other => println!("unexpected output {other:?}"),
        }
    }

    // The same text errors out — typed, positioned — when a client line
    // names a duplicate wire; nothing panics.
    let bad = parse_scenario("qubits 2\nop broken {\n  cx 1 1\n}\ninit 0 0");
    let err = bad.expect_err("duplicate wires must be refused");
    println!("malformed scenario refused: {err}");
    Ok(())
}
