//! Checkpoint and resume: the persistence layer (`qits::store`) at
//! engine level.
//!
//! Runs the noisy quantum walk's reachability fixpoint partway, saves a
//! snapshot — serialized TDDs, the frontier subspace, the iteration
//! counters — then hands the file to a *fresh* engine which warm-starts
//! from it and finishes the fixpoint. The resumed run must land on the
//! same answer (dimension and total iteration count) as an
//! uninterrupted run, which the example asserts.
//!
//! Snapshots are versioned, checksummed, and atomic on write (temp
//! file then rename), so a crash mid-save never leaves a half-written
//! checkpoint behind; corrupt or stale files fail with typed
//! `QitsError::Store*` values, never panics.
//!
//! Run with: `cargo run --example snapshot`

use qits::{EngineSpec, Strategy};
use qits_circuit::generators;

fn main() {
    // Snapshots live under the Cargo target dir — scratch output, not
    // repository state.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/example-snapshot/qrw.qsnap");
    std::fs::create_dir_all(path.parent().unwrap()).expect("create snapshot dir");

    let spec =
        EngineSpec::new(generators::qrw(4, 0.1)).strategy(Strategy::Contraction { k1: 4, k2: 4 });

    // Session one: run two fixpoint iterations, then checkpoint.
    let mut first = spec.build().expect("well-formed benchmark system");
    let partial = first.reachable_space(2).expect("partial fixpoint");
    first
        .save_snapshot(&path, "qrw checkpoint", Some(&partial))
        .expect("snapshot saves");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "checkpoint: dim {} after {} iterations (converged: {}) -> {} ({bytes} bytes)",
        partial.space.dim(),
        partial.iterations,
        partial.converged,
        path.display(),
    );

    // Session two: a fresh engine, warm-started from the file, resumes
    // where session one stopped.
    let mut second = spec.build().expect("engine builds");
    let resumed = second
        .warm_start_from(&path)
        .expect("snapshot loads")
        .expect("snapshot carries reachability progress");
    println!(
        "warm start: restored dim {} at iteration {}",
        resumed.space.dim(),
        resumed.iterations,
    );
    let finished = second
        .resume_reachable_space(&resumed, 64)
        .expect("resumed fixpoint");
    println!(
        "resumed:    dim {} after {} total iterations (converged: {})",
        finished.space.dim(),
        finished.iterations,
        finished.converged,
    );

    // An uninterrupted run must agree with checkpoint-and-resume.
    let straight = spec
        .build()
        .expect("engine builds")
        .reachable_space(64)
        .expect("straight fixpoint");
    assert_eq!(finished.space.dim(), straight.space.dim());
    assert_eq!(finished.iterations, straight.iterations);
    assert!(finished.converged && straight.converged);
    println!(
        "straight:   dim {} after {} iterations — resume agrees",
        straight.space.dim(),
        straight.iterations,
    );
}
