//! Reproduces Fig. 2 of the paper: the Grover-iteration circuit as a
//! tensor network, with its wire indices `x_i^j`.
//!
//! Run with: `cargo run --example fig2_grover_circuit`

use qits_circuit::{generators, render};
use qits_tdd::TddManager;
use qits_tensornet::TensorNetwork;

fn main() {
    let spec = generators::grover(3);
    let circuit = spec.operations[0].kraus_branches().remove(0);
    println!("Grover iteration (2 search qubits + oracle ancilla):\n");
    println!("{}", render::ascii(&circuit));

    let mut m = TddManager::new();
    let net = TensorNetwork::from_circuit(&mut m, &circuit);
    println!("tensor network: {} tensors", net.tensors().len());
    println!("(diagonal gates and control legs share one index per wire)\n");
    for (i, (gate, legs)) in circuit.gates().iter().zip(net.gate_legs()).enumerate() {
        let mut parts = Vec::new();
        for (v, pol) in &legs.controls {
            parts.push(format!("{}{}", if *pol { "●" } else { "○" }, v));
        }
        for (vin, vout) in legs.target_in.iter().zip(legs.target_out.iter()) {
            if vin == vout {
                parts.push(format!("{vin}*"));
            } else {
                parts.push(format!("{vin}->{vout}"));
            }
        }
        println!(
            "  gate {i:>2} {:<10} legs: {}",
            gate.kind.mnemonic(),
            parts.join(" ")
        );
    }
    for q in 0..3 {
        println!(
            "  wire q{q}: input {} output {}",
            net.in_var(q),
            net.out_var(q)
        );
    }
}
