//! Noisy quantum walk (Fig. 4, Section III-A.3).
//!
//! A Hadamard-coin walk on an 8-cycle with a bit-flip error on the coin.
//! The paper's check: `T(span{|0>|i>}) = span{|0>|(i-1) mod 8>,
//! |1>|(i+1) mod 8>}` — the bit-flip does not enlarge the reachable
//! subspace of a single step.
//!
//! Run with: `cargo run --example noisy_walk`

use qits::{EngineBuilder, Strategy, Subspace};
use qits_circuit::generators;

fn main() {
    let spec = generators::qrw(4, 0.25); // coin + 3 position qubits
    let mut engine = EngineBuilder::new()
        .strategy(Strategy::Contraction { k1: 2, k2: 2 })
        .build_from_spec(&spec)
        .expect("well-formed benchmark system");

    // One step from |0>|000>: expect span{|0>|111>, |1>|001>}.
    let (img, stats) = engine.image().expect("image computation succeeds");
    println!(
        "one-step image dim {} (max #node {}, {:?})",
        img.dim(),
        stats.max_nodes,
        stats.elapsed
    );
    let vars = Subspace::ket_vars(4);
    let m = engine.manager_mut();
    let down = m.basis_ket(&vars, &[false, true, true, true]); // |0>|7>
    let up = m.basis_ket(&vars, &[true, false, false, true]); // |1>|1>
    let bound = engine
        .subspace_from_states(&[down, up])
        .expect("states fit the register");
    let inside = img.is_subspace_of(engine.manager_mut(), &bound);
    println!("image inside span{{|0>|i-1>, |1>|i+1>}}: {inside}");
    // The bit-flip fixes |+>, so the exact image is the single ray
    // (|0>|i-1> + |1>|i+1>)/sqrt(2) — the noise does not enlarge it.
    println!(
        "image dimension: {} (noise did not enlarge the subspace)",
        img.dim()
    );
    assert!(inside && img.dim() == 1);

    // Reachability: the walk eventually spreads over the cycle.
    let reach = engine.reachable_space(32).expect("fixpoint runs");
    println!(
        "reachable space dim {} after {} iterations (converged: {})",
        reach.space.dim(),
        reach.iterations,
        reach.converged
    );
    for (i, st) in reach.stats.iter().enumerate() {
        println!(
            "  iteration {:>2}: image dim {:>3}, max #node {:>6}, {:?}",
            i + 1,
            st.output_dim,
            st.max_nodes,
            st.elapsed
        );
    }
}
