//! Reproduces Fig. 3 of the paper: the bit-flip-code circuit and its
//! contraction partition at `k1 = 3`, `k2 = 2` — six rectangular regions.
//!
//! Run with: `cargo run --example fig3_bitflip_blocks`

use qits_circuit::{generators, render};
use qits_tensornet::contraction_blocks;

fn main() {
    let spec = generators::bitflip_code();
    // The syndrome-extraction circuit is shared by all four operations;
    // take the no-error branch (T000) for the partition illustration.
    let circuit = spec.operations[0].kraus_branches().remove(0);
    println!("bit-flip code (3 data + 3 syndrome qubits), branch T000:\n");
    println!("{}", render::ascii(&circuit));

    let blocks = contraction_blocks(&circuit, 3, 2);
    println!(
        "contraction partition k1=3, k2=2: {} bands x {} segments = {} regions (paper: six blocks)",
        blocks.n_bands,
        blocks.n_segments,
        blocks.regions()
    );
    for (i, b) in blocks.blocks.iter().enumerate() {
        let gates: Vec<String> = b.iter().map(|&g| circuit.gates()[g].to_string()).collect();
        println!("  block {i}: {}", gates.join(" ; "));
    }
}
