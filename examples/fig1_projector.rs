//! Reproduces Fig. 1 of the paper: the projector matrix `P` of
//! `S = span{|++->, |11->}` and its TDD.
//!
//! Prints the 8x8 matrix (times 6, as typeset in the paper) and emits the
//! TDD as Graphviz DOT. Zero-weight edges are omitted, as in the figure.
//!
//! Run with: `cargo run --example fig1_projector`

use std::collections::BTreeMap;

use qits::Subspace;
use qits_circuit::tensorize::states;
use qits_tdd::TddManager;
use qits_tensor::Var;

fn main() {
    let mut m = TddManager::new();
    let vars = Subspace::ket_vars(3);
    let ppm = m.product_ket(&vars, &[states::PLUS, states::PLUS, states::MINUS]);
    let oom = m.product_ket(&vars, &[states::ONE, states::ONE, states::MINUS]);
    let s = Subspace::from_states(&mut m, 3, &[ppm, oom]);
    let p = s.projector();

    println!("P = 1/6 *");
    for row in 0..8usize {
        let mut line = String::from("  ");
        for col in 0..8usize {
            let mut asn = BTreeMap::new();
            for q in 0..3u32 {
                asn.insert(Var::ket(q), (col >> (2 - q)) & 1 == 1);
                asn.insert(Var::row(q), (row >> (2 - q)) & 1 == 1);
            }
            let v = m.eval(p, &asn);
            let six = v.re * 6.0;
            line.push_str(&format!("{:>4}", format!("{:.0}", six)));
        }
        println!("{line}");
    }

    println!("\nTDD node count: {}", m.node_count(p));
    println!("\nGraphviz DOT (interleaved variable order x1<y1<x2<y2<x3<y3):\n");
    println!("{}", m.to_dot(p, "fig1_projector"));
}
