//! # qits-store — the snapshot & persistence layer
//!
//! Expensive artifacts of the image-computation stack — tensorized
//! operator TDDs, computed reachable subspaces, memoised job results —
//! die with the process unless they can be written down. This crate
//! defines the one on-disk form all of them share: a **versioned,
//! checksummed, serde-free binary format** over the manager-neutral
//! [`TddDump`] from `qits-tdd`, plus the container types the engine/pool
//! layers persist ([`Snapshot`], [`SubspaceDump`], [`ReachDump`], opaque
//! memo blobs keyed by the engine-spec fingerprint).
//!
//! # File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"QITSSNAP"
//! 8       4     format version (little-endian u32; currently 1)
//! 12      8     payload length in bytes (little-endian u64)
//! 20      n     payload (the encoded Snapshot)
//! 20+n    16    FNV-1a/128 checksum of the payload (little-endian u128)
//! ```
//!
//! Every integer in the payload is fixed-width little-endian; `f64`s are
//! IEEE-754 bit patterns (`to_bits`/`from_bits`), so a dump → load round
//! trip is **bit-exact** — the property the resumable benches lean on.
//! Strings are a u64 length followed by UTF-8 bytes. Optional values are
//! a `u8` presence tag. Vectors are a u64 count followed by the elements.
//!
//! # Versioning & compatibility policy
//!
//! The version integer bumps whenever the payload layout changes shape;
//! readers accept exactly the versions they know ([`FORMAT_VERSION`]) and
//! reject everything else with [`StoreError::UnsupportedVersion`] — no
//! silent best-effort parsing of unknown layouts. A committed golden fixture
//! (`tests/fixtures/` in the repository) is loaded by CI on every push,
//! so an accidental layout drift that would orphan existing snapshots
//! fails the build instead of the operator. Corruption (bad magic, bad
//! checksum, truncation, malformed interior) is always a typed
//! [`StoreError`] — never a panic — because snapshot files cross trust
//! boundaries that in-process data never does.

#![forbid(unsafe_code)]

use std::io::{Read, Write};
use std::path::Path;

use qits_num::Cplx;
use qits_tdd::{DumpEdge, DumpNode, TddDump};
use qits_tensor::Var;

/// The eight magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"QITSSNAP";

/// The payload layout version this build writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// 128-bit FNV-1a over one byte chunk — the payload checksum. The same
/// construction (constants included) keys the pool's result memo; a
/// cache-grade hash is exactly the right strength for an integrity check
/// that guards against corruption, not adversaries.
pub fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Everything that can go wrong reading or writing a snapshot, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying file operation failed (open, read, write, ...).
    Io {
        /// The path involved.
        path: String,
        /// The OS error, stringified.
        detail: String,
    },
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's version is one this build does not read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build supports ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// The file ends before its header-declared payload (or trailer).
    Truncated,
    /// The payload's checksum does not match its trailer.
    ChecksumMismatch,
    /// The payload decoded to something structurally impossible.
    Malformed(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "snapshot i/o on '{path}': {detail}"),
            StoreError::BadMagic => write!(f, "not a qits snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            StoreError::Truncated => write!(f, "snapshot file is truncated"),
            StoreError::ChecksumMismatch => write!(f, "snapshot payload fails its checksum"),
            StoreError::Malformed(detail) => write!(f, "malformed snapshot payload: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

// ----------------------------------------------------------------------
// Byte-level primitives.
// ----------------------------------------------------------------------

/// Append-only little-endian encoder. All snapshot payloads (and the
/// opaque memo blobs the core crate embeds in them) are built with this,
/// so the whole stack shares one set of width/endianness decisions.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// Checked little-endian decoder over a byte slice. Every getter returns
/// [`StoreError::Truncated`] instead of panicking when the data runs out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian u128.
    pub fn get_u128(&mut self) -> Result<u128, StoreError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool (any non-zero byte is `true`).
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length the payload claims for a following sequence,
    /// sanity-bounded by the bytes actually remaining (each element needs
    /// at least `min_element_size` bytes) so a corrupted count cannot ask
    /// for an absurd allocation.
    pub fn get_count(&mut self, min_element_size: usize) -> Result<usize, StoreError> {
        let n = self.get_u64()?;
        let bound = self.remaining() / min_element_size.max(1);
        if n as usize > bound {
            return Err(StoreError::Malformed(format!(
                "sequence of {n} elements cannot fit the {} bytes left",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let n = self.get_count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Malformed("string is not UTF-8".to_string()))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let n = self.get_count(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

// ----------------------------------------------------------------------
// Container types.
// ----------------------------------------------------------------------

/// A serialized [`qits_tdd`] subspace: basis states and projector as
/// indices into the snapshot's [`TddDump::roots`] list (the core crate
/// owns the `Subspace` type; this is its persistence shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubspaceDump {
    /// Register width.
    pub n_qubits: u32,
    /// Index into the TDD dump's roots, one per basis state.
    pub basis: Vec<u32>,
    /// Index into the TDD dump's roots for the projector edge.
    pub projector: u32,
}

/// Serialized progress of a reachability fixpoint: the counters needed to
/// resume (or report) a run, next to which [`Snapshot::subspaces`] entry
/// holds the space reached so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachDump {
    /// Index into [`Snapshot::subspaces`] of the reached space.
    pub space: u32,
    /// Fixpoint iterations completed when the snapshot was taken.
    pub iterations: u64,
    /// Whether the fixpoint had converged.
    pub converged: bool,
    /// Garbage collections run so far.
    pub collections: u64,
    /// Nodes reclaimed so far.
    pub reclaimed_nodes: u64,
}

/// One spilled result-memo entry: the memo key (spec fingerprint + job
/// hash) and the result as an opaque blob the core crate encodes/decodes.
/// Keeping the value opaque here lets the job-output layout evolve inside
/// the core crate without this crate knowing job vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoEntry {
    /// The 128-bit memo key.
    pub key: u128,
    /// The encoded job output.
    pub value: Vec<u8>,
}

/// The root container every snapshot file holds: any subset of a TDD dump
/// (with subspaces and reachability progress resolved against it) and a
/// spilled result memo, stamped with the producing engine-spec's
/// fingerprint so a loader can refuse semantically foreign state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Free-form label ("table1 checkpoint", a family name, ...).
    pub label: String,
    /// The engine-spec fingerprint of the producing session, if it had
    /// one — loaders compare before trusting subspaces or memo entries.
    pub spec_fingerprint: Option<u128>,
    /// The serialized diagrams every other section's edges live in.
    pub tdd: Option<TddDump>,
    /// Persisted subspaces (initial spaces, computed images, ...).
    pub subspaces: Vec<SubspaceDump>,
    /// Reachability progress, when the snapshot checkpoints a fixpoint.
    pub reach: Option<ReachDump>,
    /// Spilled result-memo entries.
    pub memo: Vec<MemoEntry>,
}

impl Snapshot {
    /// A snapshot with just a label, ready to be filled in.
    pub fn new(label: impl Into<String>) -> Snapshot {
        Snapshot {
            label: label.into(),
            ..Snapshot::default()
        }
    }

    /// Encodes the snapshot as a complete file image (header, payload,
    /// checksum trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        encode_snapshot(self, &mut payload);
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 36);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv128(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a complete file image, verifying magic, version, length,
    /// and checksum before touching the payload.
    pub fn from_bytes(data: &[u8]) -> Result<Snapshot, StoreError> {
        let mut r = ByteReader::new(data);
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let len = r.get_u64()? as usize;
        if r.remaining() < len + 16 {
            return Err(StoreError::Truncated);
        }
        let payload = r.take(len)?;
        let declared = r.get_u128()?;
        if fnv128(payload) != declared {
            return Err(StoreError::ChecksumMismatch);
        }
        let mut pr = ByteReader::new(payload);
        let snap = decode_snapshot(&mut pr)?;
        if pr.remaining() != 0 {
            return Err(StoreError::Malformed(format!(
                "{} trailing payload bytes",
                pr.remaining()
            )));
        }
        Ok(snap)
    }

    /// Writes the snapshot to `path` (atomically enough for checkpoints:
    /// a temp file in the same directory, then a rename).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        let io_err = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        };
        let tmp = path.with_extension("qsnap.tmp");
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&self.to_bytes()).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        let path = path.as_ref();
        let io_err = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        };
        let mut f = std::fs::File::open(path).map_err(io_err)?;
        let mut data = Vec::new();
        f.read_to_end(&mut data).map_err(io_err)?;
        Snapshot::from_bytes(&data)
    }
}

// ----------------------------------------------------------------------
// Payload codec.
// ----------------------------------------------------------------------

fn encode_snapshot(s: &Snapshot, w: &mut ByteWriter) {
    w.put_str(&s.label);
    match s.spec_fingerprint {
        Some(fp) => {
            w.put_u8(1);
            w.put_u128(fp);
        }
        None => w.put_u8(0),
    }
    match &s.tdd {
        Some(d) => {
            w.put_u8(1);
            encode_tdd_dump(d, w);
        }
        None => w.put_u8(0),
    }
    w.put_u64(s.subspaces.len() as u64);
    for sub in &s.subspaces {
        w.put_u32(sub.n_qubits);
        w.put_u64(sub.basis.len() as u64);
        for &b in &sub.basis {
            w.put_u32(b);
        }
        w.put_u32(sub.projector);
    }
    match &s.reach {
        Some(r) => {
            w.put_u8(1);
            w.put_u32(r.space);
            w.put_u64(r.iterations);
            w.put_bool(r.converged);
            w.put_u64(r.collections);
            w.put_u64(r.reclaimed_nodes);
        }
        None => w.put_u8(0),
    }
    w.put_u64(s.memo.len() as u64);
    for e in &s.memo {
        w.put_u128(e.key);
        w.put_bytes(&e.value);
    }
}

fn decode_snapshot(r: &mut ByteReader<'_>) -> Result<Snapshot, StoreError> {
    let label = r.get_str()?;
    let spec_fingerprint = if r.get_u8()? != 0 {
        Some(r.get_u128()?)
    } else {
        None
    };
    let tdd = if r.get_u8()? != 0 {
        Some(decode_tdd_dump(r)?)
    } else {
        None
    };
    let n_subs = r.get_count(9)?;
    let mut subspaces = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let n_qubits = r.get_u32()?;
        let n_basis = r.get_count(4)?;
        let mut basis = Vec::with_capacity(n_basis);
        for _ in 0..n_basis {
            basis.push(r.get_u32()?);
        }
        let projector = r.get_u32()?;
        subspaces.push(SubspaceDump {
            n_qubits,
            basis,
            projector,
        });
    }
    let reach = if r.get_u8()? != 0 {
        Some(ReachDump {
            space: r.get_u32()?,
            iterations: r.get_u64()?,
            converged: r.get_bool()?,
            collections: r.get_u64()?,
            reclaimed_nodes: r.get_u64()?,
        })
    } else {
        None
    };
    let n_memo = r.get_count(24)?;
    let mut memo = Vec::with_capacity(n_memo);
    for _ in 0..n_memo {
        let key = r.get_u128()?;
        let value = r.get_bytes()?;
        memo.push(MemoEntry { key, value });
    }
    Ok(Snapshot {
        label,
        spec_fingerprint,
        tdd,
        subspaces,
        reach,
        memo,
    })
}

fn encode_edge(e: &DumpEdge, w: &mut ByteWriter) {
    w.put_u32(e.target);
    w.put_f64(e.weight.re);
    w.put_f64(e.weight.im);
}

fn decode_edge(r: &mut ByteReader<'_>) -> Result<DumpEdge, StoreError> {
    Ok(DumpEdge {
        target: r.get_u32()?,
        weight: Cplx::new(r.get_f64()?, r.get_f64()?),
    })
}

/// Encodes a [`TddDump`] into `w` — exposed so callers embedding dumps in
/// their own framing (e.g. bench checkpoints) share the layout.
pub fn encode_tdd_dump(d: &TddDump, w: &mut ByteWriter) {
    w.put_f64(d.tolerance);
    match &d.order {
        Some(order) => {
            w.put_u8(1);
            w.put_u64(order.len() as u64);
            for v in order {
                w.put_u32(v.0);
            }
        }
        None => w.put_u8(0),
    }
    w.put_u64(d.nodes.len() as u64);
    for n in &d.nodes {
        w.put_u32(n.var.0);
        encode_edge(&n.low, w);
        encode_edge(&n.high, w);
    }
    w.put_u64(d.roots.len() as u64);
    for e in &d.roots {
        encode_edge(e, w);
    }
}

/// Decodes a [`TddDump`] from `r` (the inverse of [`encode_tdd_dump`]).
pub fn decode_tdd_dump(r: &mut ByteReader<'_>) -> Result<TddDump, StoreError> {
    let tolerance = r.get_f64()?;
    let order = if r.get_u8()? != 0 {
        let n = r.get_count(4)?;
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push(Var(r.get_u32()?));
        }
        Some(order)
    } else {
        None
    };
    let n_nodes = r.get_count(44)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(DumpNode {
            var: Var(r.get_u32()?),
            low: decode_edge(r)?,
            high: decode_edge(r)?,
        });
    }
    let n_roots = r.get_count(20)?;
    let mut roots = Vec::with_capacity(n_roots);
    for _ in 0..n_roots {
        roots.push(decode_edge(r)?);
    }
    Ok(TddDump {
        tolerance,
        order,
        nodes,
        roots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            label: "unit".to_string(),
            spec_fingerprint: Some(0xdead_beef_0123_4567_89ab_cdef_0011_2233),
            tdd: Some(TddDump {
                tolerance: 1e-10,
                order: Some(vec![Var(2), Var(0), Var(1)]),
                nodes: vec![DumpNode {
                    var: Var(2),
                    low: DumpEdge {
                        target: 0,
                        weight: Cplx::new(1.0, 0.0),
                    },
                    high: DumpEdge {
                        target: 0,
                        weight: Cplx::new(-0.25, 0.125),
                    },
                }],
                roots: vec![DumpEdge {
                    target: 1,
                    weight: Cplx::new(0.5, -0.5),
                }],
            }),
            subspaces: vec![SubspaceDump {
                n_qubits: 3,
                basis: vec![0],
                projector: 0,
            }],
            reach: Some(ReachDump {
                space: 0,
                iterations: 7,
                converged: false,
                collections: 3,
                reclaimed_nodes: 1234,
            }),
            memo: vec![MemoEntry {
                key: 42,
                value: vec![1, 2, 3, 4],
            }],
        }
    }

    #[test]
    fn byte_round_trip_is_identity() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::new("empty");
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back, snap);
        assert!(back.tdd.is_none() && back.memo.is_empty());
    }

    #[test]
    fn f64_bit_patterns_survive_exactly() {
        let mut snap = Snapshot::new("bits");
        let tricky = f64::from_bits(0x3FF0_0000_0000_0001); // 1.0 + 1 ulp
        snap.tdd = Some(TddDump {
            tolerance: tricky,
            order: None,
            nodes: Vec::new(),
            roots: vec![DumpEdge {
                target: 0,
                weight: Cplx::new(tricky, -tricky),
            }],
        });
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let d = back.tdd.unwrap();
        assert_eq!(d.tolerance.to_bits(), tricky.to_bits());
        assert_eq!(d.roots[0].weight.re.to_bits(), tricky.to_bits());
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bytes), Err(StoreError::BadMagic));
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = sample_snapshot().to_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated | StoreError::BadMagic | StoreError::Malformed(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = sample_snapshot().to_bytes();
        let mid = 20 + (bytes.len() - 36) / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(StoreError::ChecksumMismatch)
        );
    }

    #[test]
    fn trailing_garbage_inside_payload_is_malformed() {
        // Re-frame a valid payload with one extra byte, checksummed, so
        // the structural check (not the checksum) must catch it.
        let snap = sample_snapshot();
        let mut payload = ByteWriter::new();
        encode_snapshot(&snap, &mut payload);
        let mut payload = payload.into_bytes();
        payload.push(0xEE);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv128(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        // A payload claiming u64::MAX memo entries must be rejected by the
        // count bound, not attempted.
        let mut payload = ByteWriter::new();
        payload.put_str("evil");
        payload.put_u8(0); // no fingerprint
        payload.put_u8(0); // no tdd
        payload.put_u64(u64::MAX); // subspace count
        let payload = payload.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv128(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        // Keep unit-test files under the build directory.
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/store-unit-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.qsnap");
        let snap = sample_snapshot();
        snap.write_to(&path).expect("write");
        let back = Snapshot::read_from(&path).expect("read");
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Snapshot::read_from("/does/not/exist.qsnap").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    #[test]
    fn fnv_is_stable() {
        // The checksum constants are part of the format: pin them.
        assert_eq!(fnv128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }
}
