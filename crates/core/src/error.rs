//! The crate's typed error: failures are values, not panics.
//!
//! Every fallible entry point of the engine-facing API —
//! [`crate::Engine`]'s methods, [`crate::try_image`],
//! [`crate::mc::try_reachable_space`], the `try_*` equivalence checkers —
//! returns `Result<_, QitsError>`. The historical free functions
//! ([`crate::image`], [`crate::mc::reachable_space`]) remain as thin shims
//! that panic on these same conditions with the error's `Display` text, so
//! legacy call sites keep their signatures while the conditions themselves
//! are detected in **release builds** too (they used to be `debug_assert`s
//! or silent acceptance).

use std::fmt;

/// Everything that can go wrong when driving image computation through
/// the public API.
///
/// The variants mirror the validation points of the paper's machinery:
/// register agreement between operations and subspaces (Definition 2
/// requires every `T_sigma` to act on the system's Hilbert space), Kraus
/// sets being non-empty (a quantum operation has at least one operator),
/// slice counts staying addressable, and the parallel addition partition's
/// worker threads finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QitsError {
    /// An operation or state acts on a different register width than the
    /// system it was handed to.
    RegisterMismatch {
        /// Register width of the system (qubits).
        expected: u32,
        /// Register width actually found.
        found: u32,
        /// What carried the mismatched width (operation label, input
        /// subspace, ...).
        context: String,
    },
    /// The transition system has no operations, so no image exists.
    EmptyOperationSet,
    /// An operation's Kraus set is empty — not a quantum operation.
    EmptyKrausSet {
        /// Label of the offending operation.
        label: String,
    },
    /// A system on zero qubits has no state space to compute images in.
    ZeroQubitSystem,
    /// A partition parameter would index more than `usize::BITS` worth of
    /// slices/states: `2^bits` overflows the machine word.
    DimensionOverflow {
        /// The bit count that overflowed (e.g. the addition partition's
        /// `k`).
        bits: u32,
    },
    /// The manager's node store hit its configured capacity
    /// ([`qits_tdd::TddManager::set_node_capacity`]) and collection freed
    /// nothing. The computation that hit the bound is abandoned (there is
    /// no partial diagram to return) but the session and everything built
    /// before the call remain valid.
    ArenaExhausted {
        /// Slots allocated when the store filled (terminal included).
        allocated: usize,
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// A worker thread of the parallel addition partition panicked.
    WorkerFailure {
        /// The worker's panic message, when it carried one.
        detail: String,
    },
    /// A job submitted to an [`crate::EnginePool`] panicked inside its
    /// worker, or its worker died before delivering a result. The failure
    /// is isolated to the one job: the worker rebuilds its engine from the
    /// pool spec and keeps serving, so the pool is never poisoned.
    JobFailure {
        /// The job's panic message, when it carried one.
        detail: String,
    },
    /// Admission refused: the pool's bounded queue (see
    /// [`crate::PoolBuilder::queue_depth`]) already holds `depth` pending
    /// jobs. This is backpressure, not failure — nothing was enqueued;
    /// retry after draining a ticket or shed the request.
    QueueFull {
        /// The configured admission bound that was hit.
        depth: usize,
    },
    /// The job's [`qits_tdd::CancelToken`] was tripped: either before a
    /// worker picked the job up (shed at dequeue) or mid-run, in which
    /// case the computation unwound at the next GC safepoint (see
    /// [`qits_tdd::cancel`]). The worker session survives unpoisoned.
    Cancelled,
    /// The job's deadline passed before a worker started it, so it was
    /// shed at dequeue without running.
    DeadlineExpired,
    /// A snapshot file could not be read or written.
    StoreIo {
        /// The path involved.
        path: String,
        /// The OS-level detail.
        detail: String,
    },
    /// A snapshot file failed validation: bad magic, failed checksum,
    /// truncation, or a malformed payload. The file is rejected whole —
    /// there is no partial restore.
    StoreCorrupt {
        /// What exactly failed to parse or verify.
        detail: String,
    },
    /// A snapshot file carries a format version this build does not
    /// speak. Older readers refuse newer files rather than misparse them.
    StoreVersion {
        /// The version found in the file header.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// A snapshot was produced by a different engine spec than the one
    /// trying to warm-start from it, so its subspaces and memo entries
    /// describe a different system.
    StoreSpecMismatch {
        /// Fingerprint of the spec doing the loading.
        expected: u128,
        /// Fingerprint recorded in the snapshot.
        found: u128,
    },
    /// A snapshot's memo entries could not be preloaded because the pool
    /// was built without a result memo (see
    /// [`crate::PoolBuilder::memo_capacity`]).
    StoreMemoUnavailable,
}

impl fmt::Display for QitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QitsError::RegisterMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "register mismatch: {context} is on {found} qubit(s), \
                 the system on {expected}"
            ),
            QitsError::EmptyOperationSet => {
                write!(f, "the transition system has no operations")
            }
            QitsError::EmptyKrausSet { label } => {
                write!(f, "operation '{label}' has an empty Kraus set")
            }
            QitsError::ZeroQubitSystem => {
                write!(f, "a zero-qubit system has no state space")
            }
            QitsError::DimensionOverflow { bits } => {
                write!(
                    f,
                    "2^{bits} overflows the machine word (dimension overflow)"
                )
            }
            QitsError::ArenaExhausted {
                allocated,
                capacity,
            } => {
                write!(
                    f,
                    "node arena exhausted: {allocated} slots allocated of capacity {capacity}"
                )
            }
            QitsError::WorkerFailure { detail } => {
                write!(f, "an image-computation worker thread failed: {detail}")
            }
            QitsError::JobFailure { detail } => {
                write!(f, "a pool job failed in its worker: {detail}")
            }
            QitsError::QueueFull { depth } => {
                write!(f, "the pool queue is full ({depth} jobs pending)")
            }
            QitsError::Cancelled => {
                write!(f, "the job was cancelled")
            }
            QitsError::DeadlineExpired => {
                write!(f, "the job's deadline expired before it ran")
            }
            QitsError::StoreIo { path, detail } => {
                write!(f, "snapshot i/o failed for '{path}': {detail}")
            }
            QitsError::StoreCorrupt { detail } => {
                write!(f, "snapshot rejected as corrupt: {detail}")
            }
            QitsError::StoreVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is newer than this \
                     build supports (max {supported})"
                )
            }
            QitsError::StoreSpecMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot spec fingerprint {found:#034x} does not match \
                     this engine's {expected:#034x}"
                )
            }
            QitsError::StoreMemoUnavailable => {
                write!(
                    f,
                    "snapshot carries memo entries but the pool has no \
                     result memo to preload them into"
                )
            }
        }
    }
}

impl std::error::Error for QitsError {}

impl From<qits_store::StoreError> for QitsError {
    fn from(e: qits_store::StoreError) -> Self {
        use qits_store::StoreError;
        match e {
            StoreError::Io { path, detail } => QitsError::StoreIo { path, detail },
            StoreError::UnsupportedVersion { found, supported } => {
                QitsError::StoreVersion { found, supported }
            }
            other => QitsError::StoreCorrupt {
                detail: other.to_string(),
            },
        }
    }
}

impl From<qits_tdd::DumpError> for QitsError {
    fn from(e: qits_tdd::DumpError) -> Self {
        QitsError::StoreCorrupt {
            detail: e.to_string(),
        }
    }
}

/// Extracts a human-readable message from a worker thread's panic payload.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked without a message".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(QitsError, &str)> = vec![
            (
                QitsError::RegisterMismatch {
                    expected: 3,
                    found: 2,
                    context: "operation 'op'".into(),
                },
                "register mismatch",
            ),
            (QitsError::EmptyOperationSet, "no operations"),
            (
                QitsError::EmptyKrausSet { label: "T".into() },
                "empty Kraus set",
            ),
            (QitsError::ZeroQubitSystem, "zero-qubit"),
            (QitsError::DimensionOverflow { bits: 70 }, "2^70"),
            (
                QitsError::ArenaExhausted {
                    allocated: 64,
                    capacity: 64,
                },
                "exhausted",
            ),
            (
                QitsError::WorkerFailure {
                    detail: "boom".into(),
                },
                "boom",
            ),
            (
                QitsError::JobFailure {
                    detail: "job exploded".into(),
                },
                "job exploded",
            ),
            (QitsError::QueueFull { depth: 8 }, "8 jobs pending"),
            (QitsError::Cancelled, "cancelled"),
            (QitsError::DeadlineExpired, "deadline expired"),
            (
                QitsError::StoreIo {
                    path: "x.qsnap".into(),
                    detail: "denied".into(),
                },
                "x.qsnap",
            ),
            (
                QitsError::StoreCorrupt {
                    detail: "bad magic".into(),
                },
                "bad magic",
            ),
            (
                QitsError::StoreVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                QitsError::StoreSpecMismatch {
                    expected: 1,
                    found: 2,
                },
                "fingerprint",
            ),
            (QitsError::StoreMemoUnavailable, "memo to preload"),
        ];
        for (e, needle) in cases {
            let text = e.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn panic_detail_downcasts_both_string_kinds() {
        let a: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_detail(a.as_ref()), "static str");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_detail(b.as_ref()), "owned");
        let c: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert!(panic_detail(c.as_ref()).contains("without a message"));
    }
}
