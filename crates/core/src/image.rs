//! Image computation: the basic algorithm and the two partition schemes.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use qits_circuit::Operation;
use qits_tdd::{CacheStats, Edge, EdgeHolder, TddManager};
use qits_tensor::{Var, VarSet};
use qits_tensornet::{
    block_keep_vars, contract_network, contraction_blocks, InteractionGraph, NetTensor,
    TensorNetwork,
};

use crate::error::{panic_detail, QitsError};
use crate::subspace::Subspace;

/// Which image-computation method to run (the three columns of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1: contract each Kraus circuit into one monolithic
    /// operator TDD, then apply it to every basis state.
    Basic,
    /// Addition partition (Section V-A): slice the tensor network at its
    /// `k` highest-degree indices, contract each of the `2^k` slices to an
    /// operator, and sum the per-slice images. `k = 1` reproduces the
    /// paper's Table I setting (two parts).
    Addition {
        /// Number of indices to slice.
        k: usize,
    },
    /// Contraction partition (Section V-B): pre-contract the blocks of the
    /// `(k1, k2)` circuit cut, then contract them against each basis state
    /// in sequence — the monolithic operator is never built.
    Contraction {
        /// Maximum qubits per horizontal band.
        k1: u32,
        /// Crossing multi-qubit gates per vertical segment.
        k2: u32,
    },
    /// The addition partition with its `2^k` slices contracted on worker
    /// threads — the parallelisation the paper points out the scheme
    /// admits ("contractions of different parts can be done in parallel").
    /// Each worker owns a private [`TddManager`]; results are imported
    /// back and summed.
    AdditionParallel {
        /// Number of indices to slice (one thread per slice).
        k: usize,
    },
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Basic => write!(f, "basic"),
            Strategy::Addition { k } => write!(f, "addition(k={k})"),
            Strategy::Contraction { k1, k2 } => write!(f, "contraction(k1={k1},k2={k2})"),
            Strategy::AdditionParallel { k } => write!(f, "addition-parallel(k={k})"),
        }
    }
}

/// Measurements of one image computation — the quantities Table I reports,
/// plus the operation-cache movement behind them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImageStats {
    /// Peak **live** node count over every TDD produced ("max #node") —
    /// per-diagram reachable nodes, never arena slots.
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Number of Kraus branches processed across all operations.
    pub branches: usize,
    /// Dimension of the computed image.
    pub output_dim: usize,
    /// Nodes still live when the computation finished: everything
    /// reachable from the input and output subspaces (and any registered
    /// GC roots).
    pub live_nodes: usize,
    /// Arena slots allocated in the main manager when the computation
    /// finished — live nodes plus uncollected garbage.
    pub allocated_nodes: usize,
    /// Arena high-water mark of the main manager when the computation
    /// finished ([`qits_tdd::ManagerStats::peak_arena`]). A lifetime
    /// counter of the manager, so only comparable across runs on fresh
    /// managers — where it is exactly the quantity in-image safepoint
    /// collections exist to keep down.
    pub peak_arena: usize,
    /// Nodes reclaimed by garbage collections during this computation
    /// (worker managers of the parallel strategies included).
    pub reclaimed_nodes: u64,
    /// GC safepoints polled during this computation: between addition
    /// slices, between contraction blocks, after each Gram–Schmidt
    /// residual, and between worker state applications (worker managers of
    /// the parallel strategies included).
    pub safepoints: u64,
    /// Safepoint polls that actually collected.
    pub safepoint_collections: u64,
    /// Nodes reclaimed by in-image safepoint collections on the main
    /// manager (the serial strategies' reclaim; worker reclaim is in
    /// [`ImageStats::reclaimed_nodes`]).
    pub safepoint_reclaimed: u64,
    /// Contraction-cache movement across this computation (worker managers
    /// of the parallel strategies included).
    pub cont_cache: CacheStats,
    /// Addition-cache movement across this computation.
    pub add_cache: CacheStats,
    /// Median Robin Hood probe length of the unique-table lookups this
    /// computation issued on the main manager.
    pub probe_p50: u32,
    /// 99th-percentile probe length of the same lookups.
    pub probe_p99: u32,
    /// Stale (tombstoned) Robin Hood index cells in the main manager's
    /// unique table when the computation finished — an end-of-run
    /// snapshot, like [`ImageStats::allocated_nodes`].
    pub tombstones: usize,
    /// Index cells allocated at the same moment — the denominator that
    /// turns [`ImageStats::tombstones`] into a load ratio (the rehash
    /// trigger keeps `live + tombstones` at or below 3/4 of this).
    pub index_cells: usize,
    /// Slot generations bumped by sweeps during this computation on the
    /// main manager (one per reclaimed node).
    pub generation_bumps: u64,
    /// Unique-table hits on a swept slot's key during this computation —
    /// each one is a dead node detected by its generation instead of a
    /// dangling read.
    pub stale_handle_hits: u64,
    /// Nanoseconds the main manager spent inside mark/sweep during this
    /// computation (GC pause time).
    pub gc_nanos: u64,
    /// Adjacent-level variable swaps performed by dynamic-reordering
    /// passes on the main manager during this computation (zero unless
    /// the GC policy schedules reordering — see
    /// [`qits_tdd::ReorderPolicy`]).
    pub swaps: u64,
    /// Full sifting passes ([`qits_tdd::TddManager::sift_all`]) the
    /// reordering schedule ran on the main manager during this
    /// computation.
    pub sift_passes: u64,
}

impl ImageStats {
    /// Contraction-cache hit rate in `[0, 1]` — the headline reuse metric:
    /// the contraction partition wins precisely when repeated
    /// block-against-state contractions share structure.
    pub fn cont_hit_rate(&self) -> f64 {
        self.cont_cache.hit_rate()
    }

    /// Merges the stats of another image computation into this aggregate,
    /// for per-worker/per-session rollups ([`crate::PoolStats`] sums every
    /// image a pool worker ran this way).
    ///
    /// Counters (`branches`, `elapsed`, safepoint and reclaim totals,
    /// cache movement) **sum**; high-water marks (`max_nodes`,
    /// `peak_arena`) take the **max**; end-of-run snapshots
    /// (`output_dim`, `live_nodes`, `allocated_nodes`) take the **later**
    /// value, so an aggregate reads like one long computation.
    pub fn absorb(&mut self, other: &ImageStats) {
        self.max_nodes = self.max_nodes.max(other.max_nodes);
        self.elapsed += other.elapsed;
        self.branches += other.branches;
        self.output_dim = other.output_dim;
        self.live_nodes = other.live_nodes;
        self.allocated_nodes = other.allocated_nodes;
        self.peak_arena = self.peak_arena.max(other.peak_arena);
        self.reclaimed_nodes += other.reclaimed_nodes;
        self.safepoints += other.safepoints;
        self.safepoint_collections += other.safepoint_collections;
        self.safepoint_reclaimed += other.safepoint_reclaimed;
        self.cont_cache.absorb(&other.cont_cache);
        self.add_cache.absorb(&other.add_cache);
        self.probe_p50 = self.probe_p50.max(other.probe_p50);
        self.probe_p99 = self.probe_p99.max(other.probe_p99);
        self.tombstones = other.tombstones;
        self.index_cells = other.index_cells;
        self.generation_bumps += other.generation_bumps;
        self.stale_handle_hits += other.stale_handle_hits;
        self.gc_nanos += other.gc_nanos;
        self.swaps += other.swaps;
        self.sift_passes += other.sift_passes;
    }
}

/// Polls an in-image GC safepoint: at this point of a serial strategy,
/// `holders` are exactly the structures that must survive — the input and
/// output subspaces, the network's gate tensors, and the operator/block
/// tensors built so far. Everything else in the arena is garbage a
/// collection may sweep.
fn safepoint(m: &mut TddManager, stats: &mut ImageStats, holders: &[&dyn EdgeHolder]) {
    let before = m.stats().nodes_reclaimed;
    if let Some(out) = m.maybe_collect_at_safepoint(holders) {
        stats.safepoint_reclaimed += out.reclaimed as u64;
    } else {
        // A poll that only ran an installment of a pending incremental
        // sweep: count its reclaim as safepoint work too.
        stats.safepoint_reclaimed += m.stats().nodes_reclaimed - before;
    }
}

/// Computes the image `T(S)` of subspace `input` under the given
/// operations, with the chosen strategy.
///
/// Every Kraus branch `E` of every operation is applied to every basis
/// state `|psi>` of `input`; the results are joined with the symbolic
/// Gram–Schmidt procedure. This realises Algorithm 1 of the paper, with
/// the operator-application step swapped per strategy.
///
/// # Garbage collection
///
/// The three serial strategies poll **GC safepoints** mid-call — between
/// addition-partition slices, between contraction-partition blocks, and
/// after every Gram–Schmidt residual of the output's basis extension. If
/// the manager has a [`qits_tdd::GcPolicy`] installed and the policy asks
/// for it, a safepoint sweeps everything not reachable from the
/// strategy's live set (the input, the output so far, the network's gate
/// tensors, and the operator/block tensors), so the node store stays
/// pinned to the live set *inside* one `image()` call instead of growing
/// for its whole duration. Collection never moves a node, so `input` is
/// read-only: its edges are bit-identical before, during, and after the
/// call. With no policy installed (the default) no safepoint ever
/// collects and the call behaves exactly as before.
///
/// Callers holding **other** long-lived diagrams on the same manager
/// (another subspace, a transition system whose initial subspace is not
/// the input) must keep them rooted across the call with
/// [`qits_tdd::TddManager::protect`] — anything unrooted is swept by the
/// first safepoint collection and becomes detectably stale. The fixpoint
/// drivers in [`crate::mc`] and the [`crate::Engine`] facade do exactly
/// that; the engine is the intended way to drive this kernel.
///
/// # Errors
///
/// Returns [`QitsError::ZeroQubitSystem`] for an empty register,
/// [`QitsError::EmptyOperationSet`] when `operations` is empty,
/// [`QitsError::RegisterMismatch`] when any operation's width differs
/// from the input's (checked in release builds — this used to be a
/// `debug_assert`), [`QitsError::EmptyKrausSet`] for an operation with
/// zero Kraus operators, [`QitsError::DimensionOverflow`] when an
/// addition partition's `k` cannot index its `2^k` slices, and
/// [`QitsError::WorkerFailure`] when a parallel worker thread panics.
pub fn try_image(
    m: &mut TddManager,
    operations: &[Operation],
    input: &Subspace,
    strategy: Strategy,
) -> Result<(Subspace, ImageStats), QitsError> {
    let n = input.n_qubits();
    if n == 0 {
        return Err(QitsError::ZeroQubitSystem);
    }
    if operations.is_empty() {
        return Err(QitsError::EmptyOperationSet);
    }
    for op in operations {
        if op.n_qubits() != n {
            return Err(QitsError::RegisterMismatch {
                expected: n,
                found: op.n_qubits(),
                context: format!("operation '{}'", op.label()),
            });
        }
        if op.branch_count() == 0 {
            return Err(QitsError::EmptyKrausSet {
                label: op.label().to_string(),
            });
        }
    }
    if let Strategy::Addition { k } | Strategy::AdditionParallel { k } = strategy {
        if k >= usize::BITS as usize {
            return Err(QitsError::DimensionOverflow { bits: k as u32 });
        }
    }
    let start = Instant::now();
    let manager_before = m.stats();
    let mut out = Subspace::zero(n);
    let mut stats = ImageStats::default();

    for (op_i, op) in operations.iter().enumerate() {
        let branches = op.kraus_branches();
        let n_branches = branches.len();
        for (b_i, branch) in branches.into_iter().enumerate() {
            // After the very last Gram–Schmidt residual of the very last
            // branch nothing runs that could benefit from a collection,
            // so that one per-state poll is skipped (the worker loop in
            // `run_addition_workers` does the same).
            let final_branch = op_i + 1 == operations.len() && b_i + 1 == n_branches;
            stats.branches += 1;
            let net = TensorNetwork::from_circuit(m, &branch);
            match strategy {
                Strategy::Basic => {
                    let whole = contract_network(m, net.tensors(), &net.external_vars());
                    stats.max_nodes = stats.max_nodes.max(whole.max_nodes);
                    let op_tensor = NetTensor {
                        edge: whole.edge,
                        vars: net.external_vars(),
                    };
                    for i in 0..input.dim() {
                        let psi = input.basis()[i];
                        let (phi, peak) =
                            apply_tensors(m, std::slice::from_ref(&op_tensor), &net, psi);
                        stats.max_nodes = stats.max_nodes.max(peak);
                        out.absorb(m, phi);
                        if !(final_branch && i + 1 == input.dim()) {
                            safepoint(m, &mut stats, &[input, &out, &op_tensor, &net]);
                        }
                    }
                }
                Strategy::Addition { k } => {
                    let graph = InteractionGraph::of(&net);
                    let cut_vars = graph.highest_degree_vars(k);
                    let k = cut_vars.len();
                    let mut op_tensors: Vec<NetTensor> = Vec::with_capacity(1 << k);
                    for bits in 0..(1usize << k) {
                        let cuts: Vec<(Var, bool)> = cut_vars
                            .iter()
                            .enumerate()
                            .map(|(i, &v)| (v, (bits >> (k - 1 - i)) & 1 == 1))
                            .collect();
                        // Slice lazily, one part at a time, so the
                        // between-slice safepoint has nothing pending to
                        // protect beyond the parts already contracted.
                        let sliced = net.slice_all(m, &cuts);
                        let part = contract_network(m, sliced.tensors(), &net.external_vars());
                        drop(sliced);
                        stats.max_nodes = stats.max_nodes.max(part.max_nodes);
                        op_tensors.push(NetTensor {
                            edge: part.edge,
                            vars: net.external_vars(),
                        });
                        safepoint(m, &mut stats, &[input, &out, &op_tensors, &net]);
                    }
                    for i in 0..input.dim() {
                        let psi = input.basis()[i];
                        let mut total = Edge::ZERO;
                        for part in &op_tensors {
                            let (phi, peak) =
                                apply_tensors(m, std::slice::from_ref(part), &net, psi);
                            stats.max_nodes = stats.max_nodes.max(peak);
                            total = m.add(total, phi);
                            stats.max_nodes = stats.max_nodes.max(m.node_count(total));
                        }
                        out.absorb(m, total);
                        if !(final_branch && i + 1 == input.dim()) {
                            safepoint(m, &mut stats, &[input, &out, &op_tensors, &net]);
                        }
                    }
                }
                Strategy::Contraction { k1, k2 } => {
                    let blocks = contraction_blocks(&branch, k1, k2);
                    let keeps = block_keep_vars(&net, &blocks);
                    let mut block_tensors: Vec<NetTensor> = Vec::with_capacity(blocks.blocks.len());
                    for (block, keep) in blocks.blocks.iter().zip(keeps) {
                        let members: Vec<NetTensor> =
                            block.iter().map(|&gi| net.tensors()[gi].clone()).collect();
                        let outcome = contract_network(m, &members, &keep);
                        drop(members);
                        stats.max_nodes = stats.max_nodes.max(outcome.max_nodes);
                        block_tensors.push(NetTensor {
                            edge: outcome.edge,
                            vars: keep,
                        });
                        safepoint(m, &mut stats, &[input, &out, &block_tensors, &net]);
                    }
                    for i in 0..input.dim() {
                        let psi = input.basis()[i];
                        let (phi, peak) = apply_tensors(m, &block_tensors, &net, psi);
                        stats.max_nodes = stats.max_nodes.max(peak);
                        out.absorb(m, phi);
                        if !(final_branch && i + 1 == input.dim()) {
                            safepoint(m, &mut stats, &[input, &out, &block_tensors, &net]);
                        }
                    }
                }
                Strategy::AdditionParallel { k } => {
                    let graph = InteractionGraph::of(&net);
                    let cut_vars = graph.highest_degree_vars(k);
                    let psis: Vec<Edge> = input.basis().to_vec();
                    let worker_out = run_addition_workers(m, &branch, &cut_vars, &psis)?;
                    // Worker managers start from zero, so their lifetime
                    // counters are exactly this branch's movement.
                    for (local, _, _) in &worker_out {
                        let ws = local.stats();
                        stats.cont_cache.absorb(&ws.cont_cache);
                        stats.add_cache.absorb(&ws.add_cache);
                        stats.reclaimed_nodes += ws.nodes_reclaimed;
                        stats.safepoints += ws.safepoints_polled;
                        stats.safepoint_collections += ws.safepoint_collections;
                    }
                    for i in 0..psis.len() {
                        let mut total = Edge::ZERO;
                        for (local, phis, peak) in &worker_out {
                            let phi = m.import(local, phis[i]);
                            total = m.add(total, phi);
                            stats.max_nodes = stats.max_nodes.max(*peak);
                            stats.max_nodes = stats.max_nodes.max(m.node_count(total));
                        }
                        out.absorb(m, total);
                    }
                }
            }
        }
    }

    let moved = m.stats().since(&manager_before);
    stats.cont_cache.absorb(&moved.cont_cache);
    stats.add_cache.absorb(&moved.add_cache);
    stats.reclaimed_nodes += moved.nodes_reclaimed;
    stats.safepoints += moved.safepoints_polled;
    stats.safepoint_collections += moved.safepoint_collections;
    stats.output_dim = out.dim();
    // Live-vs-allocated accounting: the live set is what a collection run
    // right now would keep (input + output + registered roots); the arena
    // additionally holds every uncollected intermediate.
    let mut live_edges: Vec<Edge> = Vec::with_capacity(input.dim() + out.dim() + 2);
    live_edges.extend_from_slice(input.basis());
    live_edges.push(input.projector());
    live_edges.extend_from_slice(out.basis());
    live_edges.push(out.projector());
    stats.live_nodes = m.live_node_count(&live_edges);
    stats.allocated_nodes = m.arena_len();
    stats.peak_arena = m.stats().peak_arena;
    // Unique-table health over this computation: probe lengths of the
    // lookups it issued, plus the generational churn its collections
    // caused.
    stats.probe_p50 = moved.probe_hist.p50();
    stats.probe_p99 = moved.probe_hist.p99();
    stats.tombstones = m.stats().tombstones;
    stats.index_cells = m.stats().index_cells;
    stats.generation_bumps = moved.generation_bumps;
    stats.stale_handle_hits = moved.stale_handle_hits;
    stats.gc_nanos = moved.gc_nanos;
    stats.swaps = moved.swaps;
    stats.sift_passes = moved.sift_passes;
    stats.elapsed = start.elapsed();
    Ok((out, stats))
}

/// Infallible shim over [`try_image`], kept as the strategy-agreement
/// test baseline and for legacy call sites.
///
/// # Panics
///
/// Panics — in release builds too — on every condition [`try_image`]
/// reports as a [`QitsError`] (register mismatch, empty operation or
/// Kraus set, zero-qubit register, slice-count overflow, worker failure).
/// Fallible callers should use [`try_image`] or [`crate::Engine`].
pub fn image(
    m: &mut TddManager,
    operations: &[Operation],
    input: &Subspace,
    strategy: Strategy,
) -> (Subspace, ImageStats) {
    try_image(m, operations, input, strategy).unwrap_or_else(|e| panic!("image(): {e}"))
}

/// Contracts the `2^k` slices of the addition partition on worker
/// threads, one private manager each, and applies every slice operator to
/// every basis state. Returns per-worker `(manager, images, peak nodes)`;
/// the caller imports and sums. A panicking worker surfaces as
/// [`QitsError::WorkerFailure`] carrying its panic message.
fn run_addition_workers(
    m: &TddManager,
    branch: &qits_circuit::Circuit,
    cut_vars: &[Var],
    psis: &[Edge],
) -> Result<Vec<(TddManager, Vec<Edge>, usize)>, QitsError> {
    let k = cut_vars.len();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..(1usize << k))
            .map(|bits| {
                scope.spawn(move || {
                    let mut local = TddManager::new();
                    // Workers inherit the main manager's GC policy: a
                    // worker owns its entire live set, so collecting
                    // between state applications is always root-safe.
                    local.set_gc_policy(m.gc_policy());
                    let net = TensorNetwork::from_circuit(&mut local, branch);
                    let cuts: Vec<(Var, bool)> = cut_vars
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, (bits >> (k - 1 - i)) & 1 == 1))
                        .collect();
                    let sliced = net.slice_all(&mut local, &cuts);
                    let part = contract_network(&mut local, sliced.tensors(), &net.external_vars());
                    let mut peak = part.max_nodes;
                    let op_tensor = NetTensor {
                        edge: part.edge,
                        vars: net.external_vars(),
                    };
                    let mut phis: Vec<Edge> = Vec::with_capacity(psis.len());
                    for (i, &psi_main) in psis.iter().enumerate() {
                        let psi = local.import(m, psi_main);
                        let (phi, p) =
                            apply_tensors(&mut local, std::slice::from_ref(&op_tensor), &net, psi);
                        peak = peak.max(p);
                        phis.push(phi);
                        // Safepoint between state applications: the live
                        // set is the slice operator, the network's gate
                        // tensors, and the images computed so far. Skip
                        // the poll after the last state — the worker
                        // returns right away and the compaction would buy
                        // nothing.
                        if i + 1 < psis.len() {
                            local.maybe_collect_at_safepoint(&[&op_tensor, &net, &phis]);
                        }
                    }
                    (local, phis, peak)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|payload| QitsError::WorkerFailure {
                    detail: panic_detail(payload.as_ref()),
                })
            })
            .collect()
    })
}

/// Applies a list of operator tensors to a ket: contracts
/// `[psi, t_1, ..., t_k]` keeping the circuit outputs, then renames the
/// outputs back to ket variables. Returns the image ket and the peak node
/// count.
fn apply_tensors(
    m: &mut TddManager,
    tensors: &[NetTensor],
    net: &TensorNetwork,
    psi: Edge,
) -> (Edge, usize) {
    let n = net.n_qubits();
    let mut list = Vec::with_capacity(tensors.len() + 1);
    list.push(NetTensor {
        edge: psi,
        vars: VarSet::from_iter(net.in_vars()),
    });
    list.extend_from_slice(tensors);
    let keep: VarSet = VarSet::from_iter(net.out_vars());
    let outcome = contract_network(m, &list, &keep);
    let map: BTreeMap<Var, Var> = (0..n)
        .filter(|&q| net.out_var(q) != net.in_var(q))
        .map(|q| (net.out_var(q), Var::ket(q)))
        .collect();
    let ket = m.rename_monotone(outcome.edge, &map);
    (ket, outcome.max_nodes.max(m.node_count(ket)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::{generators, sim};
    use qits_num::linalg;
    use qits_num::Cplx;
    use qits_tdd::GcPolicy;

    use crate::qts::QuantumTransitionSystem;

    const STRATEGIES: [Strategy; 5] = [
        Strategy::Basic,
        Strategy::Addition { k: 1 },
        Strategy::Addition { k: 2 },
        Strategy::Contraction { k1: 2, k2: 2 },
        Strategy::AdditionParallel { k: 2 },
    ];

    /// Dense reference image: apply every Kraus matrix to every basis
    /// vector, Gram–Schmidt the lot.
    fn dense_image(m: &mut TddManager, ops: &[Operation], input: &Subspace) -> Vec<Vec<Cplx>> {
        let n = input.n_qubits();
        let vars = Subspace::ket_vars(n);
        let mut vectors = Vec::new();
        for op in ops {
            for k in sim::operation_kraus_matrices(op) {
                for &psi in input.basis() {
                    let dense_psi: Vec<Cplx> = (0..(1usize << n))
                        .map(|i| {
                            let asn: BTreeMap<Var, bool> = vars
                                .iter()
                                .enumerate()
                                .map(|(q, &v)| (v, (i >> (n as usize - 1 - q)) & 1 == 1))
                                .collect();
                            m.eval(psi, &asn)
                        })
                        .collect();
                    vectors.push(k.matvec(&dense_psi));
                }
            }
        }
        linalg::gram_schmidt(&vectors)
    }

    fn check_image_matches_dense(spec: &generators::QtsSpec, strategy: Strategy) {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, spec);
        let (img, stats) = image(&mut m, qts.operations(), qts.initial(), strategy);
        let expect = dense_image(&mut m, qts.operations(), qts.initial());
        assert_eq!(
            img.dim(),
            expect.len(),
            "{}: dimension mismatch with dense oracle ({strategy})",
            spec.name
        );
        // Every symbolic basis vector must lie in the dense span.
        let n = qts.n_qubits();
        let vars = Subspace::ket_vars(n);
        for &b in img.basis() {
            let dense_b: Vec<Cplx> = (0..(1usize << n))
                .map(|i| {
                    let asn: BTreeMap<Var, bool> = vars
                        .iter()
                        .enumerate()
                        .map(|(q, &v)| (v, (i >> (n as usize - 1 - q)) & 1 == 1))
                        .collect();
                    m.eval(b, &asn)
                })
                .collect();
            assert!(
                linalg::in_span(&expect, &dense_b),
                "{}: symbolic image vector outside dense image ({strategy})",
                spec.name
            );
        }
        assert!(stats.max_nodes > 0);
        assert!(stats.branches > 0);
    }

    #[test]
    fn ghz_image_matches_dense_all_strategies() {
        for s in STRATEGIES {
            check_image_matches_dense(&generators::ghz(4), s);
        }
    }

    #[test]
    fn grover_image_matches_dense_all_strategies() {
        for s in STRATEGIES {
            check_image_matches_dense(&generators::grover(3), s);
        }
    }

    #[test]
    fn qft_image_matches_dense_all_strategies() {
        for s in STRATEGIES {
            check_image_matches_dense(&generators::qft(3), s);
        }
    }

    #[test]
    fn bv_image_matches_dense_all_strategies() {
        for s in STRATEGIES {
            check_image_matches_dense(&generators::bernstein_vazirani(4, &[true, false, true]), s);
        }
    }

    #[test]
    fn qrw_image_matches_dense_all_strategies() {
        for s in STRATEGIES {
            check_image_matches_dense(&generators::qrw(3, 0.2), s);
        }
    }

    #[test]
    fn bitflip_image_matches_dense_all_strategies() {
        for s in STRATEGIES {
            check_image_matches_dense(&generators::bitflip_code(), s);
        }
    }

    #[test]
    fn grover_invariant_subspace() {
        // T(S) = S for S = span{|++->, |11->} (Section III-A.1).
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        for s in STRATEGIES {
            let (img, _) = image(&mut m, qts.operations(), qts.initial(), s);
            assert!(img.equals(&mut m, qts.initial()), "strategy {s}");
        }
    }

    #[test]
    fn strategies_agree_pairwise() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(4, 0.3));
        let mut images: Vec<Subspace> = Vec::new();
        for &s in STRATEGIES.iter() {
            images.push(image(&mut m, qts.operations(), qts.initial(), s).0);
        }
        for w in images.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(a.clone().equals(&mut m, b));
        }
    }

    #[test]
    fn image_of_zero_subspace_is_zero() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
        let zero = Subspace::zero(3);
        let (img, stats) = image(&mut m, qts.operations(), &zero, Strategy::Basic);
        assert_eq!(img.dim(), 0);
        assert_eq!(stats.output_dim, 0);
    }

    #[test]
    fn serial_safepoints_collect_under_aggressive_policy() {
        // Every serial strategy must poll safepoints; under the
        // collect-at-every-opportunity policy they must actually reclaim,
        // and the relocated input/output must still verify against the
        // GC-off run.
        let spec = generators::qrw(3, 0.2);
        for s in [
            Strategy::Basic,
            Strategy::Addition { k: 1 },
            Strategy::Contraction { k1: 2, k2: 2 },
        ] {
            let mut m_gc = TddManager::new();
            m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
            let qts_gc = QuantumTransitionSystem::from_spec(&mut m_gc, &spec);
            let (img_gc, st) = image(&mut m_gc, qts_gc.operations(), qts_gc.initial(), s);
            assert!(st.safepoints > 0, "{s}: no safepoint polled");
            assert!(st.safepoint_collections > 0, "{s}: no safepoint collected");
            assert!(st.safepoint_reclaimed > 0, "{s}: nothing reclaimed");

            let mut m = TddManager::new();
            let qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
            let (img, st_plain) = image(&mut m, qts.operations(), qts.initial(), s);
            assert_eq!(st_plain.safepoint_collections, 0, "no policy: no collect");
            assert_eq!(img.dim(), img_gc.dim(), "{s}");
            // Same subspace: import the GC run's basis and compare.
            let mut imported = Subspace::zero(3);
            for &b in img_gc.basis() {
                let e = m.import(&m_gc, b);
                imported.absorb(&mut m, e);
            }
            assert!(imported.equals(&mut m, &img), "{s}");
            // The input is untouched: still the initial subspace.
            let fresh = {
                let vars = Subspace::ket_vars(3);
                let states: Vec<Edge> = spec
                    .initial_states
                    .iter()
                    .map(|amps| m_gc.product_ket(&vars, amps))
                    .collect();
                Subspace::from_states(&mut m_gc, 3, &states)
            };
            assert!(qts_gc.initial().clone().equals(&mut m_gc, &fresh), "{s}");
        }
    }

    #[test]
    fn try_image_reports_register_mismatch_in_release() {
        let mut m = TddManager::new();
        let input = Subspace::zero(3);
        let wide = Operation::new("wide", 5);
        let err = try_image(&mut m, &[wide], &input, Strategy::Basic).unwrap_err();
        assert!(matches!(
            err,
            crate::error::QitsError::RegisterMismatch {
                expected: 3,
                found: 5,
                ..
            }
        ));
    }

    #[test]
    fn try_image_reports_empty_operation_set_and_zero_register() {
        let mut m = TddManager::new();
        let input = Subspace::zero(3);
        assert_eq!(
            try_image(&mut m, &[], &input, Strategy::Basic).unwrap_err(),
            crate::error::QitsError::EmptyOperationSet
        );
        let zero = Subspace::zero(0);
        let op = Operation::new("id", 0);
        assert_eq!(
            try_image(&mut m, &[op], &zero, Strategy::Basic).unwrap_err(),
            crate::error::QitsError::ZeroQubitSystem
        );
    }

    #[test]
    fn try_image_reports_slice_count_overflow() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
        let err = try_image(
            &mut m,
            qts.operations(),
            qts.initial(),
            Strategy::Addition { k: 64 },
        )
        .unwrap_err();
        assert_eq!(err, crate::error::QitsError::DimensionOverflow { bits: 64 });
    }

    #[test]
    #[should_panic(expected = "register mismatch")]
    fn image_shim_panics_on_mismatch_with_the_error_text() {
        let mut m = TddManager::new();
        let input = Subspace::zero(3);
        let wide = Operation::new("wide", 5);
        let _ = image(&mut m, &[wide], &input, Strategy::Basic);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::Basic.to_string(), "basic");
        assert_eq!(Strategy::Addition { k: 1 }.to_string(), "addition(k=1)");
        assert_eq!(
            Strategy::Contraction { k1: 4, k2: 4 }.to_string(),
            "contraction(k1=4,k2=4)"
        );
    }
}
