//! Combinational circuit equivalence checking.
//!
//! Equivalence checking of quantum circuits is the application area the
//! paper's introduction builds on (its refs. \[1\]–\[4\]); it falls out of the
//! same machinery: contract each circuit's tensor network into a canonical
//! operator TDD, then compare. Two operators are proportional (equal up to
//! global phase) iff Cauchy–Schwarz holds with equality for the
//! Hilbert–Schmidt inner product, which needs three contractions and no
//! structural diagram comparison.

use std::collections::BTreeMap;

use qits_circuit::Circuit;
use qits_tdd::{Edge, TddManager};
use qits_tensor::Var;
use qits_tensornet::{contract_network, TensorNetwork};

use crate::error::QitsError;

fn check_registers(a: &Circuit, b: &Circuit) -> Result<u32, QitsError> {
    if a.n_qubits() != b.n_qubits() {
        return Err(QitsError::RegisterMismatch {
            expected: a.n_qubits(),
            found: b.n_qubits(),
            context: "the second circuit of an equivalence check".to_string(),
        });
    }
    Ok(a.n_qubits())
}

/// Contracts `circuit` into its operator TDD over the canonical variables
/// `x_q = Var::wire(q, 0)` (columns) and `y_q = Var::wire(q, 1)` (rows).
///
/// Wires the circuit only touches diagonally keep a single index after
/// contraction; they are expanded with an identity factor so operators of
/// structurally different circuits become directly comparable.
pub fn canonical_operator(m: &mut TddManager, circuit: &Circuit) -> Edge {
    let net = TensorNetwork::from_circuit(m, circuit);
    let whole = contract_network(m, net.tensors(), &net.external_vars());
    let n = circuit.n_qubits();
    // Monotone rename: every advanced output index drops to position 1.
    let map: BTreeMap<Var, Var> = (0..n)
        .filter(|&q| net.out_var(q) != net.in_var(q))
        .map(|q| (net.out_var(q), Var::row(q)))
        .collect();
    let mut op = m.rename_monotone(whole.edge, &map);
    // Expand diagonal wires: multiply by delta(x_q, y_q).
    for q in 0..n {
        if net.out_var(q) == net.in_var(q) {
            let id = m.identity(Var::ket(q), Var::row(q));
            op = m.contract(op, id, &[]);
        }
    }
    op
}

/// The Hilbert–Schmidt fidelity
/// `|<A, B>|^2 / (<A, A> <B, B>)` of two operator TDDs over the canonical
/// `2n` variables: 1 exactly when the operators are proportional.
///
/// Returns 0 if either operator is zero.
pub fn operator_fidelity(m: &mut TddManager, a: Edge, b: Edge, n_qubits: u32) -> f64 {
    if a.is_zero() || b.is_zero() {
        return 0.0;
    }
    let vars: Vec<Var> = (0..n_qubits)
        .flat_map(|q| [Var::ket(q), Var::row(q)])
        .collect();
    let ab = m.inner_product(a, b, &vars);
    let aa = m.inner_product(a, a, &vars).re;
    let bb = m.inner_product(b, b, &vars).re;
    ab.norm_sqr() / (aa * bb)
}

/// Whether two circuits on the same register implement the same operator
/// *up to global phase*.
///
/// Polls a GC safepoint between the two operator contractions (holding the
/// first operator live), so batch equivalence checking on one manager with
/// a [`qits_tdd::GcPolicy`] installed reclaims each circuit's contraction
/// garbage instead of accumulating it.
///
/// **GC hazard:** with a policy installed, that safepoint may collect, and
/// any caller-held edge that is not a registered root (via
/// [`qits_tdd::TddManager::protect`]) or passed as an
/// [`qits_tdd::EdgeHolder`] becomes detectably stale
/// ([`qits_tdd::TddManager::is_live`] returns false) — nodes are never
/// moved, but swept slots are recycled under a new generation. Without a
/// policy (the default), the function never collects and behaves exactly
/// as before.
///
/// # Panics
///
/// Panics if the register widths differ;
/// [`try_equivalent_up_to_phase`] reports that as a [`QitsError`] value
/// instead (and is what [`crate::Engine::equivalent_up_to_phase`] calls).
pub fn equivalent_up_to_phase(m: &mut TddManager, a: &Circuit, b: &Circuit) -> bool {
    try_equivalent_up_to_phase(m, a, b)
        .unwrap_or_else(|e| panic!("equivalence needs equal registers: {e}"))
}

/// Fallible [`equivalent_up_to_phase`]: register mismatch is an `Err`,
/// not a panic.
pub fn try_equivalent_up_to_phase(
    m: &mut TddManager,
    a: &Circuit,
    b: &Circuit,
) -> Result<bool, QitsError> {
    let n = check_registers(a, b)?;
    let oa = canonical_operator(m, a);
    m.maybe_collect_at_safepoint(&[&oa]);
    let ob = canonical_operator(m, b);
    Ok((operator_fidelity(m, oa, ob, n) - 1.0).abs() < 1e-8)
}

/// Whether two circuits implement *exactly* the same operator (global
/// phase included): proportional with ratio 1.
///
/// Safepoint behaviour matches [`equivalent_up_to_phase`].
///
/// # Panics
///
/// Panics if the register widths differ; [`try_equivalent_exactly`] is
/// the fallible form.
pub fn equivalent_exactly(m: &mut TddManager, a: &Circuit, b: &Circuit) -> bool {
    try_equivalent_exactly(m, a, b)
        .unwrap_or_else(|e| panic!("equivalence needs equal registers: {e}"))
}

/// Fallible [`equivalent_exactly`]: register mismatch is an `Err`, not a
/// panic.
pub fn try_equivalent_exactly(
    m: &mut TddManager,
    a: &Circuit,
    b: &Circuit,
) -> Result<bool, QitsError> {
    let n = check_registers(a, b)?;
    let oa = canonical_operator(m, a);
    m.maybe_collect_at_safepoint(&[&oa]);
    let ob = canonical_operator(m, b);
    if (operator_fidelity(m, oa, ob, n) - 1.0).abs() >= 1e-8 {
        return Ok(false);
    }
    // Proportional; check the ratio at a witness entry.
    let vars: Vec<Var> = (0..n).flat_map(|q| [Var::ket(q), Var::row(q)]).collect();
    let asn = m
        .first_nonzero_assignment(oa, &vars)
        .expect("fidelity 1 implies non-zero");
    let point: BTreeMap<Var, bool> = vars.iter().copied().zip(asn).collect();
    let va = m.eval(oa, &point);
    let vb = m.eval(ob, &point);
    Ok(va.approx_eq_with(vb, 1e-8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::{Gate, GateKind};

    fn circuit(n: u32, gates: Vec<Gate>) -> Circuit {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    }

    #[test]
    fn hxh_equals_z() {
        let mut m = TddManager::new();
        let a = circuit(1, vec![Gate::h(0), Gate::x(0), Gate::h(0)]);
        let b = circuit(1, vec![Gate::z(0)]);
        assert!(equivalent_exactly(&mut m, &a, &b));
    }

    #[test]
    fn swap_is_three_cx() {
        let mut m = TddManager::new();
        let a = circuit(2, vec![Gate::swap(0, 1)]);
        let b = circuit(2, vec![Gate::cx(0, 1), Gate::cx(1, 0), Gate::cx(0, 1)]);
        assert!(equivalent_exactly(&mut m, &a, &b));
    }

    #[test]
    fn rz_is_phase_up_to_global_phase() {
        let mut m = TddManager::new();
        let theta = 0.731;
        let a = circuit(1, vec![Gate::single(GateKind::Rz(theta), 0)]);
        let b = circuit(1, vec![Gate::phase(0, theta)]);
        assert!(equivalent_up_to_phase(&mut m, &a, &b));
        assert!(!equivalent_exactly(&mut m, &a, &b));
    }

    #[test]
    fn hh_is_identity_even_against_empty_circuit() {
        let mut m = TddManager::new();
        let a = circuit(1, vec![Gate::h(0), Gate::h(0)]);
        let b = circuit(1, vec![]);
        assert!(equivalent_exactly(&mut m, &a, &b));
    }

    #[test]
    fn distinguishes_different_circuits() {
        let mut m = TddManager::new();
        let a = circuit(2, vec![Gate::cx(0, 1)]);
        let b = circuit(2, vec![Gate::cx(1, 0)]);
        assert!(!equivalent_up_to_phase(&mut m, &a, &b));
    }

    #[test]
    fn elementarized_toffoli_is_equivalent() {
        let mut m = TddManager::new();
        let a = circuit(3, vec![Gate::ccx(0, 1, 2)]);
        let b: Circuit = {
            let mut c = Circuit::new(3);
            for g in qits_circuit::decompose::ccx_to_clifford_t(0, 1, 2) {
                c.push(g);
            }
            c
        };
        assert!(equivalent_exactly(&mut m, &a, &b));
    }

    #[test]
    fn equivalence_checks_survive_aggressive_gc() {
        // With a collect-at-every-opportunity policy, the between-operator
        // safepoint fires and the verdicts must not change.
        let mut m = TddManager::new();
        m.set_gc_policy(Some(qits_tdd::GcPolicy::aggressive()));
        let a = circuit(2, vec![Gate::swap(0, 1)]);
        let b = circuit(2, vec![Gate::cx(0, 1), Gate::cx(1, 0), Gate::cx(0, 1)]);
        assert!(equivalent_exactly(&mut m, &a, &b));
        assert!(equivalent_up_to_phase(&mut m, &a, &b));
        let c = circuit(2, vec![Gate::cx(1, 0)]);
        assert!(!equivalent_up_to_phase(&mut m, &a, &c));
        assert!(m.stats().safepoint_collections > 0, "safepoint must fire");
    }

    #[test]
    fn fidelity_of_orthogonal_paulis_is_zero() {
        let mut m = TddManager::new();
        let a = circuit(1, vec![Gate::x(0)]);
        let b = circuit(1, vec![Gate::z(0)]);
        let oa = canonical_operator(&mut m, &a);
        let ob = canonical_operator(&mut m, &b);
        assert!(operator_fidelity(&mut m, oa, ob, 1).abs() < 1e-10);
    }

    #[test]
    fn mixed_diagonal_profiles_compare_correctly() {
        // One circuit leaves q1 purely diagonal, the other advances it.
        let mut m = TddManager::new();
        let a = circuit(2, vec![Gate::cz(0, 1)]);
        let b = circuit(2, vec![Gate::h(1), Gate::cx(0, 1), Gate::h(1)]);
        assert!(equivalent_exactly(&mut m, &a, &b));
    }
}
