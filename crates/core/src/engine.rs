//! The session facade: one object that owns the manager, the transition
//! system, the GC policy, and the strategy — so user code never touches
//! root management by hand.
//!
//! Everything the paper's workflows need — image computation (Section IV
//! and V), reachability fixpoints and invariant checking (Section I), and
//! circuit equivalence — previously required the caller to hand-assemble
//! the machinery: pass the right subspaces into the kernel and keep every
//! bystander alive across GC safepoints. [`Engine`] is the
//! manager-owned-session shape mature decision-diagram libraries use
//! (OBDDimal's `BDDManager`, rsdd's builder-owned backends): the session
//! owns all of that state, its methods return `Result<_, QitsError>`
//! instead of panicking, and root management is invisible — the engine
//! roots its own system (and any caller-provided `kept` subspaces) across
//! every collection point. Collection never moves a node, so inputs are
//! plain `&Subspace` borrows and nothing is fixed up afterwards; even
//! node-store exhaustion surfaces as a [`QitsError::ArenaExhausted`]
//! value rather than a panic.
//!
//! Strategy dispatch goes through the [`ImageStrategy`] trait, making the
//! method set an open extension point: the four built-in kernels (the
//! [`Strategy`] enum) implement it directly, [`Auto`] picks between the
//! addition and contraction partitions from circuit shape (the Table I
//! crossover), and downstream code can implement the trait to plug in new
//! methods without touching this crate.
//!
//! ```
//! use qits::{EngineBuilder, Strategy};
//! use qits_circuit::generators;
//!
//! let mut engine = EngineBuilder::new()
//!     .strategy(Strategy::Contraction { k1: 2, k2: 2 })
//!     .build_from_spec(&generators::grover(3))
//!     .unwrap();
//! let (img, stats) = engine.image().unwrap();
//! let initial = engine.initial().clone();
//! assert!(img.equals(engine.manager_mut(), &initial));
//! assert!(stats.cont_hit_rate() > 0.0);
//! ```

use std::fmt;

use qits_circuit::generators::QtsSpec;
use qits_circuit::tensorize::{static_order, StaticOrder};
use qits_circuit::{Circuit, Element, Operation};
use qits_tdd::{
    ArenaExhausted, Edge, EdgeHolder, GcOutcome, GcPolicy, OperationCancelled, ReorderPolicy,
    TddManager,
};

use crate::error::QitsError;
use crate::image::{try_image, ImageStats, Strategy};
use crate::mc::{fixpoint_with, ReachabilityResult};
use crate::qts::{Operations, QuantumTransitionSystem};
use crate::subspace::Subspace;

/// A pluggable image-computation method.
///
/// Implementations pick (or are) a way of computing `T(S)`. The built-in
/// [`Strategy`] enum implements this trait by running its own kernel;
/// [`Auto`] implements it by inspecting the operations' circuit shape and
/// delegating to the kernel Table I says should win. Custom
/// implementations may override [`ImageStrategy::compute`] entirely —
/// the engine only ever dispatches through the trait.
///
/// `Send` is a supertrait: a strategy travels with its [`Engine`] session,
/// and sessions move between threads — [`crate::EnginePool`] workers each
/// own one. Strategies are configuration, not shared mutable state, so
/// every reasonable implementation is `Send` already; the bound makes a
/// thread-affine regression a compile error.
pub trait ImageStrategy: fmt::Debug + Send {
    /// Human-readable name, used by stats sinks, logs, and the CI perf
    /// artifact.
    fn name(&self) -> String;

    /// The built-in kernel this strategy would run for the given
    /// operations. [`Auto`]'s whole behaviour lives here; fixed
    /// strategies return themselves. Also the hook the CI artifact uses
    /// to record which kernel [`Auto`] chose per benchmark instance.
    fn select(&self, ops: &Operations) -> Strategy;

    /// Computes the image of `input` under `ops`, honouring the manager's
    /// GC safepoint contract (the default delegates to [`try_image`] with
    /// the kernel [`ImageStrategy::select`] picks, which polls safepoints
    /// with `input` among the mark roots — collection never moves a node,
    /// so `input` is a plain shared borrow).
    fn compute(
        &self,
        m: &mut TddManager,
        ops: &Operations,
        input: &Subspace,
    ) -> Result<(Subspace, ImageStats), QitsError> {
        try_image(m, ops, input, self.select(ops))
    }
}

impl ImageStrategy for Strategy {
    fn name(&self) -> String {
        self.to_string()
    }

    fn select(&self, _ops: &Operations) -> Strategy {
        *self
    }
}

/// Strategy auto-selection from circuit shape, per Table I's crossover.
///
/// The paper's evaluation splits the benchmark families in two: on
/// **wide, shallow** circuits (GHZ, Bernstein–Vazirani — gate count linear
/// in the register) the addition partition keeps every slice tiny and is
/// at least competitive, while on **deep** circuits (Grover iterations,
/// QFT — gate count superlinear, many crossing gates) the contraction
/// partition dominates because the monolithic/sliced operator blows up
/// where per-block pre-contractions stay small. `Auto` measures gates per
/// qubit across the operation set and picks the side of that crossover.
#[derive(Debug, Clone, PartialEq)]
pub struct Auto {
    /// Slice count exponent handed to [`Strategy::Addition`].
    pub addition_k: usize,
    /// Band width handed to [`Strategy::Contraction`].
    pub k1: u32,
    /// Segment length handed to [`Strategy::Contraction`].
    pub k2: u32,
    /// Gates-per-qubit threshold: at or below it the circuit counts as
    /// shallow (addition side), above it as deep (contraction side).
    pub depth_threshold: f64,
}

impl Default for Auto {
    /// The paper's Table I parameters (`k = 1`, `k1 = k2 = 4`) with the
    /// shallow/deep cut at 2.5 gate layers per qubit — GHZ and BV sit
    /// well below it, Grover and QFT instances well above.
    fn default() -> Self {
        Auto {
            addition_k: 1,
            k1: 4,
            k2: 4,
            depth_threshold: 2.5,
        }
    }
}

impl Auto {
    /// Mean gates per qubit per operation — the shape statistic the
    /// selector thresholds. Projectors count one gate per measured qubit;
    /// a channel counts as a single (noise) gate regardless of arity.
    pub fn gates_per_qubit(ops: &Operations) -> f64 {
        let mut gates = 0usize;
        for op in ops.iter() {
            for e in op.elements() {
                gates += match e {
                    Element::Gate(_) => 1,
                    Element::Projector { qubits, .. } => qubits.len(),
                    Element::Channel { .. } => 1,
                }
            }
        }
        let per_op = gates as f64 / ops.len().max(1) as f64;
        per_op / f64::from(ops.n_qubits().max(1))
    }
}

impl ImageStrategy for Auto {
    fn name(&self) -> String {
        format!(
            "auto(k={},k1={},k2={},depth<={})",
            self.addition_k, self.k1, self.k2, self.depth_threshold
        )
    }

    fn select(&self, ops: &Operations) -> Strategy {
        if Self::gates_per_qubit(ops) <= self.depth_threshold {
            Strategy::Addition { k: self.addition_k }
        } else {
            Strategy::Contraction {
                k1: self.k1,
                k2: self.k2,
            }
        }
    }
}

/// Callback receiving `(strategy name, stats)` after every image
/// computation an engine performs (fixpoint iterations included).
///
/// `Send` so the owning [`Engine`] stays `Send` — pool workers report
/// their per-image stats through exactly this hook, from their own
/// threads, into shared aggregation state.
pub type StatsSink = Box<dyn FnMut(&str, &ImageStats) + Send>;

/// Configures and constructs an [`Engine`].
///
/// All knobs that used to be scattered over `TddManager` setters and
/// per-call arguments live here: weight tolerance, operation-cache
/// capacity, GC policy, the image strategy, and an optional stats sink.
///
/// ```
/// use qits::{Auto, EngineBuilder};
/// use qits_circuit::generators;
/// use qits_tdd::GcPolicy;
///
/// let engine = EngineBuilder::new()
///     .tolerance(1e-12)
///     .cache_capacity(1 << 14)
///     .gc_policy(Some(GcPolicy::default()))
///     .strategy(Auto::default())
///     .build_from_spec(&generators::ghz(4))
///     .unwrap();
/// assert_eq!(engine.n_qubits(), 4);
/// ```
pub struct EngineBuilder {
    tolerance: f64,
    cache_capacity: Option<usize>,
    node_capacity: Option<usize>,
    gc_policy: Option<GcPolicy>,
    reorder: ReorderPolicy,
    order: StaticOrder,
    strategy: Box<dyn ImageStrategy>,
    sink: Option<StatsSink>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// A builder with the default tolerance, default cache capacity, GC
    /// off, and the [`Auto`] strategy.
    pub fn new() -> Self {
        EngineBuilder {
            tolerance: qits_num::DEFAULT_TOLERANCE,
            cache_capacity: None,
            node_capacity: None,
            gc_policy: None,
            reorder: ReorderPolicy::Off,
            order: StaticOrder::Natural,
            strategy: Box::new(Auto::default()),
            sink: None,
        }
    }

    /// Weight tolerance of the session's manager (see
    /// [`TddManager::with_tolerance`]).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Bounds every operation cache to at most this many entries
    /// (`0` disables operation caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Hard bound on allocated node slots (see
    /// [`TddManager::set_node_capacity`]). When a computation hits the
    /// bound and collection frees nothing, the engine method reports
    /// [`QitsError::ArenaExhausted`] instead of growing without limit.
    pub fn node_capacity(mut self, capacity: usize) -> Self {
        self.node_capacity = Some(capacity);
        self
    }

    /// Installs (or, with `None` — the default — omits) the automatic
    /// collection policy. With a policy, every safepoint the kernels and
    /// fixpoint drivers poll may sweep dead nodes; the engine keeps its
    /// own system and all `kept` subspaces rooted across those
    /// collections.
    pub fn gc_policy(mut self, policy: Option<GcPolicy>) -> Self {
        self.gc_policy = policy;
        self
    }

    /// Schedules **dynamic variable reordering**: when a GC safepoint
    /// collects, the manager may also run a sifting pass over the freshly
    /// minimised live set (see [`qits_tdd::ReorderPolicy`]). A non-`Off`
    /// schedule is merged into the GC policy — installing the default
    /// [`GcPolicy`] first if [`EngineBuilder::gc_policy`] left collection
    /// off, since reordering is always coupled to a collection.
    ///
    /// The environment variable `QITS_REORDER=aggressive` forces
    /// reordering at every collection **wherever the builder installed a
    /// GC policy** (unless that builder already scheduled reordering) —
    /// the switch the CI matrix uses to run the whole suite with sifting
    /// on. It never *installs* a policy: an engine built with
    /// `gc_policy(None)` is a deliberate GC-off baseline (several tests
    /// assert zero safepoint collections on exactly such engines), and
    /// an environment variable silently turning collection on would
    /// rewrite those semantics rather than exercise the reordering path.
    pub fn reorder(mut self, reorder: ReorderPolicy) -> Self {
        self.reorder = reorder;
        self
    }

    /// Installs a static variable-ordering heuristic (see
    /// [`StaticOrder`]): the wire variables of the register are ordered
    /// by the heuristic *before* any node is interned, so every diagram
    /// the session builds lives under that order from the start.
    /// [`StaticOrder::Natural`], the default, keeps the manager's
    /// zero-cost natural order.
    pub fn static_order(mut self, order: StaticOrder) -> Self {
        self.order = order;
        self
    }

    /// The image strategy the session dispatches through (default:
    /// [`Auto`]).
    pub fn strategy(mut self, strategy: impl ImageStrategy + 'static) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// [`EngineBuilder::strategy`] for an already-boxed strategy object —
    /// the form a strategy factory (e.g. [`crate::EngineSpec`]'s, which
    /// stamps one strategy per pool worker) naturally produces.
    pub fn strategy_boxed(mut self, strategy: Box<dyn ImageStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// A callback invoked with `(strategy name, stats)` after every image
    /// computation.
    pub fn stats_sink(mut self, sink: impl FnMut(&str, &ImageStats) + Send + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// The GC policy the session actually installs: the builder's policy
    /// with the reordering schedule merged in, plus the `QITS_REORDER`
    /// environment override (see [`EngineBuilder::reorder`]).
    fn effective_gc_policy(&self) -> Option<GcPolicy> {
        let mut policy = self.gc_policy;
        if self.reorder != ReorderPolicy::Off {
            policy.get_or_insert_with(GcPolicy::default).reorder = self.reorder;
        }
        if std::env::var("QITS_REORDER").is_ok_and(|v| v == "aggressive") {
            // Only piggyback on a policy the builder installed: the env
            // knob schedules sifting wherever collections already happen,
            // it never turns collection on (GC-off engines are often
            // deliberate baselines — see `EngineBuilder::reorder`).
            if let Some(p) = policy.as_mut() {
                if p.reorder == ReorderPolicy::Off {
                    p.reorder = ReorderPolicy::EveryCollection;
                }
            }
        }
        policy
    }

    fn make_manager(&self, n_qubits: u32, operations: &[Operation]) -> TddManager {
        let mut m = TddManager::with_config(
            self.tolerance,
            self.cache_capacity,
            self.effective_gc_policy(),
        );
        if let Some(cap) = self.node_capacity {
            m.set_node_capacity(cap);
        }
        // Install the heuristic order on the still-empty manager, so the
        // very first interned node already lives under it. Natural mode
        // stays lazy (no level map) — sifting materialises it on demand.
        if self.order != StaticOrder::Natural {
            m.install_order(&static_order(n_qubits, operations, self.order));
        }
        m
    }

    /// Builds an engine for a benchmark spec, spanning the initial
    /// subspace from the spec's product states.
    pub fn build_from_spec(self, spec: &QtsSpec) -> Result<Engine, QitsError> {
        let mut m = self.make_manager(spec.n_qubits, &spec.operations);
        let qts = QuantumTransitionSystem::try_from_spec(&mut m, spec)?;
        Ok(Engine {
            m,
            qts,
            strategy: self.strategy,
            sink: self.sink,
            fingerprint: None,
        })
    }

    /// Builds an engine from explicit parts; `initial` constructs the
    /// initial subspace on the session's fresh manager.
    pub fn build_with(
        self,
        n_qubits: u32,
        operations: Vec<Operation>,
        initial: impl FnOnce(&mut TddManager) -> Subspace,
    ) -> Result<Engine, QitsError> {
        let mut m = self.make_manager(n_qubits, &operations);
        let init = initial(&mut m);
        let qts = QuantumTransitionSystem::try_new(n_qubits, operations, init)?;
        Ok(Engine {
            m,
            qts,
            strategy: self.strategy,
            sink: self.sink,
            fingerprint: None,
        })
    }

    /// Builds an engine with no operations and an empty initial subspace —
    /// a session for workloads that need only the manager, such as
    /// circuit equivalence checking. Image and reachability methods on
    /// such an engine return [`QitsError::EmptyOperationSet`].
    pub fn build_bare(self, n_qubits: u32) -> Result<Engine, QitsError> {
        self.build_with(n_qubits, Vec::new(), |_| Subspace::zero(n_qubits))
    }
}

/// A model-checking session: owns the [`TddManager`], the
/// [`QuantumTransitionSystem`], the GC policy, and the root bookkeeping
/// for everything it computes.
///
/// Every method returns `Result<_, QitsError>`; nothing here panics on
/// malformed input, in release builds included. See the module docs for
/// the design rationale and [`EngineBuilder`] for construction.
pub struct Engine {
    m: TddManager,
    qts: QuantumTransitionSystem,
    strategy: Box<dyn ImageStrategy>,
    sink: Option<StatsSink>,
    /// The [`crate::EngineSpec::fingerprint`] this session was stamped
    /// from, when it was built through a spec. Recorded into snapshots
    /// and validated on warm start; `None` (hand-built sessions) skips
    /// both sides of that check.
    fingerprint: Option<u128>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("n_qubits", &self.qts.n_qubits())
            .field("operations", &self.qts.operations().len())
            .field("initial_dim", &self.qts.initial().dim())
            .field("strategy", &self.strategy.name())
            .field("arena_len", &self.m.arena_len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Register width of the session's system.
    pub fn n_qubits(&self) -> u32 {
        self.qts.n_qubits()
    }

    /// The session's transition system.
    pub fn qts(&self) -> &QuantumTransitionSystem {
        &self.qts
    }

    /// The initial subspace `S0`.
    pub fn initial(&self) -> &Subspace {
        self.qts.initial()
    }

    /// The operations `T_sigma`.
    pub fn operations(&self) -> &Operations {
        self.qts.operations()
    }

    /// The session's manager (read-only).
    pub fn manager(&self) -> &TddManager {
        &self.m
    }

    /// The session's manager. Subspace queries (`equals`, `contains`,
    /// ...) and ket constructors take `&mut TddManager`; this is the
    /// handle to pass them. Installing a GC policy or clearing caches
    /// through it is also fine — the engine re-reads the manager state on
    /// every call.
    pub fn manager_mut(&mut self) -> &mut TddManager {
        &mut self.m
    }

    /// Installs (or clears) a cooperative-cancellation token on the
    /// session's manager. While installed, every GC safepoint polls the
    /// token; if another thread trips it, the in-flight operation unwinds
    /// and the engine method returns [`QitsError::Cancelled`] — the
    /// session itself stays usable. See [`qits_tdd::cancel`].
    pub fn set_cancel_token(&mut self, token: Option<qits_tdd::CancelToken>) {
        self.m.set_cancel_token(token);
    }

    /// The [`crate::EngineSpec::fingerprint`] this session was built
    /// from, if it came from a spec (`None` for hand-assembled sessions).
    pub fn fingerprint(&self) -> Option<u128> {
        self.fingerprint
    }

    /// Stamps the spec fingerprint onto a freshly built session — called
    /// by [`crate::EngineSpec::build`] and the pool's worker factory.
    pub(crate) fn set_fingerprint(&mut self, fingerprint: u128) {
        self.fingerprint = Some(fingerprint);
    }

    /// The configured strategy object.
    pub fn strategy(&self) -> &dyn ImageStrategy {
        &*self.strategy
    }

    /// Replaces the session's strategy.
    pub fn set_strategy(&mut self, strategy: impl ImageStrategy + 'static) {
        self.strategy = Box::new(strategy);
    }

    /// The concrete built-in kernel the configured strategy would run for
    /// this session's operations — [`Auto`]'s choice made observable.
    pub fn selected_kernel(&self) -> Strategy {
        self.strategy.select(self.qts.operations())
    }

    fn record(&mut self, name: &str, stats: &ImageStats) {
        if let Some(sink) = self.sink.as_mut() {
            sink(name, stats);
        }
    }

    /// Runs a diagram computation, converting the manager's two typed
    /// unwinds into the fallible API's error values: the node store's
    /// [`ArenaExhausted`] (the one panic [`TddManager::make_node`] emits)
    /// becomes [`QitsError::ArenaExhausted`], and a tripped
    /// [`qits_tdd::CancelToken`]'s [`OperationCancelled`] (thrown from a
    /// GC safepoint) becomes [`QitsError::Cancelled`]. Any other panic is
    /// resumed unchanged. This is the session boundary the payloads'
    /// contracts name: inside a recursive operation neither condition has
    /// a partial result to return, so it unwinds; here it becomes an
    /// error and the session stays usable.
    fn guard_exhaustion<T>(f: impl FnOnce() -> Result<T, QitsError>) -> Result<T, QitsError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => match payload.downcast::<ArenaExhausted>() {
                Ok(e) => Err(QitsError::ArenaExhausted {
                    allocated: e.allocated,
                    capacity: e.capacity,
                }),
                Err(other) => match other.downcast::<OperationCancelled>() {
                    Ok(_) => Err(QitsError::Cancelled),
                    Err(other) => std::panic::resume_unwind(other),
                },
            },
        }
    }

    // ------------------------------------------------------------------
    // Image computation.
    // ------------------------------------------------------------------

    /// Computes `T(S0)`, the image of the system's initial subspace, with
    /// the session strategy. The initial subspace rides through any
    /// mid-image collection untouched (it is among the kernel's mark
    /// roots); no caller-side rooting needed.
    pub fn image(&mut self) -> Result<(Subspace, ImageStats), QitsError> {
        let (m, qts, strategy) = (&mut self.m, &self.qts, &*self.strategy);
        let result =
            Self::guard_exhaustion(|| strategy.compute(m, qts.operations(), qts.initial()));
        let name = self.strategy.name();
        let (img, stats) = result?;
        self.record(&name, &stats);
        Ok((img, stats))
    }

    /// [`Engine::image`] with a one-off strategy override.
    pub fn image_with(
        &mut self,
        strategy: &dyn ImageStrategy,
    ) -> Result<(Subspace, ImageStats), QitsError> {
        let (m, qts) = (&mut self.m, &self.qts);
        let result =
            Self::guard_exhaustion(|| strategy.compute(m, qts.operations(), qts.initial()));
        let name = strategy.name();
        let (img, stats) = result?;
        self.record(&name, &stats);
        Ok((img, stats))
    }

    /// Computes the image of an arbitrary subspace (living on this
    /// session's manager) under the system's operations. The system's own
    /// initial subspace is rooted across the call — the rooting dance
    /// callers previously performed by hand.
    pub fn image_of(&mut self, input: &Subspace) -> Result<(Subspace, ImageStats), QitsError> {
        self.image_of_keeping(input, &[])
    }

    /// [`Engine::image_of`], additionally keeping `kept` subspaces alive
    /// across every mid-image collection (the bystander contract:
    /// anything on the manager that is neither the input nor in `kept`
    /// may be swept once a GC policy is installed — swept edges stay
    /// where they were but report [`TddManager::is_live`] false).
    pub fn image_of_keeping(
        &mut self,
        input: &Subspace,
        kept: &[&Subspace],
    ) -> Result<(Subspace, ImageStats), QitsError> {
        let mut roots = self.qts.protect(&mut self.m);
        for s in kept {
            roots.extend(s.protect(&mut self.m));
        }
        let (m, qts, strategy) = (&mut self.m, &self.qts, &*self.strategy);
        let result = Self::guard_exhaustion(|| strategy.compute(m, qts.operations(), input));
        self.m.unprotect_all(roots);
        let name = self.strategy.name();
        let (img, stats) = result?;
        self.record(&name, &stats);
        Ok((img, stats))
    }

    // ------------------------------------------------------------------
    // Model checking.
    // ------------------------------------------------------------------

    /// Computes the reachable subspace by iterating `S <- S v T(S)` until
    /// the dimension stabilises (see [`crate::mc::reachable_space`] for
    /// the fixpoint semantics). GC roots — the system and the working
    /// space — are managed internally between and inside iterations.
    pub fn reachable_space(
        &mut self,
        max_iterations: usize,
    ) -> Result<ReachabilityResult, QitsError> {
        let (m, qts, strategy) = (&mut self.m, &self.qts, &*self.strategy);
        let r =
            Self::guard_exhaustion(|| fixpoint_with(m, qts, strategy, max_iterations, &[], None))?;
        let name = self.strategy.name();
        for st in &r.stats {
            self.record(&name, st);
        }
        Ok(r)
    }

    /// Continues a reachability fixpoint from a checkpoint restored by
    /// [`Engine::warm_start`]: iterates `S <- S v T(S)` starting from the
    /// checkpointed space instead of `S0`, then folds the checkpoint's
    /// iteration/GC counters into the returned result — so a run that was
    /// snapshotted mid-fixpoint, restarted, and resumed reports the same
    /// totals as one that never stopped. Sound because the closure is
    /// monotone: the checkpointed `S_j` contains `S0`, so resuming walks
    /// exactly the tail of the original iteration chain.
    ///
    /// `max_iterations` bounds the *additional* iterations of this call.
    pub fn resume_reachable_space(
        &mut self,
        resumed: &crate::store::ResumedReach,
        max_iterations: usize,
    ) -> Result<ReachabilityResult, QitsError> {
        if resumed.space.n_qubits() != self.qts.n_qubits() {
            return Err(QitsError::RegisterMismatch {
                expected: self.qts.n_qubits(),
                found: resumed.space.n_qubits(),
                context: "the restored reachability space".to_string(),
            });
        }
        let start = resumed.space.clone();
        let (m, qts, strategy) = (&mut self.m, &self.qts, &*self.strategy);
        let mut r = Self::guard_exhaustion(|| {
            fixpoint_with(m, qts, strategy, max_iterations, &[], Some(start))
        })?;
        r.iterations += resumed.iterations;
        r.collections += resumed.collections;
        r.reclaimed_nodes += resumed.reclaimed_nodes;
        let name = self.strategy.name();
        for st in &r.stats {
            self.record(&name, st);
        }
        Ok(r)
    }

    /// Checks the safety property "every reachable state stays inside
    /// `invariant`", keeping the invariant rooted across the whole run.
    /// Returns the verdict plus the witnessing reachability result.
    pub fn check_invariant(
        &mut self,
        invariant: &Subspace,
        max_iterations: usize,
    ) -> Result<(bool, ReachabilityResult), QitsError> {
        if invariant.n_qubits() != self.qts.n_qubits() {
            return Err(QitsError::RegisterMismatch {
                expected: self.qts.n_qubits(),
                found: invariant.n_qubits(),
                context: "the invariant subspace".to_string(),
            });
        }
        let (m, qts, strategy) = (&mut self.m, &self.qts, &*self.strategy);
        let r = Self::guard_exhaustion(|| {
            fixpoint_with(m, qts, strategy, max_iterations, &[invariant], None)
        })?;
        let holds = r.space.is_subspace_of(&mut self.m, invariant);
        let name = self.strategy.name();
        for st in &r.stats {
            self.record(&name, st);
        }
        Ok((holds, r))
    }

    // ------------------------------------------------------------------
    // Equivalence checking.
    // ------------------------------------------------------------------

    /// Whether two circuits implement exactly the same operator (global
    /// phase included), on this session's manager. The equivalence
    /// checkers poll a GC safepoint between the two operator
    /// contractions; the engine roots its own system across the call so a
    /// collection there cannot sweep the session state.
    pub fn equivalent(&mut self, a: &Circuit, b: &Circuit) -> Result<bool, QitsError> {
        let roots = self.qts.protect(&mut self.m);
        let m = &mut self.m;
        let result = Self::guard_exhaustion(|| crate::equiv::try_equivalent_exactly(m, a, b));
        self.m.unprotect_all(roots);
        result
    }

    /// Whether two circuits implement the same operator up to global
    /// phase. Safepoint rooting matches [`Engine::equivalent`].
    pub fn equivalent_up_to_phase(&mut self, a: &Circuit, b: &Circuit) -> Result<bool, QitsError> {
        let roots = self.qts.protect(&mut self.m);
        let m = &mut self.m;
        let result = Self::guard_exhaustion(|| crate::equiv::try_equivalent_up_to_phase(m, a, b));
        self.m.unprotect_all(roots);
        result
    }

    // ------------------------------------------------------------------
    // Memory management and subspace construction.
    // ------------------------------------------------------------------

    /// Runs an explicit garbage collection, retaining the session's
    /// system plus every subspace in `kept` (all untouched — collection
    /// never moves a node). Anything else on the manager is swept.
    pub fn collect(&mut self, kept: &[&Subspace]) -> GcOutcome {
        let mut holders: Vec<&dyn EdgeHolder> = vec![&self.qts];
        holders.extend(kept.iter().map(|s| *s as &dyn EdgeHolder));
        self.m.collect_retaining(&holders)
    }

    /// Spans a subspace from states on this session's manager, validating
    /// that every state fits the session register (the check
    /// [`Subspace::try_absorb`] performs).
    pub fn subspace_from_states(&mut self, states: &[Edge]) -> Result<Subspace, QitsError> {
        let mut s = Subspace::zero(self.qts.n_qubits());
        for &e in states {
            s.try_absorb(&mut self.m, e)?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::generators;
    use qits_tdd::GcPolicy;
    use std::sync::{Arc, Mutex};

    #[test]
    fn engine_image_matches_initial_invariant() {
        let mut engine = EngineBuilder::new()
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .build_from_spec(&generators::grover(3))
            .unwrap();
        let (img, stats) = engine.image().unwrap();
        assert_eq!(stats.output_dim, img.dim());
        let initial = engine.initial().clone();
        assert!(img.equals(engine.manager_mut(), &initial));
    }

    #[test]
    fn bare_engine_reports_empty_operation_set() {
        let mut engine = EngineBuilder::new().build_bare(3).unwrap();
        assert_eq!(engine.image().unwrap_err(), QitsError::EmptyOperationSet);
        assert_eq!(
            engine.reachable_space(10).unwrap_err(),
            QitsError::EmptyOperationSet
        );
    }

    #[test]
    fn zero_qubit_engine_is_rejected_at_build() {
        let err = EngineBuilder::new().build_bare(0).unwrap_err();
        assert_eq!(err, QitsError::ZeroQubitSystem);
    }

    #[test]
    fn image_of_mismatched_register_is_an_error_not_a_panic() {
        let mut engine = EngineBuilder::new()
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let wrong = Subspace::zero(5);
        let err = engine.image_of(&wrong).unwrap_err();
        assert!(matches!(
            err,
            QitsError::RegisterMismatch {
                expected: 5,
                found: 3,
                ..
            }
        ));
        // The engine session stays usable after the error.
        assert!(engine.image().is_ok());
    }

    #[test]
    fn builder_knobs_reach_the_manager() {
        let engine = EngineBuilder::new()
            .cache_capacity(0)
            .gc_policy(Some(GcPolicy::aggressive()))
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let got = engine.manager().gc_policy().expect("policy installed");
        // Compare everything except `reorder`, which the QITS_REORDER
        // environment knob may legitimately rewrite under the CI matrix.
        assert_eq!(
            got,
            GcPolicy {
                reorder: got.reorder,
                ..GcPolicy::aggressive()
            }
        );
        assert_eq!(engine.manager().cache_sizes().total(), 0);
    }

    #[test]
    fn reorder_knob_installs_a_gc_policy_when_none_is_set() {
        let engine = EngineBuilder::new()
            .reorder(ReorderPolicy::EveryCollection)
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let policy = engine.manager().gc_policy().expect("merged-in policy");
        assert_eq!(policy.reorder, ReorderPolicy::EveryCollection);
        // Everything else stays at the GC default.
        assert_eq!(policy.watermark, GcPolicy::default().watermark);
    }

    #[test]
    fn reorder_knob_merges_into_an_explicit_gc_policy() {
        let engine = EngineBuilder::new()
            .gc_policy(Some(GcPolicy::aggressive()))
            .reorder(ReorderPolicy::EveryNSafepoints { n: 3 })
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let policy = engine.manager().gc_policy().unwrap();
        assert_eq!(policy.reorder, ReorderPolicy::EveryNSafepoints { n: 3 });
        assert_eq!(policy.watermark, GcPolicy::aggressive().watermark);
    }

    #[test]
    fn static_order_knob_reaches_the_manager() {
        use qits_tensor::Var;
        let engine = EngineBuilder::new()
            .static_order(StaticOrder::PositionMajor)
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let order = engine.manager().var_order().expect("explicit order");
        // All kets before all rows — and the session built its system
        // under that order without changing any result.
        assert_eq!(
            &order[..3],
            &[Var::wire(0, 0), Var::wire(1, 0), Var::wire(2, 0)]
        );
        assert_eq!(engine.initial().dim(), 1);
    }

    #[test]
    fn gate_locality_order_computes_the_same_image() {
        let spec = generators::qrw(3, 0.2);
        let mut natural = EngineBuilder::new()
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .build_from_spec(&spec)
            .unwrap();
        let mut local = EngineBuilder::new()
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .static_order(StaticOrder::GateLocality)
            .build_from_spec(&spec)
            .unwrap();
        let (a, _) = natural.image().unwrap();
        let (b, _) = local.image().unwrap();
        assert_eq!(a.dim(), b.dim());
    }

    #[test]
    fn reordering_under_forced_gc_preserves_the_fixpoint() {
        // The whole reachability fixpoint with a sifting pass forced at
        // every collecting safepoint must agree with the grow-only run.
        let spec = generators::qrw(3, 0.2);
        let strategy = Strategy::Contraction { k1: 2, k2: 2 };
        let mut plain = EngineBuilder::new()
            .strategy(strategy)
            .build_from_spec(&spec)
            .unwrap();
        let mut sifted = EngineBuilder::new()
            .strategy(strategy)
            .gc_policy(Some(GcPolicy::aggressive()))
            .reorder(ReorderPolicy::EveryCollection)
            .build_from_spec(&spec)
            .unwrap();
        let a = plain.reachable_space(20).unwrap();
        let b = sifted.reachable_space(20).unwrap();
        assert_eq!(a.space.dim(), b.space.dim());
        assert!(a.converged && b.converged);
        assert!(
            sifted.manager().stats().sift_passes > 0,
            "aggressive GC + EveryCollection must actually sift"
        );
    }

    #[test]
    fn stats_sink_sees_every_image_with_the_strategy_name() {
        // Arc<Mutex<_>>, not Rc<RefCell<_>>: the sink must be Send so the
        // engine stays Send (see tests/send_bounds.rs).
        let seen: Arc<Mutex<Vec<String>>> = Arc::default();
        let seen2 = seen.clone();
        let mut engine = EngineBuilder::new()
            .strategy(Strategy::Basic)
            .stats_sink(move |name, stats| {
                assert!(stats.branches > 0);
                seen2.lock().unwrap().push(name.to_string());
            })
            .build_from_spec(&generators::qrw(3, 0.3))
            .unwrap();
        engine.image().unwrap();
        let r = engine.reachable_space(10).unwrap();
        assert!(r.converged);
        let names = seen.lock().unwrap();
        assert_eq!(names.len(), 1 + r.iterations);
        assert!(names.iter().all(|n| n == "basic"));
    }

    #[test]
    fn auto_selects_addition_for_wide_and_contraction_for_deep() {
        let auto = Auto::default();
        let ghz = generators::ghz(8);
        let wide = Operations::new(ghz.n_qubits, ghz.operations.clone());
        assert_eq!(auto.select(&wide), Strategy::Addition { k: 1 });
        let qft = generators::qft(6);
        let deep = Operations::new(qft.n_qubits, qft.operations.clone());
        assert_eq!(auto.select(&deep), Strategy::Contraction { k1: 4, k2: 4 });
    }

    #[test]
    fn auto_engine_computes_the_same_image_as_its_selected_kernel() {
        let spec = generators::ghz(4);
        let mut auto_engine = EngineBuilder::new()
            .strategy(Auto::default())
            .build_from_spec(&spec)
            .unwrap();
        let kernel = auto_engine.selected_kernel();
        let (img_auto, _) = auto_engine.image().unwrap();
        let mut kernel_engine = EngineBuilder::new()
            .strategy(kernel)
            .build_from_spec(&spec)
            .unwrap();
        let (img_kernel, _) = kernel_engine.image().unwrap();
        assert_eq!(img_auto.dim(), img_kernel.dim());
    }

    #[test]
    fn image_of_keeping_protects_bystanders_under_gc() {
        let mut engine = EngineBuilder::new()
            .gc_policy(Some(GcPolicy::aggressive()))
            .strategy(Strategy::Addition { k: 1 })
            .build_from_spec(&generators::qrw(3, 0.2))
            .unwrap();
        let vars = Subspace::ket_vars(3);
        let k = engine.manager_mut().basis_ket(&vars, &[true, false, true]);
        let bystander = engine.subspace_from_states(&[k]).unwrap();
        let input = engine.initial().clone();
        let (_, stats) = engine.image_of_keeping(&input, &[&bystander]).unwrap();
        assert!(stats.safepoint_collections > 0, "GC must actually run");
        assert_eq!(bystander.dim(), 1);
        let k_again = engine.manager_mut().basis_ket(&vars, &[true, false, true]);
        let m = engine.manager_mut();
        assert!(bystander.contains(m, k_again));
    }

    #[test]
    fn arena_exhaustion_is_an_error_not_a_panic() {
        let mut engine = EngineBuilder::new()
            .strategy(Strategy::Basic)
            .build_from_spec(&generators::grover(3))
            .unwrap();
        // Clamp the node store to exactly what the build used: the next
        // fresh node the image computation needs must exhaust it.
        let cap = engine.manager().arena_len();
        engine.manager_mut().set_node_capacity(cap);
        let err = engine.image().unwrap_err();
        assert_eq!(
            err,
            QitsError::ArenaExhausted {
                allocated: cap,
                capacity: cap
            }
        );
        assert!(err.to_string().contains("exhausted"));
        // The session survives the failed computation: the system is
        // intact and cheap queries still work.
        assert_eq!(engine.initial().dim(), 2);
        engine.manager_mut().set_node_capacity(usize::MAX);
        assert!(engine.image().is_ok());
    }

    #[test]
    fn builder_node_capacity_reaches_the_manager() {
        let engine = EngineBuilder::new()
            .node_capacity(1 << 20)
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        assert_eq!(engine.manager().node_capacity(), 1 << 20);
    }

    #[test]
    fn subspace_from_states_validates_the_register() {
        let mut engine = EngineBuilder::new()
            .build_from_spec(&generators::ghz(2))
            .unwrap();
        let wide_vars = Subspace::ket_vars(4);
        let wide = engine
            .manager_mut()
            .basis_ket(&wide_vars, &[true, false, false, true]);
        assert!(matches!(
            engine.subspace_from_states(&[wide]).unwrap_err(),
            QitsError::RegisterMismatch { expected: 2, .. }
        ));
    }

    #[test]
    fn debug_names_the_session_shape() {
        let engine = EngineBuilder::new()
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let text = format!("{engine:?}");
        assert!(text.contains("n_qubits: 3"));
        assert!(text.contains("auto"));
    }
}
