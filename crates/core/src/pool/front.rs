//! The async submission front: completion slots, tickets, requests, and
//! the cloneable [`ServiceHandle`].
//!
//! Everything here is std-only. A [`JobTicket`] is a oneshot completion
//! slot with three consumption modes — block ([`JobTicket::join`]), poll
//! ([`JobTicket::try_join`]), or `.await` (it implements
//! [`std::future::Future`], parking the task's [`Waker`] in the slot) —
//! so the pool serves synchronous batch drivers and async executors
//! through one mechanism, without the crate depending on any runtime.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use qits_tdd::CancelToken;

use super::{Job, JobOutput, PoolStats, Shared};
use crate::error::QitsError;

// ----------------------------------------------------------------------
// Priorities.
// ----------------------------------------------------------------------

/// Scheduling class of a [`JobRequest`]. Priorities are **global across
/// shards**: a worker drains every shard's [`Priority::High`] lane before
/// touching any [`Priority::Normal`] lane, so a latency-sensitive query
/// overtakes the whole batch backlog, not just its own shard's.
/// Within one lane, jobs stay FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive: served before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Batch/backfill: served only when nothing else is queued.
    Low,
}

impl Priority {
    /// Number of queue lanes (one per variant).
    pub(crate) const LANES: usize = 3;

    /// This priority's lane index; lower scans first.
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

// ----------------------------------------------------------------------
// Requests.
// ----------------------------------------------------------------------

/// A [`Job`] plus its service envelope: priority, optional deadline, and
/// an optional caller-provided [`CancelToken`].
///
/// ```
/// use std::time::Duration;
/// use qits::serve::{JobRequest, Priority};
/// use qits::Job;
///
/// let req = JobRequest::new(Job::image())
///     .priority(Priority::High)
///     .deadline(Duration::from_millis(250));
/// ```
#[derive(Debug, Clone)]
pub struct JobRequest {
    job: Job,
    priority: Priority,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl JobRequest {
    /// A request with default envelope: [`Priority::Normal`], no
    /// deadline, a fresh private cancellation token.
    pub fn new(job: Job) -> Self {
        JobRequest {
            job,
            priority: Priority::default(),
            deadline: None,
            cancel: None,
        }
    }

    /// Sets the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Gives the job `budget` from submission to *start running*. A job
    /// whose deadline passes while it queues is shed at dequeue with
    /// [`QitsError::DeadlineExpired`] (and counted in
    /// [`PoolStats::jobs_expired`]); a job that starts in time runs to
    /// completion — pair a deadline with [`JobTicket::cancel`] to bound
    /// running jobs too.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attaches a caller-owned cancellation token — share one token
    /// across many requests to cancel them as a group. Without this, the
    /// ticket's private token (see [`JobTicket::cancel`]) is created for
    /// the request.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    pub(crate) fn into_parts(self) -> (Job, Priority, Option<Duration>, CancelToken) {
        let cancel = self.cancel.unwrap_or_default();
        (self.job, self.priority, self.deadline, cancel)
    }
}

impl From<Job> for JobRequest {
    fn from(job: Job) -> Self {
        JobRequest::new(job)
    }
}

// ----------------------------------------------------------------------
// Completion slots and tickets.
// ----------------------------------------------------------------------

#[derive(Default)]
struct SlotState {
    result: Option<Result<JobOutput, QitsError>>,
    waker: Option<Waker>,
    taken: bool,
    completed_at: Option<Instant>,
}

/// The shared half of a oneshot: the producer (worker, or the submission
/// path itself) delivers exactly once; the consumer blocks, polls, or
/// awaits.
pub(crate) struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
    submitted_at: Instant,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::default()),
            done: Condvar::new(),
            submitted_at: Instant::now(),
        })
    }

    /// Delivers the result. Idempotent: only the first delivery lands
    /// (later calls — e.g. the [`super::Task`] drop guard after a normal
    /// completion — return `false` and change nothing).
    pub(crate) fn deliver(&self, result: Result<JobOutput, QitsError>) -> bool {
        let waker = {
            let mut st = self.state.lock().unwrap();
            if st.taken || st.result.is_some() {
                return false;
            }
            st.result = Some(result);
            st.completed_at = Some(Instant::now());
            st.waker.take()
        };
        self.done.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        true
    }
}

/// The caller's claim on one submitted job's result.
///
/// Consume it whichever way fits the caller:
///
/// * **Block**: [`JobTicket::join`] parks the thread until the result
///   lands (the original batch-driver shape).
/// * **Poll**: [`JobTicket::try_join`] returns `None` while the job is
///   in flight.
/// * **Await**: the ticket implements [`Future`]; `.await` it from any
///   executor. No runtime is bundled — the pool only stores and wakes
///   the [`Waker`].
///
/// Results stream in completion order: each ticket resolves the moment
/// *its* job finishes, independent of submission order. Dropping a
/// ticket abandons the result; the job still runs (unless
/// [`JobTicket::cancel`] was called first) and still counts in
/// [`PoolStats`].
pub struct JobTicket {
    slot: Arc<Slot>,
    cancel: CancelToken,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.slot.state.lock().unwrap();
        f.debug_struct("JobTicket")
            .field("resolved", &(st.taken || st.result.is_some()))
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

impl JobTicket {
    pub(crate) fn new(slot: Arc<Slot>, cancel: CancelToken) -> JobTicket {
        JobTicket { slot, cancel }
    }

    /// A ticket already resolved to `Err(error)` — how the infallible
    /// [`super::EnginePool::submit`] surfaces an admission refusal.
    pub(crate) fn failed(error: QitsError) -> JobTicket {
        let slot = Slot::new();
        slot.deliver(Err(error));
        JobTicket::new(slot, CancelToken::new())
    }

    /// Blocks until the job's result lands and returns it.
    pub fn join(self) -> Result<JobOutput, QitsError> {
        let mut st = self.slot.state.lock().unwrap();
        loop {
            if let Some(r) = st.result.take() {
                st.taken = true;
                return r;
            }
            if st.taken {
                // Unreachable through the public API (join consumes the
                // ticket), kept as a typed failure rather than a hang.
                return Err(QitsError::JobFailure {
                    detail: "the job's result was already taken".to_string(),
                });
            }
            st = self.slot.done.wait(st).unwrap();
        }
    }

    /// Returns the result if the job has finished, `None` while it is
    /// still queued or running. Never blocks.
    pub fn try_join(&mut self) -> Option<Result<JobOutput, QitsError>> {
        let mut st = self.slot.state.lock().unwrap();
        let r = st.result.take();
        if r.is_some() {
            st.taken = true;
        }
        r
    }

    /// Trips the job's cancellation token. Queued jobs are shed at
    /// dequeue; a running job unwinds at its next GC safepoint. Either
    /// way the ticket resolves with [`QitsError::Cancelled`] — a job
    /// that already completed keeps its result.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The job's cancellation token (clone it to cancel from elsewhere).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Submission-to-completion latency, once the job has finished
    /// (`None` while in flight). Measured by the pool, memo fast-path
    /// completions included — this is what the soak harness records.
    pub fn latency(&self) -> Option<Duration> {
        let st = self.slot.state.lock().unwrap();
        st.completed_at
            .map(|t| t.duration_since(self.slot.submitted_at))
    }
}

impl Future for JobTicket {
    type Output = Result<JobOutput, QitsError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.slot.state.lock().unwrap();
        if let Some(r) = st.result.take() {
            st.taken = true;
            return Poll::Ready(r);
        }
        if st.taken {
            panic!("JobTicket polled after completion");
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ----------------------------------------------------------------------
// The service handle.
// ----------------------------------------------------------------------

/// A cloneable, `Send + Sync` submission front onto an
/// [`super::EnginePool`], obtained from [`super::EnginePool::handle`].
///
/// Hand clones to async tasks, other threads, or a protocol front (see
/// [`super::proto`]): each clone submits jobs, reads live stats, and
/// never blocks on the workers. Handles are *observers* of the pool's
/// lifetime, not owners — they do not keep workers alive, and after the
/// pool shuts down every submission fails cleanly with a
/// [`QitsError::JobFailure`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("workers", &self.shared.worker_count())
            .finish_non_exhaustive()
    }
}

impl ServiceHandle {
    pub(crate) fn new(shared: Arc<Shared>) -> ServiceHandle {
        ServiceHandle { shared }
    }

    /// Admits one request ([`Job`] or [`JobRequest`]) or refuses it,
    /// without blocking: [`QitsError::QueueFull`] when the bounded queue
    /// is at depth, a [`QitsError::JobFailure`] after shutdown. On
    /// success the job is queued (or already complete, on a memo hit)
    /// and the ticket will resolve.
    pub fn try_submit(&self, req: impl Into<JobRequest>) -> Result<JobTicket, QitsError> {
        self.shared.try_submit(req.into())
    }

    /// Submits one job at [`Priority::Normal`]; an admission refusal
    /// resolves the returned ticket instead of erroring (the infallible
    /// convenience shape — prefer [`ServiceHandle::try_submit`] when the
    /// caller wants to react to backpressure).
    pub fn submit(&self, job: Job) -> JobTicket {
        match self.try_submit(job) {
            Ok(t) => t,
            Err(e) => JobTicket::failed(e),
        }
    }

    /// A live snapshot of the pool's aggregated statistics — same data
    /// as [`super::EnginePool::stats`], available to any handle holder.
    pub fn stats(&self) -> PoolStats {
        self.shared.stats_snapshot()
    }

    /// Number of worker threads behind this handle.
    pub fn workers(&self) -> usize {
        self.shared.worker_count()
    }

    /// Spills the pool's result memo to a snapshot file (written
    /// atomically: temp sibling, then rename) stamped with the pool's
    /// spec fingerprint, and returns how many entries were written. A
    /// pool without a memo writes a valid, empty snapshot — still useful
    /// as a fingerprint-checked marker.
    ///
    /// The file is a plain [`crate::store::Snapshot`], so it round-trips
    /// through [`ServiceHandle::load_snapshot`],
    /// [`super::PoolBuilder::warm_start`], and the `qits-serve` `save` /
    /// `load` protocol ops interchangeably.
    pub fn save_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
        label: &str,
    ) -> Result<usize, QitsError> {
        let mut snap = crate::store::Snapshot::new(label);
        snap.spec_fingerprint = Some(self.shared.spec_fingerprint);
        if let Some(memo) = &self.shared.memo {
            snap.memo = crate::store::spill_memo(memo);
        }
        let entries = snap.memo.len();
        snap.write_to(path)?;
        Ok(entries)
    }

    /// Preloads a snapshot's memo entries into the running pool's memo
    /// (as **warm** entries — their hits count in
    /// [`super::MemoStats::warm_hits`]) and returns how many were
    /// loaded. The snapshot's spec fingerprint (when recorded) must
    /// match this pool's, else [`QitsError::StoreSpecMismatch`]; a
    /// snapshot carrying entries into a pool with no memo configured is
    /// [`QitsError::StoreMemoUnavailable`].
    pub fn load_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<usize, QitsError> {
        let snap = crate::store::Snapshot::read_from(path)?;
        if let Some(found) = snap.spec_fingerprint {
            let expected = self.shared.spec_fingerprint;
            if found != expected {
                return Err(QitsError::StoreSpecMismatch { expected, found });
            }
        }
        if snap.memo.is_empty() {
            return Ok(0);
        }
        match &self.shared.memo {
            Some(memo) => crate::store::preload_memo(memo, &snap.memo),
            None => Err(QitsError::StoreMemoUnavailable),
        }
    }
}
