//! Serving: a fixed-size pool of worker threads, each owning a private
//! [`Engine`], fed by a **sharded, priority-laned MPMC work queue** of
//! typed jobs — with an async-capable submission front.
//!
//! The paper's image-computation kernels are embarrassingly parallel
//! across *independent queries*: distinct initial subspaces, invariants,
//! and circuit pairs share nothing but the algorithm, and quantum
//! model-checking workloads arrive naturally query-batched (many pairwise
//! equivalence or reachability questions over one system). One `Engine`
//! session on one thread therefore leaves throughput on the table twice —
//! once for every idle core, and once for every cold cache a
//! fresh-session-per-query serving model pays. [`EnginePool`] fixes both:
//!
//! * **One engine per worker.** Each worker thread owns a private
//!   [`Engine`] stamped from a shared [`EngineSpec`]; the manager-owned
//!   operation caches stay warm across the jobs that worker serves, so
//!   repeated queries over the same system reuse each other's
//!   contractions exactly as a long-lived session would.
//! * **Sharded queue, priority lanes, work stealing.** Submission
//!   round-robins jobs over one queue shard per worker; within every
//!   shard, three [`Priority`] lanes keep latency-sensitive work ahead of
//!   batch work. A worker scans lanes globally (every shard's high lane
//!   before any normal lane) and steals from its neighbours, so a batch
//!   of uneven jobs still keeps every worker busy.
//! * **An async front.** [`ServiceHandle`] (cloneable, available from any
//!   thread via [`EnginePool::handle`]) accepts [`JobRequest`]s without
//!   ever blocking on workers: [`ServiceHandle::try_submit`] either
//!   admits the job and returns a [`JobTicket`] — a oneshot completion
//!   slot the caller can block on ([`JobTicket::join`]), poll
//!   ([`JobTicket::try_join`]), or `.await` (it implements
//!   [`std::future::Future`]) — or refuses with
//!   [`QitsError::QueueFull`] when the bounded queue is at depth.
//!   Results are delivered as they land, not in submission order.
//! * **Deadlines and cancellation.** A request may carry a deadline
//!   (expired jobs are shed at dequeue, counted in
//!   [`PoolStats::jobs_expired`]) and every ticket carries a
//!   [`CancelToken`]: tripping it sheds a queued job at dequeue and
//!   unwinds a running one at its next GC safepoint (see
//!   [`qits_tdd::cancel`]), either way resolving the ticket with
//!   [`QitsError::Cancelled`].
//! * **A fleet-wide result memo.** An optional [`ResultMemo`]
//!   (per-pool via [`PoolBuilder::memo_capacity`], or one
//!   [`std::sync::Arc`] shared across pools via [`PoolBuilder::memo`])
//!   caches `Ok` results keyed by a canonical hash of the spec *and* the
//!   job payload, so identical queries — from any client, on any worker —
//!   return the cached [`JobOutput`] without re-running the fixpoint.
//!   Hit/miss/insert counters surface in [`PoolStats::memo`].
//! * **Failures are values, isolated per job.** Every result is a
//!   `Result<JobOutput, QitsError>`. A malformed job errors through the
//!   engine's fallible API; a job that *panics* inside its worker is
//!   caught, surfaced as [`QitsError::JobFailure`], and the worker
//!   rebuilds its engine from the spec and keeps serving — a poisoned job
//!   never poisons the pool.
//!
//! Everything here compiles only because the whole session stack —
//! [`qits_tdd::TddManager`], [`crate::QuantumTransitionSystem`],
//! [`crate::Subspace`], [`Engine`] — is `Send` (asserted in
//! `tests/send_bounds.rs`): workers *move* their engines onto their
//! threads; nothing is shared but the queue and the stats slots.
//!
//! ```
//! use qits::{EnginePool, EngineSpec, Job};
//! use qits_circuit::generators;
//!
//! let spec = EngineSpec::new(generators::grover(3));
//! let pool = EnginePool::builder(spec).workers(2).build().unwrap();
//! let handles = pool.submit_batch(vec![Job::image(); 4]);
//! for h in handles {
//!     let out = h.join().unwrap();
//!     assert_eq!(out.image().unwrap().dim, 2);
//! }
//! let stats = pool.shutdown();
//! assert_eq!(stats.jobs_completed, 4);
//! ```

mod front;
mod memo;
pub mod proto;

pub use front::{JobRequest, JobTicket, Priority, ServiceHandle};
pub use memo::{MemoKey, MemoStats, ResultMemo};

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qits_circuit::generators::QtsSpec;
use qits_circuit::tensorize::StaticOrder;
use qits_circuit::Circuit;
use qits_num::Cplx;
use qits_tdd::{CancelToken, GcPolicy, ManagerStats, ReorderPolicy};
use qits_tensor::Var;

use crate::engine::{Auto, Engine, EngineBuilder, ImageStrategy};
use crate::error::{panic_detail, QitsError};
use crate::image::ImageStats;
use crate::mc::ReachabilityResult;
use crate::subspace::Subspace;

use front::Slot;

/// The caller's side of one submitted job — an alias for [`JobTicket`],
/// kept under the name the original blocking API used. Obtain the result
/// with [`JobTicket::join`]; dropping the handle abandons the result (the
/// job still runs and still counts in [`PoolStats`]).
pub type JobHandle = JobTicket;

// ----------------------------------------------------------------------
// The shared engine spec.
// ----------------------------------------------------------------------

/// Produces one boxed strategy per engine built from an [`EngineSpec`] —
/// each pool worker gets its own strategy object, so strategies need no
/// shared state and no `Sync` bound beyond the factory's own.
pub type StrategyFactory = Arc<dyn Fn() -> Box<dyn ImageStrategy> + Send + Sync>;

/// A cloneable, thread-shareable description of an [`Engine`] session:
/// every [`EngineBuilder`] knob plus the transition-system spec, with the
/// strategy held as a factory so each built engine owns a private copy.
///
/// This is the contract between an [`EnginePool`] and its workers — the
/// pool hands every worker the same spec, each worker builds (and, after
/// a job panic, rebuilds) its private engine from it — and it doubles as
/// the differential-testing baseline: [`EngineSpec::build`] constructs
/// exactly the serial engine a pool worker runs, so "pool result equals
/// fresh-serial-engine result" is a meaningful bit-for-bit statement.
#[derive(Clone)]
pub struct EngineSpec {
    system: QtsSpec,
    tolerance: f64,
    cache_capacity: Option<usize>,
    node_capacity: Option<usize>,
    gc_policy: Option<GcPolicy>,
    reorder: ReorderPolicy,
    static_order: StaticOrder,
    strategy: StrategyFactory,
    strategy_name: String,
}

impl fmt::Debug for EngineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSpec")
            .field("system", &self.system.name)
            .field("n_qubits", &self.system.n_qubits)
            .field("tolerance", &self.tolerance)
            .field("cache_capacity", &self.cache_capacity)
            .field("node_capacity", &self.node_capacity)
            .field("gc_policy", &self.gc_policy)
            .field("reorder", &self.reorder)
            .field("static_order", &self.static_order)
            .field("strategy", &self.strategy_name)
            .finish()
    }
}

impl EngineSpec {
    /// A spec with the builder defaults: default tolerance and cache
    /// capacity, GC off, the [`Auto`] strategy.
    pub fn new(system: QtsSpec) -> Self {
        EngineSpec {
            system,
            tolerance: qits_num::DEFAULT_TOLERANCE,
            cache_capacity: None,
            node_capacity: None,
            gc_policy: None,
            reorder: ReorderPolicy::Off,
            static_order: StaticOrder::Natural,
            strategy: Arc::new(|| Box::new(Auto::default())),
            strategy_name: Auto::default().name(),
        }
    }

    /// Weight tolerance of every built engine's manager.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Operation-cache bound of every built engine (`0` disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Node-store bound of every built engine (see
    /// [`EngineBuilder::node_capacity`]). A job that hits the bound fails
    /// with [`QitsError::ArenaExhausted`] — only that job; its worker and
    /// the pool keep serving.
    pub fn node_capacity(mut self, capacity: usize) -> Self {
        self.node_capacity = Some(capacity);
        self
    }

    /// GC policy installed into every built engine (`None`, the default,
    /// leaves collection off).
    pub fn gc_policy(mut self, policy: Option<GcPolicy>) -> Self {
        self.gc_policy = policy;
        self
    }

    /// Dynamic-reordering schedule of every built engine (see
    /// [`EngineBuilder::reorder`]). Pool workers own disjoint managers,
    /// so each worker sifts its private arena independently — one
    /// worker's pass never pauses another.
    pub fn reorder(mut self, reorder: ReorderPolicy) -> Self {
        self.reorder = reorder;
        self
    }

    /// Static variable-ordering heuristic of every built engine (see
    /// [`EngineBuilder::static_order`]).
    pub fn static_order(mut self, order: StaticOrder) -> Self {
        self.static_order = order;
        self
    }

    /// Session strategy of every built engine. The strategy is cloned
    /// per engine, so each worker dispatches through a private copy
    /// (`Sync` is only needed of the prototype held by the factory).
    pub fn strategy(mut self, strategy: impl ImageStrategy + Clone + Sync + 'static) -> Self {
        self.strategy_name = strategy.name();
        self.strategy = Arc::new(move || Box::new(strategy.clone()));
        self
    }

    /// The underlying transition-system spec.
    pub fn system(&self) -> &QtsSpec {
        &self.system
    }

    /// Name of the configured strategy (for logs and stats).
    pub fn strategy_name(&self) -> &str {
        &self.strategy_name
    }

    /// A canonical 128-bit fingerprint of everything that determines this
    /// spec's results: the full transition system (operations, Kraus
    /// sets, initial amplitudes), the numeric tolerance, both ordering
    /// knobs, the GC/reorder configuration, and the strategy name. Two
    /// specs with equal fingerprints produce interchangeable results, so
    /// this is the namespace half of every [`ResultMemo`] key — it is
    /// what keeps a fleet-wide memo from ever crossing distinct
    /// [`QtsSpec`]s.
    ///
    /// Deliberately conservative: knobs that *probably* don't change
    /// results (cache sizes, GC policy) are still folded in, trading memo
    /// hits across differently-configured pools for certainty.
    pub fn fingerprint(&self) -> u128 {
        let config = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.tolerance.to_bits(),
            self.cache_capacity,
            self.node_capacity,
            self.gc_policy,
            self.reorder,
            self.static_order,
        );
        memo::fnv128(&[
            format!("{:?}", self.system).as_bytes(),
            config.as_bytes(),
            self.strategy_name.as_bytes(),
        ])
    }

    fn builder(&self) -> EngineBuilder {
        let mut b = EngineBuilder::new()
            .tolerance(self.tolerance)
            .gc_policy(self.gc_policy)
            .reorder(self.reorder)
            .static_order(self.static_order)
            .strategy_boxed((self.strategy)());
        if let Some(cap) = self.cache_capacity {
            b = b.cache_capacity(cap);
        }
        if let Some(cap) = self.node_capacity {
            b = b.node_capacity(cap);
        }
        b
    }

    /// Builds one serial engine from the spec — the exact session a pool
    /// worker owns, minus the pool's stats sink. Use this as the
    /// reference when differential-testing pool results.
    pub fn build(&self) -> Result<Engine, QitsError> {
        let mut engine = self.builder().build_from_spec(&self.system)?;
        engine.set_fingerprint(self.fingerprint());
        Ok(engine)
    }

    /// Builds a worker engine wired to a per-image stats sink.
    fn build_with_sink(
        &self,
        sink: impl FnMut(&str, &ImageStats) + Send + 'static,
    ) -> Result<Engine, QitsError> {
        let mut engine = self
            .builder()
            .stats_sink(sink)
            .build_from_spec(&self.system)?;
        engine.set_fingerprint(self.fingerprint());
        Ok(engine)
    }
}

// ----------------------------------------------------------------------
// Jobs and their outputs.
// ----------------------------------------------------------------------

/// A typed unit of work for an [`EnginePool`].
///
/// Jobs are **manager-independent by construction**: TDD edges only mean
/// something relative to the manager that made them, so a job describes
/// its inputs abstractly (product-state amplitude rows, circuits) and the
/// worker materialises them on its own manager. That is what lets one
/// `Job` value run identically on any worker — or on a fresh serial
/// engine, which is how the differential suite checks the pool.
#[derive(Debug, Clone)]
pub enum Job {
    /// Compute `T(S0)`, the image of the system's initial subspace, with
    /// the worker's session strategy.
    Image {
        /// Also evaluate every output basis ket densely (all `2^n`
        /// amplitudes, qubit 0 as the most significant bit) into
        /// [`ImageOutcome::amplitudes`] — the manager-independent
        /// representation differential tests compare bit-for-bit. Leave
        /// `false` for throughput workloads; the dense pass costs
        /// `O(dim * 2^n)`.
        densify: bool,
    },
    /// Compute the reachable subspace by fixpoint iteration.
    Reachability {
        /// Iteration bound handed to [`Engine::reachable_space`].
        max_iterations: usize,
    },
    /// Check the safety property "every reachable state stays inside the
    /// subspace spanned by `states`".
    Invariant {
        /// Register width the invariant claims to live on. If it differs
        /// from the system's, the job fails cleanly with
        /// [`QitsError::RegisterMismatch`] — the canonical malformed job.
        n_qubits: u32,
        /// Product states spanning the invariant, one `(alpha, beta)`
        /// amplitude pair per qubit per state (the [`QtsSpec`]
        /// convention). A row whose length differs from `n_qubits`
        /// panics in the worker and surfaces as
        /// [`QitsError::JobFailure`], isolated to this job.
        states: Vec<Vec<(Cplx, Cplx)>>,
        /// Iteration bound for the underlying reachability run.
        max_iterations: usize,
    },
    /// Decide whether two circuits implement the same operator.
    Equivalence {
        /// First circuit.
        a: Circuit,
        /// Second circuit.
        b: Circuit,
        /// Compare up to global phase instead of exactly.
        up_to_phase: bool,
    },
}

impl Job {
    /// An image job without the dense snapshot (the throughput shape).
    pub fn image() -> Job {
        Job::Image { densify: false }
    }

    /// A reachability job.
    pub fn reachability(max_iterations: usize) -> Job {
        Job::Reachability { max_iterations }
    }

    /// An invariant job over product states on `n_qubits` wires.
    pub fn invariant(n_qubits: u32, states: Vec<Vec<(Cplx, Cplx)>>, max_iterations: usize) -> Job {
        Job::Invariant {
            n_qubits,
            states,
            max_iterations,
        }
    }

    /// An exact-equivalence job.
    pub fn equivalence(a: Circuit, b: Circuit) -> Job {
        Job::Equivalence {
            a,
            b,
            up_to_phase: false,
        }
    }
}

/// Result of an image job.
#[derive(Debug, Clone)]
pub struct ImageOutcome {
    /// Dimension of the computed image.
    pub dim: usize,
    /// Dense amplitudes of every output basis ket (empty unless the job
    /// asked to densify): `amplitudes[i][b]` is basis vector `i` at
    /// computational-basis index `b`, qubit 0 most significant.
    pub amplitudes: Vec<Vec<Cplx>>,
    /// The kernel's measurements.
    pub stats: ImageStats,
}

/// Manager-independent summary of a reachability run (the
/// [`ReachabilityResult`] minus its subspace, which lives on the worker's
/// private manager and cannot leave it).
#[derive(Debug, Clone)]
pub struct ReachOutcome {
    /// Dimension of the reachable subspace.
    pub dim: usize,
    /// Image computations performed.
    pub iterations: usize,
    /// Whether the fixpoint was reached.
    pub converged: bool,
    /// Garbage collections performed by the driver.
    pub collections: usize,
    /// Nodes reclaimed by those collections.
    pub reclaimed_nodes: u64,
    /// Per-iteration kernel measurements.
    pub stats: Vec<ImageStats>,
}

impl From<ReachabilityResult> for ReachOutcome {
    fn from(r: ReachabilityResult) -> Self {
        ReachOutcome {
            dim: r.space.dim(),
            iterations: r.iterations,
            converged: r.converged,
            collections: r.collections,
            reclaimed_nodes: r.reclaimed_nodes,
            stats: r.stats,
        }
    }
}

/// What a completed job returns, one variant per [`Job`] variant.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// From [`Job::Image`]. Boxed: the outcome carries full [`ImageStats`]
    /// (including the reordering counters), which would otherwise dwarf
    /// the other variants.
    Image(Box<ImageOutcome>),
    /// From [`Job::Reachability`].
    Reachability(ReachOutcome),
    /// From [`Job::Invariant`].
    Invariant {
        /// Whether every reachable state stays inside the invariant.
        holds: bool,
        /// The witnessing reachability run.
        reach: ReachOutcome,
    },
    /// From [`Job::Equivalence`].
    Equivalence {
        /// The verdict.
        equivalent: bool,
    },
}

impl JobOutput {
    /// The image outcome, if this was an image job.
    pub fn image(&self) -> Option<&ImageOutcome> {
        match self {
            JobOutput::Image(o) => Some(o),
            _ => None,
        }
    }

    /// The reachability outcome, if this was a reachability job.
    pub fn reachability(&self) -> Option<&ReachOutcome> {
        match self {
            JobOutput::Reachability(o) => Some(o),
            _ => None,
        }
    }

    /// The invariant verdict, if this was an invariant job.
    pub fn invariant_holds(&self) -> Option<bool> {
        match self {
            JobOutput::Invariant { holds, .. } => Some(*holds),
            _ => None,
        }
    }

    /// The equivalence verdict, if this was an equivalence job.
    pub fn equivalent(&self) -> Option<bool> {
        match self {
            JobOutput::Equivalence { equivalent } => Some(*equivalent),
            _ => None,
        }
    }
}

/// Runs one job on an engine — the single semantics shared by pool
/// workers and the serial baseline. Public so differential tests can run
/// the *same function* on a fresh [`EngineSpec::build`] session and
/// compare outputs with the pool's, bit for bit.
pub fn run_job(engine: &mut Engine, job: &Job) -> Result<JobOutput, QitsError> {
    match job {
        Job::Image { densify } => {
            let (img, stats) = engine.image()?;
            let amplitudes = if *densify {
                densify_basis(engine, &img)?
            } else {
                Vec::new()
            };
            Ok(JobOutput::Image(Box::new(ImageOutcome {
                dim: img.dim(),
                amplitudes,
                stats,
            })))
        }
        Job::Reachability { max_iterations } => {
            let r = engine.reachable_space(*max_iterations)?;
            Ok(JobOutput::Reachability(r.into()))
        }
        Job::Invariant {
            n_qubits,
            states,
            max_iterations,
        } => {
            // Materialise the invariant on the worker's manager. A row of
            // the wrong length panics in `product_ket` (surfaced by the
            // pool as JobFailure); a coherent-but-mismatched width errors
            // in `check_invariant` as RegisterMismatch.
            let vars = Subspace::ket_vars(*n_qubits);
            let mut inv = Subspace::zero(*n_qubits);
            for amps in states {
                let ket = engine.manager_mut().product_ket(&vars, amps);
                inv.absorb(engine.manager_mut(), ket);
            }
            let (holds, r) = engine.check_invariant(&inv, *max_iterations)?;
            Ok(JobOutput::Invariant {
                holds,
                reach: r.into(),
            })
        }
        Job::Equivalence { a, b, up_to_phase } => {
            let equivalent = if *up_to_phase {
                engine.equivalent_up_to_phase(a, b)?
            } else {
                engine.equivalent(a, b)?
            };
            Ok(JobOutput::Equivalence { equivalent })
        }
    }
}

/// Evaluates every basis ket of a subspace densely; see
/// [`Job::Image::densify`] for the index convention.
fn densify_basis(engine: &mut Engine, img: &Subspace) -> Result<Vec<Vec<Cplx>>, QitsError> {
    let n = img.n_qubits();
    if n >= usize::BITS {
        return Err(QitsError::DimensionOverflow { bits: n });
    }
    let vars = Subspace::ket_vars(n);
    let dim = 1usize << n;
    let mut rows = Vec::with_capacity(img.dim());
    for &ket in img.basis() {
        let mut row = Vec::with_capacity(dim);
        for b in 0..dim {
            let asn: BTreeMap<Var, bool> = vars
                .iter()
                .enumerate()
                .map(|(q, &v)| (v, (b >> (n as usize - 1 - q)) & 1 == 1))
                .collect();
            row.push(engine.manager().eval(ket, &asn));
        }
        rows.push(row);
    }
    Ok(rows)
}

// ----------------------------------------------------------------------
// Stats.
// ----------------------------------------------------------------------

/// Per-worker counters, snapshotted after every job that worker serves.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs this worker finished with `Ok` (memo hits it served included).
    pub jobs_completed: u64,
    /// Jobs this worker finished with `Err` (malformed jobs and isolated
    /// panics alike; cancelled and deadline-shed jobs count separately).
    pub jobs_failed: u64,
    /// Jobs this worker shed or unwound because their [`CancelToken`]
    /// tripped.
    pub jobs_cancelled: u64,
    /// Jobs this worker shed at dequeue because their deadline had passed.
    pub jobs_expired: u64,
    /// Image computations this worker ran (fixpoint iterations included),
    /// counted through the engine's stats sink.
    pub images: u64,
    /// Those image computations' stats, [`ImageStats::absorb`]-merged.
    pub image: ImageStats,
    /// The worker manager's lifetime counters as of its last finished job
    /// (safepoints, reclaim, cache movement).
    pub manager: ManagerStats,
}

/// Aggregated pool statistics: the per-worker breakdown plus fleet
/// totals, where every total is the [`ManagerStats::absorb`] /
/// [`ImageStats::absorb`] sum of the per-worker rows — the invariant the
/// stats test suite pins down.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// One row per worker, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Jobs accepted by the pool so far (admission-refused jobs are not
    /// accepted and count in [`PoolStats::jobs_rejected`] instead).
    pub jobs_submitted: u64,
    /// Jobs finished with `Ok`: the per-worker sums plus jobs completed
    /// straight from the memo at submission, which never reach a worker.
    pub jobs_completed: u64,
    /// Jobs finished with `Err` across all workers (cancelled and
    /// deadline-shed jobs count separately).
    pub jobs_failed: u64,
    /// Jobs refused at submission because the bounded queue was at depth
    /// ([`QitsError::QueueFull`]).
    pub jobs_rejected: u64,
    /// Jobs resolved with [`QitsError::Cancelled`] — shed at dequeue or
    /// unwound mid-run at a GC safepoint.
    pub jobs_cancelled: u64,
    /// Jobs shed at dequeue with [`QitsError::DeadlineExpired`].
    pub jobs_expired: u64,
    /// Jobs currently queued (not yet picked up by a worker).
    pub queue_depth: usize,
    /// The result memo's counters (all zero when no memo is configured).
    /// A shared memo reports its fleet-wide totals, not per-pool ones.
    pub memo: MemoStats,
    /// Total image computations across all workers.
    pub images: u64,
    /// All workers' image stats, absorbed: counters sum, peaks max, and —
    /// because worker arenas are disjoint — the end-of-run snapshot
    /// fields (`output_dim`, `live_nodes`, `allocated_nodes`) are **sums
    /// of the per-worker rows** (each row's snapshot is that worker's
    /// last image), matching how [`ManagerStats::absorb`] treats
    /// `live_after_last_gc`.
    pub image: ImageStats,
    /// All workers' manager counters, absorbed (counters sum, peaks max).
    pub manager: ManagerStats,
}

impl PoolStats {
    fn aggregate(
        workers: Vec<WorkerStats>,
        jobs_submitted: u64,
        queue_depth: usize,
        jobs_rejected: u64,
        memo_completed: u64,
        memo: MemoStats,
    ) -> PoolStats {
        let mut jobs_completed = memo_completed;
        let mut jobs_failed = 0;
        let mut jobs_cancelled = 0;
        let mut jobs_expired = 0;
        let mut images = 0;
        let mut image = ImageStats::default();
        let mut manager = ManagerStats::default();
        for w in &workers {
            jobs_completed += w.jobs_completed;
            jobs_failed += w.jobs_failed;
            jobs_cancelled += w.jobs_cancelled;
            jobs_expired += w.jobs_expired;
            images += w.images;
            image.absorb(&w.image);
            manager.absorb(&w.manager);
        }
        // `ImageStats::absorb`'s take-the-later rule for snapshot fields
        // is right for a sequential per-worker rollup but not across
        // disjoint worker arenas: there, the fleet figure is the sum of
        // each worker's latest snapshot.
        image.output_dim = workers.iter().map(|w| w.image.output_dim).sum();
        image.live_nodes = workers.iter().map(|w| w.image.live_nodes).sum();
        image.allocated_nodes = workers.iter().map(|w| w.image.allocated_nodes).sum();
        PoolStats {
            workers,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_rejected,
            jobs_cancelled,
            jobs_expired,
            queue_depth,
            memo,
            images,
            image,
            manager,
        }
    }
}

/// Callback receiving the final [`PoolStats`] when the pool shuts down.
pub type PoolStatsSink = Arc<dyn Fn(&PoolStats) + Send + Sync>;

// ----------------------------------------------------------------------
// The queue.
// ----------------------------------------------------------------------

/// One admitted job riding the queue: the payload plus its completion
/// slot, cancellation token, absolute deadline, and (when a memo is
/// configured) its memo key.
pub(crate) struct Task {
    job: Job,
    slot: Arc<Slot>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    memo_key: Option<MemoKey>,
}

impl Drop for Task {
    /// Belt and braces: a task dropped without a delivery (queue drained
    /// at shutdown, worker unwound outside the per-job catch) resolves
    /// its ticket with a failure instead of leaving a joiner blocked
    /// forever. On the normal path the worker has already delivered and
    /// this is a no-op ([`Slot::deliver`] is idempotent).
    fn drop(&mut self) {
        self.slot.deliver(Err(QitsError::JobFailure {
            detail: "the pool shut down before this job could run".to_string(),
        }));
    }
}

#[derive(Default)]
struct QueueState {
    /// Tasks enqueued and not yet popped. Incremented *before* the shard
    /// push so a concurrent pop can never underflow it; the worker side
    /// uses a saturating decrement and re-checks the shards on wakeup.
    pending: usize,
    shutdown: bool,
}

pub(crate) struct Shared {
    /// One shard per worker; each shard holds one FIFO lane per
    /// [`Priority`].
    shards: Vec<Mutex<[VecDeque<Task>; Priority::LANES]>>,
    state: Mutex<QueueState>,
    available: Condvar,
    workers: Vec<Mutex<WorkerStats>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    /// Jobs completed straight from the memo at submission (they never
    /// reach a worker, so no worker row counts them).
    memo_completed: AtomicU64,
    next_shard: AtomicUsize,
    queue_depth: Option<usize>,
    memo: Option<Arc<ResultMemo>>,
    spec_fingerprint: u128,
    /// The snapshot every worker engine is stamped from, kept so a
    /// post-panic replacement engine is warm-started identically to the
    /// worker it replaces.
    warm_snapshot: Option<Arc<crate::store::Snapshot>>,
}

impl Shared {
    /// Admits one request or refuses it without enqueueing anything.
    /// This is the whole non-blocking submission path: memo fast-path,
    /// bounded admission, priority-lane enqueue, worker wakeup.
    pub(crate) fn try_submit(self: &Arc<Self>, req: JobRequest) -> Result<JobTicket, QitsError> {
        let (job, priority, deadline, cancel) = req.into_parts();
        let slot = Slot::new();
        let memo_key = self
            .memo
            .as_ref()
            .map(|_| MemoKey::for_job(self.spec_fingerprint, &job));
        // Memo fast path: an identical query already completed somewhere
        // in the fleet. The ticket resolves before it is even returned —
        // no queue traffic, no worker, no admission pressure.
        if let (Some(memo), Some(key)) = (&self.memo, &memo_key) {
            if let Some(out) = memo.get(key) {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                self.memo_completed.fetch_add(1, Ordering::Relaxed);
                slot.deliver(Ok(out));
                return Ok(JobTicket::new(slot, cancel));
            }
        }
        {
            let mut st = self.state.lock().unwrap();
            if st.shutdown {
                return Err(QitsError::JobFailure {
                    detail: "the pool is shut down".to_string(),
                });
            }
            if let Some(depth) = self.queue_depth {
                if st.pending >= depth {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(QitsError::QueueFull { depth });
                }
            }
            st.pending += 1;
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let deadline = deadline.and_then(|d| Instant::now().checked_add(d));
        let task = Task {
            job,
            slot: slot.clone(),
            cancel: cancel.clone(),
            deadline,
            memo_key,
        };
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().unwrap()[priority.lane()].push_back(task);
        self.available.notify_one();
        Ok(JobTicket::new(slot, cancel))
    }

    /// Pops the next task for worker `index`: lane-major (every shard's
    /// high lane before any shard's normal lane, so priority is global,
    /// not per-shard), own shard first within a lane, then stealing in
    /// ring order. `None` = drained and shut down.
    fn next_task(&self, index: usize) -> Option<Task> {
        loop {
            let n = self.shards.len();
            for lane in 0..Priority::LANES {
                for offset in 0..n {
                    let task = self.shards[(index + offset) % n].lock().unwrap()[lane].pop_front();
                    if let Some(t) = task {
                        let mut st = self.state.lock().unwrap();
                        st.pending = st.pending.saturating_sub(1);
                        return Some(t);
                    }
                }
            }
            let mut st = self.state.lock().unwrap();
            loop {
                if st.pending > 0 {
                    // Re-scan the shards; a submit may still be mid-push,
                    // in which case the outer loop comes straight back
                    // here and waits again.
                    break;
                }
                if st.shutdown {
                    return None;
                }
                st = self.available.wait(st).unwrap();
            }
        }
    }

    /// A live snapshot of the aggregated pool statistics; shared by
    /// [`EnginePool::stats`] and [`ServiceHandle::stats`].
    pub(crate) fn stats_snapshot(&self) -> PoolStats {
        let workers = self
            .workers
            .iter()
            .map(|w| w.lock().unwrap().clone())
            .collect();
        let queue_depth = self.state.lock().unwrap().pending;
        PoolStats::aggregate(
            workers,
            self.submitted.load(Ordering::Relaxed),
            queue_depth,
            self.rejected.load(Ordering::Relaxed),
            self.memo_completed.load(Ordering::Relaxed),
            self.memo.as_ref().map(|m| m.stats()).unwrap_or_default(),
        )
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

// ----------------------------------------------------------------------
// The pool.
// ----------------------------------------------------------------------

/// A fixed-size pool of [`Engine`]-owning worker threads behind a sharded
/// priority queue. See the [`crate::serve`] docs for the design and
/// [`EnginePool::builder`] to construct one; [`EnginePool::handle`] hands
/// out the cloneable async submission front.
pub struct EnginePool {
    shared: Arc<Shared>,
    spec: EngineSpec,
    handles: Vec<JoinHandle<()>>,
    sink: Option<PoolStatsSink>,
    finished: bool,
}

impl fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnginePool")
            .field("workers", &self.shared.workers.len())
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// Configures and constructs an [`EnginePool`].
pub struct PoolBuilder {
    spec: EngineSpec,
    workers: usize,
    sink: Option<PoolStatsSink>,
    queue_depth: Option<usize>,
    memo: Option<Arc<ResultMemo>>,
    warm_snapshot: Option<Arc<crate::store::Snapshot>>,
}

impl PoolBuilder {
    /// Number of worker threads (clamped to at least 1). Defaults to the
    /// machine's available parallelism.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Installs a callback that receives the final aggregated
    /// [`PoolStats`] when the pool shuts down.
    pub fn stats_sink(mut self, sink: impl Fn(&PoolStats) + Send + Sync + 'static) -> Self {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Bounds the queue: once `depth` jobs are pending (queued, not yet
    /// dequeued), further submissions are refused with
    /// [`QitsError::QueueFull`] instead of growing the backlog without
    /// limit — the backpressure a latency-bound service needs. Clamped to
    /// at least 1; the default is unbounded (the original batch-serving
    /// behaviour).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth.max(1));
        self
    }

    /// Installs a **shared** result memo: pass the same
    /// [`std::sync::Arc`] to several pools (over equal or different
    /// specs) and they share one fleet-wide cache. Keys embed
    /// [`EngineSpec::fingerprint`], so pools over distinct specs share
    /// capacity but never results.
    pub fn memo(mut self, memo: Arc<ResultMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Installs a fresh pool-private result memo bounded to `capacity`
    /// entries (sugar over [`PoolBuilder::memo`]).
    pub fn memo_capacity(self, capacity: usize) -> Self {
        self.memo(Arc::new(ResultMemo::new(capacity)))
    }

    /// Warm-starts the pool from a snapshot file written by
    /// [`crate::Engine::save_snapshot`] or
    /// [`ServiceHandle::save_snapshot`]:
    ///
    /// * every worker engine (including post-panic replacements) is
    ///   stamped from the snapshot's TDD dump, so its unique table and
    ///   weight table start populated instead of cold;
    /// * the snapshot's memo entries are preloaded into the pool's
    ///   result memo as **warm** entries at [`PoolBuilder::build`] time —
    ///   their hits count in [`MemoStats::warm_hits`]. If no memo was
    ///   configured, one is created sized to hold them.
    ///
    /// The snapshot's spec fingerprint (when recorded) must match this
    /// builder's spec; a mismatch is
    /// [`QitsError::StoreSpecMismatch`] — a snapshot only ever warms the
    /// configuration that produced it.
    pub fn warm_start(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, QitsError> {
        let snap = crate::store::Snapshot::read_from(path)?;
        if let Some(found) = snap.spec_fingerprint {
            let expected = self.spec.fingerprint();
            if found != expected {
                return Err(QitsError::StoreSpecMismatch { expected, found });
            }
        }
        self.warm_snapshot = Some(Arc::new(snap));
        Ok(self)
    }

    /// Builds the pool: constructs every worker engine from the spec *on
    /// the calling thread* — so a malformed spec is an `Err` here, before
    /// any thread exists — then moves each engine onto its worker.
    pub fn build(mut self) -> Result<EnginePool, QitsError> {
        let n = self.workers;
        if let Some(snap) = &self.warm_snapshot {
            if !snap.memo.is_empty() {
                let memo = self
                    .memo
                    .get_or_insert_with(|| Arc::new(ResultMemo::new(snap.memo.len().max(16))));
                crate::store::preload_memo(memo, &snap.memo)?;
            }
        }
        let shared = Arc::new(Shared {
            shards: (0..n).map(|_| Mutex::new(Default::default())).collect(),
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            workers: (0..n).map(|_| Mutex::new(WorkerStats::default())).collect(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            memo_completed: AtomicU64::new(0),
            next_shard: AtomicUsize::new(0),
            queue_depth: self.queue_depth,
            memo: self.memo,
            spec_fingerprint: self.spec.fingerprint(),
            warm_snapshot: self.warm_snapshot,
        });
        let mut engines = Vec::with_capacity(n);
        for index in 0..n {
            engines.push(build_worker_engine(&self.spec, &shared, index)?);
        }
        let handles = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| {
                let shared = shared.clone();
                let spec = self.spec.clone();
                std::thread::Builder::new()
                    .name(format!("qits-pool-{index}"))
                    .spawn(move || worker_main(shared, spec, index, engine))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Ok(EnginePool {
            shared,
            spec: self.spec,
            handles,
            sink: self.sink,
            finished: false,
        })
    }
}

impl EnginePool {
    /// Starts configuring a pool over the given engine spec.
    pub fn builder(spec: EngineSpec) -> PoolBuilder {
        PoolBuilder {
            spec,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            sink: None,
            queue_depth: None,
            memo: None,
            warm_snapshot: None,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers.len()
    }

    /// The shared spec workers build their engines from.
    pub fn spec(&self) -> &EngineSpec {
        &self.spec
    }

    /// A cloneable, `Send` submission front onto this pool: hand clones
    /// to async tasks (or other threads) and they submit, poll, and read
    /// live stats without touching the pool object. Handles do not keep
    /// the workers alive — after [`EnginePool::shutdown`] a handle's
    /// submissions fail cleanly.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle::new(self.shared.clone())
    }

    /// Enqueues one job at [`Priority::Normal`] and returns its handle.
    /// Never blocks on workers. If the queue is bounded and full, the
    /// returned handle resolves to [`QitsError::QueueFull`] — use
    /// [`EnginePool::try_submit`] (or a [`ServiceHandle`]) to observe the
    /// refusal as a submission-time error instead.
    pub fn submit(&self, job: Job) -> JobHandle {
        match self.try_submit(job) {
            Ok(ticket) => ticket,
            Err(e) => JobTicket::failed(e),
        }
    }

    /// Admits one request ([`Job`] or [`JobRequest`]) or refuses it with
    /// [`QitsError::QueueFull`] / a shutdown failure, without blocking.
    pub fn try_submit(&self, req: impl Into<JobRequest>) -> Result<JobTicket, QitsError> {
        self.shared.try_submit(req.into())
    }

    /// Enqueues a batch, one handle per job, in order.
    pub fn submit_batch(&self, jobs: Vec<Job>) -> Vec<JobHandle> {
        jobs.into_iter().map(|j| self.submit(j)).collect()
    }

    /// A live snapshot of the aggregated pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.shared.stats_snapshot()
    }

    /// Shuts the pool down: **drains the queue** (every job already
    /// submitted still runs and its handle still resolves), joins every
    /// worker, reports the final stats to the configured sink, and
    /// returns them. Dropping the pool does the same, minus the return
    /// value. Idempotent: a second shutdown (however reached) just
    /// returns the stats snapshot again without re-joining or re-sinking.
    pub fn shutdown(mut self) -> PoolStats {
        self.finish()
    }

    fn finish(&mut self) -> PoolStats {
        if self.finished {
            return self.shared.stats_snapshot();
        }
        self.finished = true;
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Belt and braces: if a worker died outside a job, tasks could
        // still sit in its shard. Dropping them resolves their tickets
        // with a failure (see `Task::drop`) so no joiner blocks forever.
        for shard in &self.shared.shards {
            let mut lanes = shard.lock().unwrap();
            for lane in lanes.iter_mut() {
                lane.clear();
            }
        }
        self.shared.state.lock().unwrap().pending = 0;
        let stats = self.shared.stats_snapshot();
        if let Some(sink) = &self.sink {
            sink(&stats);
        }
        stats
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Builds worker `index`'s engine, wiring its stats sink into the
/// worker's shared stats slot and warm-starting it when the pool was
/// built over a snapshot. The warm start is deterministic over the
/// immutable shared snapshot, so a post-panic rebuild that reaches this
/// path succeeds exactly as the original build did.
fn build_worker_engine(
    spec: &EngineSpec,
    shared: &Arc<Shared>,
    index: usize,
) -> Result<Engine, QitsError> {
    let slot = shared.clone();
    let mut engine = spec.build_with_sink(move |_, stats| {
        let mut w = slot.workers[index].lock().unwrap();
        w.images += 1;
        w.image.absorb(stats);
    })?;
    if let Some(snap) = &shared.warm_snapshot {
        engine.warm_start(snap)?;
    }
    Ok(engine)
}

fn worker_main(shared: Arc<Shared>, spec: EngineSpec, index: usize, mut engine: Engine) {
    // Counters of engines this worker retired after a job panic. The
    // published manager snapshot is always `retired + current engine`, so
    // fleet totals stay monotonic across rebuilds instead of resetting to
    // a fresh manager's zeros.
    let mut retired = ManagerStats::default();
    while let Some(task) = shared.next_task(index) {
        // Shed without running: a token tripped while the job queued, or
        // its deadline passed — either way the fixpoint never starts.
        if task.cancel.is_cancelled() {
            shared.workers[index].lock().unwrap().jobs_cancelled += 1;
            task.slot.deliver(Err(QitsError::Cancelled));
            continue;
        }
        if task.deadline.is_some_and(|d| Instant::now() >= d) {
            shared.workers[index].lock().unwrap().jobs_expired += 1;
            task.slot.deliver(Err(QitsError::DeadlineExpired));
            continue;
        }
        // Second memo probe, at dequeue: a duplicate submitted earlier
        // may have completed while this copy sat in the queue. Misses are
        // counted here — and only here, so a job probed at both ends
        // still counts once.
        if let (Some(memo), Some(key)) = (&shared.memo, &task.memo_key) {
            if let Some(out) = memo.get(key) {
                shared.workers[index].lock().unwrap().jobs_completed += 1;
                task.slot.deliver(Ok(out));
                continue;
            }
            memo.record_miss();
        }
        // The job's cancellation token rides the worker session for
        // exactly this job: every GC safepoint the computation polls
        // checks it. Cleared on every path afterwards — the next job
        // must not inherit a tripped token.
        engine.set_cancel_token(Some(task.cancel.clone()));
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&mut engine, &task.job)));
        engine.set_cancel_token(None);
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => {
                // The panic may have unwound mid-mutation, leaving the
                // session in an unknown state: bank its counters and
                // rebuild it from the spec. The spec built every worker
                // engine once already, and building is deterministic, so
                // this cannot fail.
                retired.absorb(&engine.manager().stats());
                engine = build_worker_engine(&spec, &shared, index)
                    .expect("rebuilding a worker engine from an already-validated spec");
                Err(QitsError::JobFailure {
                    detail: panic_detail(payload.as_ref()),
                })
            }
        };
        if let (Ok(out), Some(memo), Some(key)) = (&result, &shared.memo, &task.memo_key) {
            memo.insert(*key, out);
        }
        {
            let mut w = shared.workers[index].lock().unwrap();
            match &result {
                Ok(_) => w.jobs_completed += 1,
                Err(QitsError::Cancelled) => w.jobs_cancelled += 1,
                Err(_) => w.jobs_failed += 1,
            }
            let mut snapshot = retired;
            snapshot.absorb(&engine.manager().stats());
            w.manager = snapshot;
        }
        task.slot.deliver(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::generators;

    fn grover_spec() -> EngineSpec {
        EngineSpec::new(generators::grover(3))
    }

    #[test]
    fn pool_serves_a_batch_of_image_jobs() {
        let pool = EnginePool::builder(grover_spec())
            .workers(2)
            .build()
            .unwrap();
        let handles = pool.submit_batch(vec![Job::image(); 6]);
        for h in handles {
            let out = h.join().unwrap();
            // Grover's initial subspace is invariant: dim 2.
            assert_eq!(out.image().unwrap().dim, 2);
        }
        let stats = pool.shutdown();
        assert_eq!(stats.jobs_submitted, 6);
        assert_eq!(stats.jobs_completed, 6);
        assert_eq!(stats.jobs_failed, 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.images, 6);
    }

    #[test]
    fn arena_exhaustion_fails_the_job_not_the_pool() {
        // Clamp every worker's node store to exactly what building the
        // session uses (build is deterministic), so the first image
        // computation on any worker exhausts it.
        let probe = grover_spec().build().unwrap();
        let cap = probe.manager().arena_len();
        drop(probe);
        let pool = EnginePool::builder(grover_spec().node_capacity(cap))
            .workers(2)
            .build()
            .unwrap();
        let handles = pool.submit_batch(vec![Job::image(); 4]);
        for h in handles {
            let err = h.join().unwrap_err();
            assert!(
                matches!(err, QitsError::ArenaExhausted { .. }),
                "expected a typed exhaustion error, got {err:?}"
            );
        }
        // Every failure was a value delivered through the job's own
        // handle; the workers never died and the pool tears down cleanly.
        let stats = pool.shutdown();
        assert_eq!(stats.jobs_failed, 4);
        assert_eq!(stats.jobs_completed, 0);
    }

    #[test]
    fn malformed_spec_is_an_err_at_build_not_a_thread_death() {
        let spec = EngineSpec::new(qits_circuit::generators::QtsSpec {
            name: "empty".into(),
            n_qubits: 0,
            operations: vec![],
            initial_states: vec![],
        });
        let err = EnginePool::builder(spec).workers(2).build().unwrap_err();
        assert_eq!(err, QitsError::ZeroQubitSystem);
    }

    #[test]
    fn dropping_a_handle_abandons_the_result_not_the_job() {
        let pool = EnginePool::builder(grover_spec())
            .workers(1)
            .build()
            .unwrap();
        drop(pool.submit(Job::image()));
        let kept = pool.submit(Job::image());
        assert!(kept.join().is_ok());
        let stats = pool.shutdown();
        assert_eq!(stats.jobs_completed, 2, "the abandoned job still ran");
    }

    #[test]
    fn try_join_polls_without_blocking() {
        let pool = EnginePool::builder(grover_spec())
            .workers(1)
            .build()
            .unwrap();
        let mut h = pool.submit(Job::image());
        loop {
            if let Some(r) = h.try_join() {
                assert!(r.is_ok());
                break;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn workers_default_is_at_least_one() {
        let pool = EnginePool::builder(grover_spec())
            .workers(0)
            .build()
            .unwrap();
        assert_eq!(pool.workers(), 1);
        assert!(pool.submit(Job::image()).join().is_ok());
    }

    #[test]
    fn pool_workers_reorder_their_private_arenas() {
        // Reordering through the spec: every worker runs its own sifting
        // passes on its disjoint manager, the per-worker counters land in
        // WorkerStats.manager, and the fleet total absorbs them.
        let spec = grover_spec()
            .gc_policy(Some(GcPolicy::aggressive()))
            .reorder(ReorderPolicy::EveryCollection);
        let pool = EnginePool::builder(spec).workers(2).build().unwrap();
        let handles = pool.submit_batch(vec![Job::image(); 4]);
        for h in handles {
            assert_eq!(h.join().unwrap().image().unwrap().dim, 2);
        }
        let stats = pool.shutdown();
        assert_eq!(stats.jobs_failed, 0);
        assert!(
            stats.manager.sift_passes > 0,
            "forced reordering must run in the workers: {:?}",
            stats.manager
        );
        let per_worker: u64 = stats.workers.iter().map(|w| w.manager.sift_passes).sum();
        assert_eq!(stats.manager.sift_passes, per_worker);
    }

    #[test]
    fn spec_debug_names_the_strategy() {
        let spec = grover_spec().strategy(crate::Strategy::Basic);
        let text = format!("{spec:?}");
        assert!(text.contains("basic"), "{text}");
        assert!(text.contains("Grover3"), "{text}");
    }

    #[test]
    fn spec_fingerprint_separates_semantically_distinct_specs() {
        let a = grover_spec();
        assert_eq!(a.fingerprint(), grover_spec().fingerprint());
        let other_system = EngineSpec::new(generators::ghz(3));
        assert_ne!(a.fingerprint(), other_system.fingerprint());
        let other_tol = grover_spec().tolerance(1e-7);
        assert_ne!(a.fingerprint(), other_tol.fingerprint());
        let other_strategy = grover_spec().strategy(crate::Strategy::Basic);
        assert_ne!(a.fingerprint(), other_strategy.fingerprint());
    }

    #[test]
    fn shutdown_is_idempotent_through_drop() {
        // `shutdown` consumes the pool, but `Drop` runs `finish` again;
        // the flag makes the second pass a pure snapshot instead of a
        // re-join/re-drain that used to rely on drain ordering.
        let calls = Arc::new(AtomicU64::new(0));
        let seen = calls.clone();
        let pool = EnginePool::builder(grover_spec())
            .workers(1)
            .stats_sink(move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
            })
            .build()
            .unwrap();
        pool.submit(Job::image()).join().unwrap();
        let stats = pool.shutdown();
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "the sink must fire exactly once across shutdown + drop"
        );
    }
}
