//! A JSON-lines serving protocol over [`ServiceHandle`] — the wire shape
//! of the `qits-serve` binary.
//!
//! One request per input line, one event per output line, everything
//! UTF-8 JSON. Results **stream in completion order**, not request
//! order: the server writes each job's `result` event the moment the
//! job finishes, so a long reachability fixpoint never holds up the
//! short image queries submitted after it.
//!
//! # Requests
//!
//! | line | effect |
//! |---|---|
//! | `{"op":"submit","id":"q1","job":{...}}` | admit a job; optional `"priority":"high"\|"normal"\|"low"`, `"deadline_ms":250` |
//! | `{"op":"cancel","id":"q1"}` | trip job `q1`'s cancellation token |
//! | `{"op":"stats"}` | emit a `stats` event with live pool counters |
//! | `{"op":"save","path":"memo.qsnap"}` | spill the result memo to a snapshot file ([`ServiceHandle::save_snapshot`]) |
//! | `{"op":"load","path":"memo.qsnap"}` | preload a snapshot's memo entries as warm results ([`ServiceHandle::load_snapshot`]) |
//! | `{"op":"shutdown"}` | stop reading; drain in-flight jobs, then exit |
//!
//! # Job payloads
//!
//! | `"job"` value | runs |
//! |---|---|
//! | `{"type":"image","densify":false}` | [`Job::Image`] |
//! | `{"type":"reachability","max_iterations":64}` | [`Job::Reachability`] |
//! | `{"type":"invariant","n_qubits":2,"states":[[[1,0,0,0],[1,0,0,0]]],"max_iterations":64}` | [`Job::Invariant`] (each qubit is `[a_re,a_im,b_re,b_im]`) |
//! | `{"type":"equivalence","a":"h 0; cx 0 1","b":"h 0; cx 0 1","up_to_phase":false}` | [`Job::Equivalence`] (circuits in the gate DSL below) |
//!
//! The circuit DSL is the shared gate DSL of [`qits_circuit::parse`]
//! (`;`/newline-separated statements: `i q`, `h q`, `x q`, `y q`, `z q`,
//! `s q`, `sdg q`, `t q`, `tdg q`, `phase q theta`, `rx/ry/rz q theta`,
//! `cx c t`, `cz c t`, `cp c t theta`, `ccx c1 c2 t`, `swap a b`,
//! `proj q b`) — the same parser behind scenario files and the `qits`
//! CLI. Validation happens entirely in the parse layer (arity, wire
//! syntax, duplicate wires), so a malformed client line — `"cx 0 0"`
//! included — is an `error` event, never a server panic. The two
//! circuits of an equivalence job are parsed onto one shared register
//! (the wider of the two), so `"h 0"` vs `"h 0; z 1"` compares the
//! operators instead of failing with a register mismatch.
//!
//! # Events
//!
//! | line | meaning |
//! |---|---|
//! | `{"event":"accepted","id":"q1"}` | the job was admitted (or served from the memo) |
//! | `{"event":"rejected","id":"q1","error":"..."}` | admission refused (queue full / shutdown) — terminal for this id |
//! | `{"event":"result","id":"q1","status":"ok","output":{...},"latency_ms":1.9}` | the job completed |
//! | `{"event":"result","id":"q1","status":"error","error":"..."}` | the job failed / was cancelled / expired |
//! | `{"event":"stats","jobs_submitted":...,...}` | answer to `{"op":"stats"}` — memo counters split `memo_hits` / `memo_warm_hits` (hits served by snapshot-restored entries) and report `memo_evictions` |
//! | `{"event":"saved","path":"...","entries":N}` | the memo spill was written (`N` entries) |
//! | `{"event":"loaded","path":"...","entries":N}` | a snapshot's memo entries were preloaded |
//! | `{"event":"error","error":"..."}` | the input line did not parse, or a `save`/`load` failed; the server keeps reading |
//! | `{"event":"bye"}` | drain finished after `shutdown` / EOF; last line |

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qits_circuit::{parse, Circuit};
use qits_num::Cplx;

use super::{Job, JobOutput, JobRequest, JobTicket, PoolStats, Priority, ServiceHandle};

// ----------------------------------------------------------------------
// A minimal JSON value model (the workspace carries no serde).
// ----------------------------------------------------------------------

/// A parsed JSON value. Minimal by design: the protocol needs objects,
/// arrays, strings, `f64` numbers, booleans, and `null` — nothing else.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Linear-scan lookup — protocol objects are tiny.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        // Strict upper bound: `usize::MAX as f64` rounds *up* to 2^64,
        // which a `<=` would admit (and the cast would then saturate).
        // Every integral f64 strictly below 2^64 fits in usize exactly.
        if n.fract() == 0.0 && n >= 0.0 && n < usize::MAX as f64 {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Hard cap on container nesting. The protocol's own documents are at
/// most three levels deep; the cap exists so a client line of thousands
/// of `[`s gets a typed error instead of recursing the serve thread's
/// stack into the ground.
const MAX_JSON_DEPTH: usize = 64;

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage refused). Container nesting beyond `MAX_JSON_DEPTH` (64)
/// levels is refused with an error — the recursive-descent parser's
/// stack use is bounded by the cap, so no input can overflow it.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{' | b'[') if depth >= MAX_JSON_DEPTH => Err(format!(
            "nesting deeper than {MAX_JSON_DEPTH} levels at byte {pos}",
            pos = *pos
        )),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always at a boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos, depth + 1)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ----------------------------------------------------------------------
// Requests.
// ----------------------------------------------------------------------

/// One decoded input line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op":"submit",...}` — admit a job under a client-chosen id.
    Submit {
        /// Client-chosen correlation id, echoed on every event.
        id: String,
        /// The decoded job payload.
        job: Job,
        /// Scheduling class (defaults to [`Priority::Normal`]).
        priority: Priority,
        /// Queue-time budget in milliseconds, if any.
        deadline_ms: Option<u64>,
    },
    /// `{"op":"cancel","id":...}` — trip a submitted job's token.
    Cancel {
        /// Id of the job to cancel.
        id: String,
    },
    /// `{"op":"stats"}` — emit live pool counters.
    Stats,
    /// `{"op":"save","path":...}` — spill the result memo to a snapshot
    /// file.
    Save {
        /// Filesystem path to write the snapshot to.
        path: String,
    },
    /// `{"op":"load","path":...}` — preload a snapshot's memo entries.
    Load {
        /// Filesystem path to read the snapshot from.
        path: String,
    },
    /// `{"op":"shutdown"}` — stop reading, drain, exit.
    Shutdown,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality through the canonical Debug encoding — the
        // same identity the result memo keys on. Test/protocol plumbing,
        // not a hot path.
        format!("{self:?}") == format!("{other:?}")
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"op\"")?;
    match op {
        "submit" => {
            let id = v
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or("submit needs an \"id\"")?
                .to_string();
            let job = parse_job(v.get("job").ok_or("submit needs a \"job\"")?)?;
            let priority = match v.get("priority").and_then(JsonValue::as_str) {
                None => Priority::Normal,
                Some("high") => Priority::High,
                Some("normal") => Priority::Normal,
                Some("low") => Priority::Low,
                Some(other) => return Err(format!("unknown priority '{other}'")),
            };
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(n) => Some(
                    n.as_usize()
                        .ok_or("\"deadline_ms\" must be a non-negative integer")?
                        as u64,
                ),
            };
            Ok(Request::Submit {
                id,
                job,
                priority,
                deadline_ms,
            })
        }
        "cancel" => Ok(Request::Cancel {
            id: v
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or("cancel needs an \"id\"")?
                .to_string(),
        }),
        "stats" => Ok(Request::Stats),
        "save" => Ok(Request::Save {
            path: v
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or("save needs a \"path\"")?
                .to_string(),
        }),
        "load" => Ok(Request::Load {
            path: v
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or("load needs a \"path\"")?
                .to_string(),
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

fn parse_job(v: &JsonValue) -> Result<Job, String> {
    let kind = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("job needs a \"type\"")?;
    match kind {
        "image" => Ok(Job::Image {
            densify: v
                .get("densify")
                .map(|b| b.as_bool().ok_or("\"densify\" must be a boolean"))
                .transpose()?
                .unwrap_or(false),
        }),
        "reachability" => Ok(Job::Reachability {
            max_iterations: v
                .get("max_iterations")
                .and_then(JsonValue::as_usize)
                .ok_or("reachability needs \"max_iterations\"")?,
        }),
        "invariant" => {
            let n_qubits = v
                .get("n_qubits")
                .and_then(JsonValue::as_usize)
                .ok_or("invariant needs \"n_qubits\"")?;
            let n_qubits = u32::try_from(n_qubits)
                .map_err(|_| format!("\"n_qubits\" {n_qubits} exceeds the u32 register limit"))?;
            let max_iterations = v
                .get("max_iterations")
                .and_then(JsonValue::as_usize)
                .ok_or("invariant needs \"max_iterations\"")?;
            let mut states = Vec::new();
            for state in v
                .get("states")
                .and_then(JsonValue::as_array)
                .ok_or("invariant needs \"states\"")?
            {
                let mut qubits = Vec::new();
                for q in state.as_array().ok_or("each state is an array")? {
                    let parts = q.as_array().ok_or("each qubit is an array")?;
                    if parts.len() != 4 {
                        return Err("each qubit is [a_re,a_im,b_re,b_im]".to_string());
                    }
                    let nums: Vec<f64> = parts
                        .iter()
                        .map(|p| p.as_f64().ok_or("amplitudes are numbers"))
                        .collect::<Result<_, _>>()?;
                    qubits.push((Cplx::new(nums[0], nums[1]), Cplx::new(nums[2], nums[3])));
                }
                states.push(qubits);
            }
            Ok(Job::Invariant {
                n_qubits,
                states,
                max_iterations,
            })
        }
        "equivalence" => {
            let a_text = v
                .get("a")
                .and_then(JsonValue::as_str)
                .ok_or("equivalence needs circuit \"a\"")?;
            let b_text = v
                .get("b")
                .and_then(JsonValue::as_str)
                .ok_or("equivalence needs circuit \"b\"")?;
            // One shared register for both circuits: "h 0" vs "h 0; z 1"
            // compares the operators on 2 qubits instead of failing with
            // a register mismatch.
            let (a, b) = parse::parse_circuit_pair(a_text, b_text).map_err(|e| e.to_string())?;
            Ok(Job::Equivalence {
                a,
                b,
                up_to_phase: v
                    .get("up_to_phase")
                    .map(|b| b.as_bool().ok_or("\"up_to_phase\" must be a boolean"))
                    .transpose()?
                    .unwrap_or(false),
            })
        }
        other => Err(format!("unknown job type '{other}'")),
    }
}

/// Parses the circuit DSL — a thin protocol-level wrapper over the
/// shared [`qits_circuit::parse::parse_circuit`] (register width one
/// past the highest wire mentioned), with the typed error flattened to
/// the protocol's string shape.
pub fn parse_circuit(text: &str) -> Result<Circuit, String> {
    parse::parse_circuit(text).map_err(|e| e.to_string())
}

// ----------------------------------------------------------------------
// Events.
// ----------------------------------------------------------------------

/// Renders a [`JobOutput`] as the protocol's `"output"` JSON object —
/// shared with the `qits` CLI so a scenario run and a served job answer
/// in the same shape.
pub fn output_json(out: &JobOutput) -> String {
    match out {
        JobOutput::Image(o) => {
            let mut s = format!("{{\"kind\": \"image\", \"dim\": {}", o.dim);
            if !o.amplitudes.is_empty() {
                s.push_str(", \"amplitudes\": [");
                for (i, row) in o.amplitudes.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push('[');
                    for (j, a) in row.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!("[{}, {}]", a.re, a.im));
                    }
                    s.push(']');
                }
                s.push(']');
            }
            s.push('}');
            s
        }
        JobOutput::Reachability(r) => format!(
            "{{\"kind\": \"reachability\", \"dim\": {}, \"iterations\": {}, \"converged\": {}}}",
            r.dim, r.iterations, r.converged
        ),
        JobOutput::Invariant { holds, reach } => format!(
            "{{\"kind\": \"invariant\", \"holds\": {}, \"dim\": {}, \"iterations\": {}}}",
            holds, reach.dim, reach.iterations
        ),
        JobOutput::Equivalence { equivalent } => {
            format!("{{\"kind\": \"equivalence\", \"equivalent\": {equivalent}}}")
        }
    }
}

fn stats_json(s: &PoolStats) -> String {
    format!(
        "{{\"event\": \"stats\", \"workers\": {}, \"jobs_submitted\": {}, \
         \"jobs_completed\": {}, \"jobs_failed\": {}, \"jobs_rejected\": {}, \
         \"jobs_cancelled\": {}, \"jobs_expired\": {}, \"queue_depth\": {}, \
         \"memo_hits\": {}, \"memo_warm_hits\": {}, \"memo_misses\": {}, \
         \"memo_evictions\": {}, \"images\": {}}}",
        s.workers.len(),
        s.jobs_submitted,
        s.jobs_completed,
        s.jobs_failed,
        s.jobs_rejected,
        s.jobs_cancelled,
        s.jobs_expired,
        s.queue_depth,
        s.memo.hits,
        s.memo.warm_hits,
        s.memo.misses,
        s.memo.evictions,
        s.images,
    )
}

fn result_json(
    id: &str,
    ticket: &JobTicket,
    result: &Result<JobOutput, crate::QitsError>,
) -> String {
    let latency_ms = ticket
        .latency()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    match result {
        Ok(out) => format!(
            "{{\"event\": \"result\", \"id\": \"{}\", \"status\": \"ok\", \
             \"output\": {}, \"latency_ms\": {latency_ms}}}",
            escape_json(id),
            output_json(out),
        ),
        Err(e) => format!(
            "{{\"event\": \"result\", \"id\": \"{}\", \"status\": \"error\", \
             \"error\": \"{}\", \"latency_ms\": {latency_ms}}}",
            escape_json(id),
            escape_json(&e.to_string()),
        ),
    }
}

// ----------------------------------------------------------------------
// The serve loop.
// ----------------------------------------------------------------------

/// Serves the JSON-lines protocol over a [`ServiceHandle`]: reads
/// requests from `input` until EOF or `{"op":"shutdown"}`, streams
/// events to `output` as they happen, drains every in-flight job before
/// returning. A poller thread owns the output stream and flushes each
/// completed job's `result` event immediately — results never wait for
/// the next input line.
pub fn serve(
    handle: ServiceHandle,
    input: impl BufRead,
    output: impl Write + Send + 'static,
) -> io::Result<()> {
    let output = Arc::new(Mutex::new(output));
    let pending: Arc<Mutex<Vec<(String, JobTicket)>>> = Arc::new(Mutex::new(Vec::new()));
    let draining = Arc::new(Mutex::new(false));

    let poller = {
        let output = output.clone();
        let pending = pending.clone();
        let draining = draining.clone();
        std::thread::Builder::new()
            .name("qits-serve-poller".to_string())
            .spawn(move || loop {
                let mut done: Vec<(String, Result<JobOutput, crate::QitsError>, JobTicket)> =
                    Vec::new();
                {
                    let mut p = pending.lock().unwrap();
                    let mut i = 0;
                    while i < p.len() {
                        if let Some(result) = p[i].1.try_join() {
                            let (id, ticket) = p.swap_remove(i);
                            done.push((id, result, ticket));
                        } else {
                            i += 1;
                        }
                    }
                }
                if !done.is_empty() {
                    let mut out = output.lock().unwrap();
                    for (id, result, ticket) in &done {
                        let _ = writeln!(out, "{}", result_json(id, ticket, result));
                    }
                    let _ = out.flush();
                }
                let empty = pending.lock().unwrap().is_empty();
                if empty && *draining.lock().unwrap() {
                    return;
                }
                std::thread::sleep(Duration::from_micros(200));
            })
            .expect("spawning the serve poller thread")
    };

    let mut cancels: HashMap<String, qits_tdd::CancelToken> = HashMap::new();
    let emit = |line: String| -> io::Result<()> {
        let mut out = output.lock().unwrap();
        writeln!(out, "{line}")?;
        out.flush()
    };

    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(e) => emit(format!(
                "{{\"event\": \"error\", \"error\": \"{}\"}}",
                escape_json(&e)
            ))?,
            Ok(Request::Stats) => emit(stats_json(&handle.stats()))?,
            Ok(Request::Save { path }) => match handle.save_snapshot(&path, "qits-serve") {
                Ok(entries) => emit(format!(
                    "{{\"event\": \"saved\", \"path\": \"{}\", \"entries\": {entries}}}",
                    escape_json(&path)
                ))?,
                Err(e) => emit(format!(
                    "{{\"event\": \"error\", \"error\": \"{}\"}}",
                    escape_json(&e.to_string())
                ))?,
            },
            Ok(Request::Load { path }) => match handle.load_snapshot(&path) {
                Ok(entries) => emit(format!(
                    "{{\"event\": \"loaded\", \"path\": \"{}\", \"entries\": {entries}}}",
                    escape_json(&path)
                ))?,
                Err(e) => emit(format!(
                    "{{\"event\": \"error\", \"error\": \"{}\"}}",
                    escape_json(&e.to_string())
                ))?,
            },
            Ok(Request::Shutdown) => break,
            Ok(Request::Cancel { id }) => {
                if let Some(token) = cancels.get(&id) {
                    token.cancel();
                }
            }
            Ok(Request::Submit {
                id,
                job,
                priority,
                deadline_ms,
            }) => {
                let mut req = JobRequest::new(job).priority(priority);
                if let Some(ms) = deadline_ms {
                    req = req.deadline(Duration::from_millis(ms));
                }
                match handle.try_submit(req) {
                    Ok(ticket) => {
                        cancels.insert(id.clone(), ticket.cancel_token().clone());
                        emit(format!(
                            "{{\"event\": \"accepted\", \"id\": \"{}\"}}",
                            escape_json(&id)
                        ))?;
                        pending.lock().unwrap().push((id, ticket));
                    }
                    Err(e) => emit(format!(
                        "{{\"event\": \"rejected\", \"id\": \"{}\", \"error\": \"{}\"}}",
                        escape_json(&id),
                        escape_json(&e.to_string())
                    ))?,
                }
            }
        }
    }

    *draining.lock().unwrap() = true;
    let _ = poller.join();
    emit("{\"event\": \"bye\"}".to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_the_protocol_shapes() {
        let v = parse_json(
            r#"{"op":"submit","id":"q\"1","job":{"type":"image","densify":true},"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str().unwrap(), "q\"1");
        assert_eq!(v.get("deadline_ms").unwrap().as_usize().unwrap(), 250);
        assert!(parse_json("[1, -2.5, true, null, \"x\"]").is_ok());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
    }

    #[test]
    fn json_nesting_is_depth_capped() {
        // Exactly MAX_JSON_DEPTH levels parse; one more is a typed error,
        // and a megabyte-scale bomb cannot touch the stack.
        let ok = format!(
            "{}0{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(parse_json(&ok).is_ok());
        let deep = format!(
            "{}0{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        let err = parse_json(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        assert!(parse_json(&"[".repeat(1 << 20)).is_err());
        assert!(parse_json(&"{\"k\":".repeat(1 << 18)).is_err());
    }

    #[test]
    fn requests_decode() {
        let r = parse_request(
            r#"{"op":"submit","id":"a","job":{"type":"reachability","max_iterations":8},"priority":"high"}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Submit {
                id: "a".into(),
                job: Job::reachability(8),
                priority: Priority::High,
                deadline_ms: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"a"}"#).unwrap(),
            Request::Cancel { id: "a".into() }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"save","path":"m.qsnap"}"#).unwrap(),
            Request::Save {
                path: "m.qsnap".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"load","path":"m.qsnap"}"#).unwrap(),
            Request::Load {
                path: "m.qsnap".into()
            }
        );
        assert!(parse_request(r#"{"op":"save"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","id":"a"}"#).is_err());
    }

    #[test]
    fn circuit_dsl_builds_real_circuits() {
        let c = parse_circuit("h 0; cx 0 1; phase 1 0.25").unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.gates().len(), 3);
        assert!(parse_circuit("bogus 0").is_err());
        assert!(parse_circuit("").is_err());
        assert!(parse_circuit("cx 0").is_err());
    }

    #[test]
    fn duplicate_wire_gates_are_errors_not_panics() {
        // Regression: these used to unwind through Gate::new's
        // distinctness assertion, killing the serve reader thread.
        for dsl in ["cx 0 0", "swap 2 2", "ccx 0 1 0", "cp 3 3 0.5"] {
            assert!(parse_circuit(dsl).is_err(), "{dsl}");
            let line = format!(
                r#"{{"op":"submit","id":"q","job":{{"type":"equivalence","a":"{dsl}","b":"h 0"}}}}"#
            );
            assert!(parse_request(&line).is_err(), "{dsl}");
        }
    }

    #[test]
    fn equivalence_circuits_share_one_register() {
        // Regression: independently inferred widths made "h 0" vs
        // "h 0; z 1" a register mismatch instead of an answer.
        let r = parse_request(
            r#"{"op":"submit","id":"e","job":{"type":"equivalence","a":"h 0","b":"h 0; z 1"}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job: Job::Equivalence { a, b, .. },
                ..
            } => {
                assert_eq!(a.n_qubits(), 2);
                assert_eq!(b.n_qubits(), 2);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn as_usize_rejects_the_rounded_up_bound() {
        // 2^64 is exactly `usize::MAX as f64` after rounding — admitting
        // it would saturate the cast to usize::MAX.
        assert_eq!(JsonValue::Number(18446744073709551616.0).as_usize(), None);
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1.5).as_usize(), None);
        assert_eq!(JsonValue::Number(250.0).as_usize(), Some(250));
        // Large but exactly representable below 2^64 still converts.
        assert_eq!(
            JsonValue::Number((1u64 << 53) as f64).as_usize(),
            Some(1usize << 53)
        );
    }

    #[test]
    fn invariant_n_qubits_must_fit_u32() {
        // Regression: `as u32` silently truncated 2^32 to 0.
        let line = r#"{"op":"submit","id":"i","job":{"type":"invariant","n_qubits":4294967296,"states":[[[1,0,0,0]]],"max_iterations":4}}"#;
        let err = parse_request(line).unwrap_err();
        assert!(err.contains("u32"), "{err}");
        // The boundary value itself still decodes.
        let ok = r#"{"op":"submit","id":"i","job":{"type":"invariant","n_qubits":1,"states":[[[1,0,0,0]]],"max_iterations":4}}"#;
        assert!(parse_request(ok).is_ok());
    }

    #[test]
    fn invariant_states_decode_to_amplitude_pairs() {
        let r = parse_request(
            r#"{"op":"submit","id":"i","job":{"type":"invariant","n_qubits":1,
               "states":[[[0.6,0,0.8,0]]],"max_iterations":4}}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        match r {
            Request::Submit {
                job: Job::Invariant {
                    n_qubits, states, ..
                },
                ..
            } => {
                assert_eq!(n_qubits, 1);
                assert_eq!(
                    states,
                    vec![vec![(Cplx::new(0.6, 0.0), Cplx::new(0.8, 0.0))]]
                );
            }
            other => panic!("decoded {other:?}"),
        }
    }
}
