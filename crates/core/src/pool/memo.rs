//! The fleet-wide result memo: a bounded, thread-safe cache of completed
//! [`JobOutput`]s keyed by a canonical hash of *spec + job*.
//!
//! Image computation is deterministic: the same [`super::EngineSpec`]
//! and the same [`Job`] payload always produce the same result, on any
//! worker, in any pool. The memo exploits exactly that — and nothing
//! more: keys embed [`super::EngineSpec::fingerprint`], which folds in
//! every knob that could plausibly influence a result (system, tolerance,
//! orderings, strategy, even the GC configuration), so a hit can only
//! come from a semantically interchangeable session. Only `Ok` results
//! are memoised; failures, cancellations, and deadline sheds always
//! re-run.
//!
//! Bounding is by **least-recently-used eviction**: at capacity, caching
//! a new key evicts the entry whose last hit (or insertion) is oldest,
//! so a drifting query mix keeps its current hot set resident instead of
//! fossilising whichever keys arrived first. Evictions are counted in
//! [`MemoStats::evictions`].
//!
//! Entries restored from a snapshot (see [`crate::store`] and
//! [`super::PoolBuilder::warm_start`]) are tagged **warm**; hits they
//! serve are additionally counted in [`MemoStats::warm_hits`], which is
//! how a serving front distinguishes "answered from persisted state"
//! from "answered from something computed this process".
//!
//! One [`ResultMemo`] in an [`std::sync::Arc`] may back several pools
//! (see [`super::PoolBuilder::memo`]); its counters are then fleet-wide.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::{Job, JobOutput};

/// 128-bit FNV-1a over a list of byte chunks. Not cryptographic — the
/// memo is a cache, not a security boundary — but 128 bits make
/// accidental collisions across a fleet's lifetime implausible.
pub(crate) fn fnv128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
        // Chunk separator so ("ab","c") and ("a","bc") hash apart.
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical identity of one (spec, job) pair — the memo's key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey(u128);

impl MemoKey {
    /// Keys a job within a spec's namespace. The job payload is hashed
    /// through its canonical `Debug` encoding, which spells out every
    /// field of every variant (circuits gate-by-gate, invariant states
    /// amplitude-by-amplitude with full `f64` precision) — two jobs hash
    /// equal exactly when they are structurally identical.
    pub(crate) fn for_job(spec_fingerprint: u128, job: &Job) -> MemoKey {
        let payload = format!("{job:?}");
        MemoKey(fnv128(&[
            &spec_fingerprint.to_le_bytes(),
            payload.as_bytes(),
        ]))
    }

    /// Rebuilds a key from its raw snapshot form (the identity
    /// [`ResultMemo::export_entries`] hands a snapshot writer).
    pub(crate) fn from_raw(raw: u128) -> MemoKey {
        MemoKey(raw)
    }
}

/// The memo's counters, snapshotted into [`super::PoolStats::memo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that returned a cached result (at submission or dequeue).
    pub hits: u64,
    /// The subset of [`MemoStats::hits`] served by entries preloaded
    /// from a snapshot ([`super::PoolBuilder::warm_start`]) — answers
    /// this process never had to compute.
    pub warm_hits: u64,
    /// Jobs that went to a worker because no cached result existed
    /// (counted once per job, at dequeue).
    pub misses: u64,
    /// Results inserted into the memo (snapshot preloads included).
    pub inserts: u64,
    /// Entries evicted to admit newer ones at capacity.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// The configured entry bound.
    pub capacity: usize,
}

/// One cached result plus its recency bookkeeping.
struct Entry {
    output: JobOutput,
    /// The entry's position in the recency order (its key in
    /// `MemoInner::recency`); larger = more recently used.
    stamp: u64,
    /// Preloaded from a snapshot rather than computed in-process.
    warm: bool,
}

#[derive(Default)]
struct MemoInner {
    entries: HashMap<u128, Entry>,
    /// Recency index: stamp -> key, ordered oldest first. Stamps are
    /// unique (one global tick per touch), so this is a total order and
    /// `pop_first` is exactly the LRU victim.
    recency: BTreeMap<u64, u128>,
    tick: u64,
}

impl MemoInner {
    fn touch(&mut self, key: u128) {
        self.tick += 1;
        let stamp = self.tick;
        if let Some(e) = self.entries.get_mut(&key) {
            self.recency.remove(&e.stamp);
            e.stamp = stamp;
            self.recency.insert(stamp, key);
        }
    }
}

/// A bounded, thread-safe cache of completed job results. Construct with
/// [`ResultMemo::new`], install with [`super::PoolBuilder::memo`] /
/// [`super::PoolBuilder::memo_capacity`].
///
/// Bounding is by **LRU eviction** (see the module docs): at capacity,
/// admitting a new key evicts the least-recently-used entry, so the memo
/// tracks the workload's current hot set.
pub struct ResultMemo {
    inner: Mutex<MemoInner>,
    capacity: usize,
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ResultMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultMemo")
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("warm_hits", &stats.warm_hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl ResultMemo {
    /// A fresh memo holding at most `capacity` results (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> ResultMemo {
        ResultMemo {
            inner: Mutex::new(MemoInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A snapshot of the memo's counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().entries.len(),
            capacity: self.capacity,
        }
    }

    /// Looks a key up, counting a hit (and refreshing the entry's
    /// recency) when present. Misses are *not* counted here — the pool
    /// probes twice per job (submission and dequeue) and only the
    /// dequeue probe records the miss, so each job contributes at most
    /// one miss.
    pub(crate) fn get(&self, key: &MemoKey) -> Option<JobOutput> {
        let mut inner = self.inner.lock().unwrap();
        inner.touch(key.0);
        let hit = inner
            .entries
            .get(&key.0)
            .map(|e| (e.output.clone(), e.warm));
        drop(inner);
        if let Some((out, warm)) = hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if warm {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
            Some(out)
        } else {
            None
        }
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Caches a completed result under `key`, evicting the LRU entry at
    /// capacity. First writer wins; a concurrent duplicate is dropped
    /// (without dirtying the original's recency).
    pub(crate) fn insert(&self, key: MemoKey, output: &JobOutput) {
        self.admit(key, output.clone(), false);
    }

    /// [`ResultMemo::insert`] for an entry restored from a snapshot: the
    /// entry is tagged warm, so its future hits count in
    /// [`MemoStats::warm_hits`].
    pub(crate) fn preload(&self, key: MemoKey, output: JobOutput) {
        self.admit(key, output, true);
    }

    fn admit(&self, key: MemoKey, output: JobOutput, warm: bool) {
        let mut inner = self.inner.lock().unwrap();
        if inner.entries.contains_key(&key.0) {
            return;
        }
        let mut evicted = 0u64;
        while inner.entries.len() >= self.capacity {
            match inner.recency.pop_first() {
                Some((_, victim)) => {
                    inner.entries.remove(&victim);
                    evicted += 1;
                }
                None => break,
            }
        }
        inner.tick += 1;
        let stamp = inner.tick;
        inner.recency.insert(stamp, key.0);
        inner.entries.insert(
            key.0,
            Entry {
                output,
                stamp,
                warm,
            },
        );
        drop(inner);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Every cached entry as `(raw key, output)` — the spill a snapshot
    /// writer serialises. Ordered oldest-first by recency, so a loader
    /// preloading into a smaller memo naturally keeps the hottest tail.
    pub(crate) fn export_entries(&self) -> Vec<(u128, JobOutput)> {
        let inner = self.inner.lock().unwrap();
        inner
            .recency
            .values()
            .map(|k| (*k, inner.entries[k].output.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_chunk_boundaries_matter() {
        assert_ne!(fnv128(&[b"ab", b"c"]), fnv128(&[b"a", b"bc"]));
        assert_ne!(fnv128(&[b"ab"]), fnv128(&[b"ab", b""]));
        assert_eq!(fnv128(&[b"ab", b"c"]), fnv128(&[b"ab", b"c"]));
    }

    #[test]
    fn distinct_jobs_and_specs_key_apart() {
        let a = MemoKey::for_job(1, &Job::image());
        let b = MemoKey::for_job(1, &Job::Image { densify: true });
        let c = MemoKey::for_job(2, &Job::image());
        let a2 = MemoKey::for_job(1, &Job::image());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let memo = ResultMemo::new(2);
        let out = JobOutput::Equivalence { equivalent: true };
        memo.insert(MemoKey(1), &out);
        memo.insert(MemoKey(2), &out);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(memo.get(&MemoKey(1)).is_some());
        memo.insert(MemoKey(3), &out);
        assert!(memo.get(&MemoKey(1)).is_some(), "recently used survives");
        assert!(memo.get(&MemoKey(3)).is_some(), "new entry admitted");
        assert!(memo.get(&MemoKey(2)).is_none(), "LRU victim evicted");
        let stats = memo.stats();
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn missed_probes_do_not_disturb_recency() {
        // A get() on an absent key must not age the resident entries —
        // only touches of *cached* keys reorder the LRU chain.
        let memo = ResultMemo::new(1);
        let out = JobOutput::Equivalence { equivalent: true };
        memo.insert(MemoKey(1), &out);
        assert!(memo.get(&MemoKey(9)).is_none());
        memo.insert(MemoKey(2), &out);
        assert!(memo.get(&MemoKey(1)).is_none(), "1 was the true LRU");
        assert!(memo.get(&MemoKey(2)).is_some());
    }

    #[test]
    fn warm_entries_count_their_hits_separately() {
        let memo = ResultMemo::new(4);
        let out = JobOutput::Equivalence { equivalent: true };
        memo.preload(MemoKey(1), out.clone());
        memo.insert(MemoKey(2), &out);
        assert!(memo.get(&MemoKey(1)).is_some());
        assert!(memo.get(&MemoKey(2)).is_some());
        let stats = memo.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.inserts, 2);
    }

    #[test]
    fn export_round_trips_through_preload() {
        let memo = ResultMemo::new(4);
        memo.insert(MemoKey(7), &JobOutput::Equivalence { equivalent: false });
        memo.insert(MemoKey(8), &JobOutput::Equivalence { equivalent: true });
        let spilled = memo.export_entries();
        assert_eq!(spilled.len(), 2);
        let restored = ResultMemo::new(4);
        for (k, v) in spilled {
            restored.preload(MemoKey::from_raw(k), v);
        }
        assert_eq!(restored.get(&MemoKey(8)).unwrap().equivalent(), Some(true));
        assert_eq!(restored.stats().warm_hits, 1);
    }
}
