//! The fleet-wide result memo: a bounded, thread-safe cache of completed
//! [`JobOutput`]s keyed by a canonical hash of *spec + job*.
//!
//! Image computation is deterministic: the same [`super::EngineSpec`]
//! and the same [`Job`] payload always produce the same result, on any
//! worker, in any pool. The memo exploits exactly that — and nothing
//! more: keys embed [`super::EngineSpec::fingerprint`], which folds in
//! every knob that could plausibly influence a result (system, tolerance,
//! orderings, strategy, even the GC configuration), so a hit can only
//! come from a semantically interchangeable session. Only `Ok` results
//! are memoised; failures, cancellations, and deadline sheds always
//! re-run.
//!
//! One [`ResultMemo`] in an [`std::sync::Arc`] may back several pools
//! (see [`super::PoolBuilder::memo`]); its counters are then fleet-wide.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::{Job, JobOutput};

/// 128-bit FNV-1a over a list of byte chunks. Not cryptographic — the
/// memo is a cache, not a security boundary — but 128 bits make
/// accidental collisions across a fleet's lifetime implausible.
pub(crate) fn fnv128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
        // Chunk separator so ("ab","c") and ("a","bc") hash apart.
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical identity of one (spec, job) pair — the memo's key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey(u128);

impl MemoKey {
    /// Keys a job within a spec's namespace. The job payload is hashed
    /// through its canonical `Debug` encoding, which spells out every
    /// field of every variant (circuits gate-by-gate, invariant states
    /// amplitude-by-amplitude with full `f64` precision) — two jobs hash
    /// equal exactly when they are structurally identical.
    pub(crate) fn for_job(spec_fingerprint: u128, job: &Job) -> MemoKey {
        let payload = format!("{job:?}");
        MemoKey(fnv128(&[
            &spec_fingerprint.to_le_bytes(),
            payload.as_bytes(),
        ]))
    }
}

/// The memo's counters, snapshotted into [`super::PoolStats::memo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that returned a cached result (at submission or dequeue).
    pub hits: u64,
    /// Jobs that went to a worker because no cached result existed
    /// (counted once per job, at dequeue).
    pub misses: u64,
    /// Results inserted into the memo.
    pub inserts: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// The configured entry bound.
    pub capacity: usize,
}

/// A bounded, thread-safe cache of completed job results. Construct with
/// [`ResultMemo::new`], install with [`super::PoolBuilder::memo`] /
/// [`super::PoolBuilder::memo_capacity`].
///
/// Bounding is by **admission**: once `capacity` distinct keys are
/// cached, new keys are simply not inserted (existing keys keep serving
/// hits). For the query-batched workloads the pool targets — a bounded
/// set of distinct queries asked repeatedly — admission bounding keeps
/// the hot set intact, costs nothing on the hit path, and cannot thrash
/// the way LRU eviction can under a scan.
pub struct ResultMemo {
    entries: Mutex<HashMap<u128, JobOutput>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl std::fmt::Debug for ResultMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultMemo")
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl ResultMemo {
    /// A fresh memo holding at most `capacity` results (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> ResultMemo {
        ResultMemo {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// A snapshot of the memo's counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len(),
            capacity: self.capacity,
        }
    }

    /// Looks a key up, counting a hit when present. Misses are *not*
    /// counted here — the pool probes twice per job (submission and
    /// dequeue) and only the dequeue probe records the miss, so each job
    /// contributes at most one miss.
    pub(crate) fn get(&self, key: &MemoKey) -> Option<JobOutput> {
        let out = self.entries.lock().unwrap().get(&key.0).cloned();
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Caches a completed result under `key`, subject to the admission
    /// bound. First writer wins; a concurrent duplicate is dropped.
    pub(crate) fn insert(&self, key: MemoKey, output: &JobOutput) {
        let mut entries = self.entries.lock().unwrap();
        if entries.contains_key(&key.0) {
            return;
        }
        if entries.len() >= self.capacity {
            return;
        }
        entries.insert(key.0, output.clone());
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_chunk_boundaries_matter() {
        assert_ne!(fnv128(&[b"ab", b"c"]), fnv128(&[b"a", b"bc"]));
        assert_ne!(fnv128(&[b"ab"]), fnv128(&[b"ab", b""]));
        assert_eq!(fnv128(&[b"ab", b"c"]), fnv128(&[b"ab", b"c"]));
    }

    #[test]
    fn distinct_jobs_and_specs_key_apart() {
        let a = MemoKey::for_job(1, &Job::image());
        let b = MemoKey::for_job(1, &Job::Image { densify: true });
        let c = MemoKey::for_job(2, &Job::image());
        let a2 = MemoKey::for_job(1, &Job::image());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn admission_bound_keeps_the_first_resident_set() {
        let memo = ResultMemo::new(1);
        let first = MemoKey(1);
        let second = MemoKey(2);
        let out = JobOutput::Equivalence { equivalent: true };
        memo.insert(first, &out);
        memo.insert(second, &out);
        assert!(memo.get(&first).is_some());
        assert!(memo.get(&second).is_none());
        let stats = memo.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
    }
}
