//! # qits — image computation for quantum transition systems
//!
//! A from-scratch Rust reproduction of *"Image Computation for Quantum
//! Transition Systems"* (Hong, Gao, Li, Ying, Ying — DATE 2025). Model
//! checking explores a system's state space by repeatedly computing the
//! *image* of a set of states under the transition relation; for quantum
//! systems, state sets become **subspaces** of a Hilbert space and
//! transitions become **quantum operations** (Kraus sets). This crate
//! implements that image computation symbolically, on tensor decision
//! diagrams, with the paper's three methods:
//!
//! * [`Strategy::Basic`] — contract each Kraus operator's whole circuit
//!   into one monolithic TDD, then apply it to every basis state
//!   (Section IV, Algorithm 1);
//! * [`Strategy::Addition`] — slice the circuit's tensor network at its
//!   `k` highest-degree indices and sum the `2^k` partial images
//!   (Section V-A);
//! * [`Strategy::Contraction`] — cut the circuit into blocks of at most
//!   `k1` qubits separated after every `k2` crossing gates and contract the
//!   blocks against the state sequentially, never building the monolithic
//!   operator (Section V-B — the method the paper's evaluation shows to
//!   dominate).
//!
//! # Quickstart
//!
//! Check the Grover-iteration invariant of the paper's Section III-A.1:
//! the subspace `S = span{|++->, |11->}` satisfies `T(S) = S`.
//!
//! ```
//! use qits::{image, QuantumTransitionSystem, Strategy};
//! use qits_circuit::generators;
//! use qits_tdd::TddManager;
//!
//! let mut m = TddManager::new();
//! let spec = generators::grover(3);
//! let mut qts = QuantumTransitionSystem::from_spec(&mut m, &spec);
//! // `image` takes its input `&mut` (in-image GC safepoints may relocate
//! // it); `parts_mut` splits the system into a shared operations handle
//! // plus that mutable input.
//! let (ops, initial) = qts.parts_mut();
//! let (img, stats) = image(
//!     &mut m,
//!     &ops,
//!     initial,
//!     Strategy::Contraction { k1: 2, k2: 2 },
//! );
//! assert!(img.equals(&mut m, qts.initial()));
//! // Operation caches are manager-owned, so the repeated
//! // block-against-state contractions above reuse each other's work:
//! assert!(stats.cont_hit_rate() > 0.0);
//! ```

pub mod equiv;
mod image;
pub mod mc;
mod qts;
mod subspace;

pub use image::{image, ImageStats, Strategy};
pub use qts::{Operations, QuantumTransitionSystem};
pub use subspace::{Subspace, RANK_TOLERANCE};
