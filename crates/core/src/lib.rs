//! # qits — image computation for quantum transition systems
//!
//! A from-scratch Rust reproduction of *"Image Computation for Quantum
//! Transition Systems"* (Hong, Gao, Li, Ying, Ying — DATE 2025). Model
//! checking explores a system's state space by repeatedly computing the
//! *image* of a set of states under the transition relation; for quantum
//! systems, state sets become **subspaces** of a Hilbert space and
//! transitions become **quantum operations** (Kraus sets). This crate
//! implements that image computation symbolically, on tensor decision
//! diagrams, with the paper's three methods:
//!
//! * [`Strategy::Basic`] — contract each Kraus operator's whole circuit
//!   into one monolithic TDD, then apply it to every basis state
//!   (Section IV, Algorithm 1);
//! * [`Strategy::Addition`] — slice the circuit's tensor network at its
//!   `k` highest-degree indices and sum the `2^k` partial images
//!   (Section V-A);
//! * [`Strategy::Contraction`] — cut the circuit into blocks of at most
//!   `k1` qubits separated after every `k2` crossing gates and contract the
//!   blocks against the state sequentially, never building the monolithic
//!   operator (Section V-B — the method the paper's evaluation shows to
//!   dominate).
//!
//! The public API is the session-based [`Engine`], configured through
//! [`EngineBuilder`]: one object owns the TDD manager, the transition
//! system, the GC policy, and all root bookkeeping, its methods return
//! `Result<_, QitsError>` instead of panicking, and strategy dispatch
//! goes through the pluggable [`ImageStrategy`] trait ([`Auto`] picks the
//! addition or contraction partition from circuit shape, per Table I's
//! crossover). Sessions are `Send`, and query-batched workloads run
//! through the serving layer ([`EnginePool`], re-exported in [`serve`]):
//! a pool of engine-owning workers behind a sharded work queue of typed
//! jobs, with per-job fault isolation and aggregated [`PoolStats`].
//!
//! # Quickstart
//!
//! Check the Grover-iteration invariant of the paper's Section III-A.1:
//! the subspace `S = span{|++->, |11->}` satisfies `T(S) = S`.
//!
//! ```
//! use qits::{EngineBuilder, Strategy};
//! use qits_circuit::generators;
//!
//! let mut engine = EngineBuilder::new()
//!     .strategy(Strategy::Contraction { k1: 2, k2: 2 })
//!     .build_from_spec(&generators::grover(3))
//!     .expect("well-formed benchmark system");
//! let (img, stats) = engine.image().expect("image computation");
//! let initial = engine.initial().clone();
//! assert!(img.equals(engine.manager_mut(), &initial));
//! // Operation caches are manager-owned, so the repeated
//! // block-against-state contractions above reuse each other's work:
//! assert!(stats.cont_hit_rate() > 0.0);
//! ```
//!
//! The engine handles garbage-collection rooting internally — install a
//! [`qits_tdd::GcPolicy`] through the builder and every safepoint keeps
//! the session's system (plus any subspaces passed as `kept`) alive.
//! Collection never moves a node, so inputs are plain `&Subspace` borrows
//! and survivors stay bit-identical; unrooted diagrams become detectably
//! stale instead of dangling. The pre-engine free functions ([`image`],
//! the [`mc`] drivers) remain as thin shims over the same kernels.
//!
//! On top of the pool sits an **async serving front** ([`serve`]):
//! cloneable [`ServiceHandle`]s admit [`JobRequest`]s without blocking,
//! results stream back through [`JobTicket`]s (join, poll, or `.await`),
//! a bounded queue refuses overload with [`QitsError::QueueFull`],
//! deadlines shed stale work, [`qits_tdd::CancelToken`]s unwind running
//! jobs at GC safepoints, and an optional fleet-wide [`ResultMemo`]
//! short-circuits duplicate queries. The `qits-serve` binary exposes all
//! of it as a JSON-lines protocol ([`serve::proto`]).

pub mod equiv;
pub mod mc;
pub mod store;

mod engine;
mod error;
mod image;
mod pool;
mod qts;
mod subspace;

pub use engine::{Auto, Engine, EngineBuilder, ImageStrategy, StatsSink};
pub use error::QitsError;
pub use image::{image, try_image, ImageStats, Strategy};
pub use pool::{
    run_job, EnginePool, EngineSpec, ImageOutcome, Job, JobHandle, JobOutput, JobRequest,
    JobTicket, MemoKey, MemoStats, PoolBuilder, PoolStats, PoolStatsSink, Priority, ReachOutcome,
    ResultMemo, ServiceHandle, StrategyFactory, WorkerStats,
};
pub use qts::{Operations, QuantumTransitionSystem};
pub use subspace::{Subspace, RANK_TOLERANCE};

// The two variable-ordering knobs of the builder surface, re-exported so
// engine users configure ordering without importing the circuit and tdd
// crates by name — plus the cancellation token, which request envelopes
// and tickets carry.
pub use qits_circuit::tensorize::StaticOrder;
pub use qits_tdd::{CancelToken, ReorderPolicy};

/// The serving layer, re-exported under one roof: everything needed to
/// stand up an [`EnginePool`] behind a request queue — the pool itself,
/// the shared [`EngineSpec`], the typed [`Job`]/[`JobOutput`] vocabulary,
/// the async front ([`ServiceHandle`], [`JobRequest`], [`JobTicket`],
/// [`Priority`]), the fleet-wide [`ResultMemo`], the aggregated
/// [`PoolStats`], and the JSON-lines protocol ([`serve::proto`]) the
/// `qits-serve` binary speaks. `use qits::serve::*;` pulls in the
/// serving surface without the rest of the crate's namespace.
pub mod serve {
    pub use crate::pool::proto;
    pub use crate::pool::{
        run_job, EnginePool, EngineSpec, ImageOutcome, Job, JobHandle, JobOutput, JobRequest,
        JobTicket, MemoKey, MemoStats, PoolBuilder, PoolStats, PoolStatsSink, Priority,
        ReachOutcome, ResultMemo, ServiceHandle, StrategyFactory, WorkerStats,
    };
    pub use qits_tdd::CancelToken;
}
