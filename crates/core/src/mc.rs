//! Model checking on quantum transition systems: reachability via repeated
//! image computation, and invariant checking — the application that
//! motivates image computation in the first place (Section I).

use qits_tdd::TddManager;

use crate::image::{image, ImageStats, Strategy};
use crate::qts::QuantumTransitionSystem;
use crate::subspace::Subspace;

/// Result of a reachability analysis.
#[derive(Debug, Clone)]
pub struct ReachabilityResult {
    /// The least fixpoint `S0 v T(S0) v T^2(S0) v ...`.
    pub space: Subspace,
    /// Number of image computations performed.
    pub iterations: usize,
    /// Whether the fixpoint was reached (false: `max_iterations` hit).
    pub converged: bool,
    /// Per-iteration statistics.
    pub stats: Vec<ImageStats>,
}

/// Computes the reachable subspace of `qts` by iterating
/// `S <- S v T(S)` until the dimension stabilises.
///
/// The dimension is bounded by `2^n`, so with enough iterations this
/// always converges; `max_iterations` guards runtime.
pub fn reachable_space(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    strategy: Strategy,
    max_iterations: usize,
) -> ReachabilityResult {
    let mut space = qts.initial().clone();
    let mut stats = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    while iterations < max_iterations {
        let (img, st) = image(m, qts.operations(), &space, strategy);
        iterations += 1;
        stats.push(st);
        let joined = space.join(m, &img);
        if joined.dim() == space.dim() {
            converged = true;
            break;
        }
        space = joined;
    }
    ReachabilityResult {
        space,
        iterations,
        converged,
        stats,
    }
}

/// Checks the safety property "every reachable state stays inside
/// `invariant`".
///
/// Returns the verdict plus the reachability result that witnessed it.
/// A `false` verdict with `converged = false` means the analysis was
/// truncated and the verdict is only valid for the explored prefix.
pub fn check_invariant(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    invariant: &Subspace,
    strategy: Strategy,
    max_iterations: usize,
) -> (bool, ReachabilityResult) {
    let reach = reachable_space(m, qts, strategy, max_iterations);
    let holds = reach.space.is_subspace_of(m, invariant);
    (holds, reach)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::generators;
    use qits_circuit::tensorize::states;

    #[test]
    fn grover_reaches_fixpoint_immediately() {
        // The Grover initial subspace is invariant: 1 iteration suffices.
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        let r = reachable_space(&mut m, &qts, Strategy::Contraction { k1: 2, k2: 2 }, 10);
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
        assert!(r.space.equals(&mut m, qts.initial()));
    }

    #[test]
    fn walk_reachable_space_grows_then_saturates() {
        // The noiseless+noisy walk spreads over the whole cycle; its
        // reachable space saturates at the full 2^n dimension eventually.
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.5));
        let r = reachable_space(&mut m, &qts, Strategy::Contraction { k1: 2, k2: 2 }, 20);
        assert!(r.converged);
        assert!(r.space.dim() > qts.initial().dim());
        // Fixpoint really is a fixpoint.
        let (img, _) = image(
            &mut m,
            qts.operations(),
            &r.space,
            Strategy::Contraction { k1: 2, k2: 2 },
        );
        assert!(img.is_subspace_of(&mut m, &r.space));
    }

    #[test]
    fn reachable_space_is_an_invariant() {
        // The reachable space itself always satisfies the invariant check.
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
        let r = reachable_space(&mut m, &qts, Strategy::Basic, 20);
        assert!(r.converged);
        let (holds, r2) = check_invariant(&mut m, &qts, &r.space, Strategy::Basic, 20);
        assert!(holds);
        assert!(r2.converged);
        assert_eq!(r2.space.dim(), r.space.dim());
    }

    #[test]
    fn invariant_violated_when_too_small() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
        // The initial state alone is not invariant under GHZ preparation.
        let vars = Subspace::ket_vars(3);
        let zero_ket = m.product_ket(&vars, &[states::ZERO; 3]);
        let only_zero = Subspace::from_states(&mut m, 3, &[zero_ket]);
        let (holds, _) = check_invariant(&mut m, &qts, &only_zero, Strategy::Basic, 10);
        assert!(!holds);
    }

    #[test]
    fn max_iterations_truncates() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(4, 0.5));
        let r = reachable_space(&mut m, &qts, Strategy::Contraction { k1: 2, k2: 2 }, 1);
        assert!(!r.converged);
        assert_eq!(r.iterations, 1);
    }
}
