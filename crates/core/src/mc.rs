//! Model checking on quantum transition systems: reachability via repeated
//! image computation, and invariant checking — the application that
//! motivates image computation in the first place (Section I).
//!
//! # Garbage collection
//!
//! A reachability fixpoint iterates `S <- S v T(S)` on one manager, and
//! without reclamation every dead intermediate of every iteration stays
//! resident. The drivers here are GC-aware on two levels when the manager
//! has a [`qits_tdd::GcPolicy`] installed:
//!
//! * **inside** each `image()` call, the serial strategies poll their own
//!   safepoints (see [`crate::image`]); the drivers keep the transition
//!   system and any invariant under check alive across those collections
//!   by rooting them ([`qits_tdd::TddManager::protect`]) for the duration
//!   of the call;
//! * **between** iterations, the drivers poll the same safepoint entry
//!   ([`qits_tdd::TddManager::maybe_collect_at_safepoint`]) with the full
//!   live set as [`qits_tdd::EdgeHolder`]s — the system, the working
//!   space, and the kept subspaces.
//!
//! Collection never moves a node, so callers' structures are untouched by
//! a run — every edge they held going in is bit-identical coming out.
//! With no policy installed (the default), behaviour is identical to the
//! grow-only node store.

use qits_tdd::{EdgeHolder, TddManager};

use crate::engine::ImageStrategy;
use crate::error::QitsError;
use crate::image::{ImageStats, Strategy};
use crate::qts::QuantumTransitionSystem;
use crate::subspace::Subspace;

/// Result of a reachability analysis.
#[derive(Debug, Clone)]
pub struct ReachabilityResult {
    /// The least fixpoint `S0 v T(S0) v T^2(S0) v ...`.
    pub space: Subspace,
    /// Number of image computations performed.
    pub iterations: usize,
    /// Whether the fixpoint was reached (false: `max_iterations` hit).
    pub converged: bool,
    /// Per-iteration statistics.
    pub stats: Vec<ImageStats>,
    /// Garbage collections performed by the driver: between iterations
    /// plus the in-image safepoint collections of every `image()` call.
    pub collections: usize,
    /// Nodes reclaimed by those collections (in-image safepoint reclaim
    /// included).
    pub reclaimed_nodes: u64,
}

/// Whether a subspace already spans its whole `2^n`-dimensional space, so
/// any image is necessarily contained in it and the fixpoint is reached.
fn space_is_full(s: &Subspace) -> bool {
    s.n_qubits() < usize::BITS && s.dim() == 1usize << s.n_qubits()
}

/// Computes the reachable subspace of `qts` by iterating
/// `S <- S v T(S)` until the dimension stabilises.
///
/// The dimension is bounded by `2^n`, so with enough iterations this
/// always converges; `max_iterations` guards runtime. A space that has
/// grown to the full `2^n` dimension short-circuits: the image of the full
/// space is contained in it by construction, so the final image
/// computation is skipped.
///
/// This is an infallible shim over [`try_reachable_space`] (it panics
/// where that returns `Err`), kept for legacy call sites and the
/// strategy-agreement baseline; [`crate::Engine::reachable_space`] is the
/// fallible session API.
pub fn reachable_space(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    strategy: Strategy,
    max_iterations: usize,
) -> ReachabilityResult {
    try_reachable_space(m, qts, strategy, max_iterations)
        .unwrap_or_else(|e| panic!("reachable_space: {e}"))
}

/// Fallible reachability: every condition the image kernel reports as a
/// [`QitsError`] surfaces here instead of panicking.
pub fn try_reachable_space(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    strategy: Strategy,
    max_iterations: usize,
) -> Result<ReachabilityResult, QitsError> {
    fixpoint_with(m, qts, &strategy, max_iterations, &[], None)
}

/// [`reachable_space`], additionally keeping `kept` subspaces alive
/// across every collection of the run. This is how [`check_invariant`]
/// carries the invariant through a GC'd run; callers holding other
/// subspaces on the same manager can do the same.
///
/// # Panics
///
/// Panics where the fallible drivers ([`try_reachable_space`],
/// [`crate::Engine::reachable_space`]) return `Err`.
pub fn reachable_space_keeping(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    strategy: Strategy,
    max_iterations: usize,
    kept: &[&Subspace],
) -> ReachabilityResult {
    fixpoint_with(m, qts, &strategy, max_iterations, kept, None)
        .unwrap_or_else(|e| panic!("reachable_space_keeping: {e}"))
}

/// The fixpoint core behind every reachability driver — free-function
/// shims and [`crate::Engine`] alike: iterates `S <- S v T(S)` with the
/// image computed through an [`ImageStrategy`] object, rooting the system
/// and the `kept` subspaces across in-image safepoints and polling the
/// between-iteration safepoint with the full live set.
///
/// `start` overrides the starting space (default: the system's initial
/// subspace) — the resume path of [`crate::Engine::resume_reachable_space`].
/// Restarting the iteration from any intermediate `S_j` is sound because
/// the closure is monotone: `S_j` already contains `S0`, so
/// `S <- S v T(S)` from `S_j` walks exactly the tail of the original
/// chain and converges to the same least fixpoint.
pub(crate) fn fixpoint_with(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    strategy: &dyn ImageStrategy,
    max_iterations: usize,
    kept: &[&Subspace],
    start: Option<Subspace>,
) -> Result<ReachabilityResult, QitsError> {
    let ops = qts.operations().clone();
    let mut space = start.unwrap_or_else(|| qts.initial().clone());
    let mut stats = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut collections = 0usize;
    let mut reclaimed_nodes = 0u64;
    while iterations < max_iterations {
        if space_is_full(&space) {
            // The space cannot grow further: skip the final image.
            converged = true;
            break;
        }
        // The image call may collect at its internal safepoints; the
        // system's initial subspace and the kept subspaces are live but
        // not part of the call, so root them across it.
        let (img, st) = {
            let mut roots = qts.protect(m);
            for s in kept {
                roots.extend(s.protect(m));
            }
            let result = strategy.compute(m, &ops, &space);
            m.unprotect_all(roots);
            result?
        };
        // `reclaimed_nodes` must cover the same collections `collections`
        // counts: the in-image total includes worker-manager reclaim
        // (parallel strategies), which `safepoint_reclaimed` alone — a
        // main-manager counter — would miss.
        collections += st.safepoint_collections as usize;
        reclaimed_nodes += st.reclaimed_nodes;
        iterations += 1;
        stats.push(st);
        let joined = space.join(m, &img);
        if joined.dim() == space.dim() {
            converged = true;
            break;
        }
        space = joined;
        // Re-check fullness right after the join: saturating on the very
        // last permitted iteration is still a proven fixpoint.
        if space_is_full(&space) {
            converged = true;
            break;
        }
        // Between iterations every intermediate (images, slices, residuals)
        // is garbage; only the system, the working space, and the kept
        // subspaces are live. This is a safepoint like the in-image ones:
        // poll the policy through the same entry.
        let mut holders: Vec<&dyn EdgeHolder> = vec![qts, &space];
        holders.extend(kept.iter().map(|s| *s as &dyn EdgeHolder));
        if let Some(out) = m.maybe_collect_at_safepoint(&holders) {
            collections += 1;
            reclaimed_nodes += out.reclaimed as u64;
        }
    }
    Ok(ReachabilityResult {
        space,
        iterations,
        converged,
        stats,
        collections,
        reclaimed_nodes,
    })
}

/// Checks the safety property "every reachable state stays inside
/// `invariant`".
///
/// Returns the verdict plus the reachability result that witnessed it.
/// A `false` verdict with `converged = false` means the analysis was
/// truncated and the verdict is only valid for the explored prefix.
///
/// Infallible shim over [`try_check_invariant`] (panics where that
/// errors); [`crate::Engine::check_invariant`] is the session API.
pub fn check_invariant(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    invariant: &Subspace,
    strategy: Strategy,
    max_iterations: usize,
) -> (bool, ReachabilityResult) {
    try_check_invariant(m, qts, invariant, strategy, max_iterations)
        .unwrap_or_else(|e| panic!("check_invariant: {e}"))
}

/// Fallible invariant checking: the verdict plus the reachability result
/// that witnessed it, or the [`QitsError`] the underlying image
/// computation hit.
pub fn try_check_invariant(
    m: &mut TddManager,
    qts: &QuantumTransitionSystem,
    invariant: &Subspace,
    strategy: Strategy,
    max_iterations: usize,
) -> Result<(bool, ReachabilityResult), QitsError> {
    let reach = fixpoint_with(m, qts, &strategy, max_iterations, &[invariant], None)?;
    let holds = reach.space.is_subspace_of(m, invariant);
    Ok((holds, reach))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::image;
    use qits_circuit::generators;
    use qits_circuit::tensorize::states;
    use qits_tdd::GcPolicy;

    #[test]
    fn grover_reaches_fixpoint_immediately() {
        // The Grover initial subspace is invariant: 1 iteration suffices.
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        let r = reachable_space(&mut m, &qts, Strategy::Contraction { k1: 2, k2: 2 }, 10);
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
        assert!(r.space.equals(&mut m, qts.initial()));
    }

    #[test]
    fn walk_reachable_space_grows_then_saturates() {
        // The noiseless+noisy walk spreads over the whole cycle; its
        // reachable space saturates at the full 2^n dimension eventually.
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.5));
        let r = reachable_space(&mut m, &qts, Strategy::Contraction { k1: 2, k2: 2 }, 20);
        assert!(r.converged);
        assert!(r.space.dim() > qts.initial().dim());
        // Fixpoint really is a fixpoint.
        let ops = qts.operations().clone();
        let (img, _) = image(
            &mut m,
            &ops,
            &r.space,
            Strategy::Contraction { k1: 2, k2: 2 },
        );
        assert!(img.is_subspace_of(&mut m, &r.space));
    }

    #[test]
    fn saturating_on_the_last_iteration_still_converges() {
        // The walk fills the 2^3-dimensional space; give it exactly as
        // many iterations as it needs and no spare one: fullness after
        // the final join must still report convergence.
        let mut probe = TddManager::new();
        let qts_probe = QuantumTransitionSystem::from_spec(&mut probe, &generators::qrw(3, 0.5));
        let full_run = reachable_space(
            &mut probe,
            &qts_probe,
            Strategy::Contraction { k1: 2, k2: 2 },
            20,
        );
        assert!(full_run.converged);
        assert_eq!(full_run.space.dim(), 8, "walk must fill the space");

        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.5));
        let tight = reachable_space(
            &mut m,
            &qts,
            Strategy::Contraction { k1: 2, k2: 2 },
            full_run.iterations,
        );
        assert_eq!(tight.space.dim(), 8);
        assert!(
            tight.converged,
            "saturating exactly at max_iterations proves the fixpoint"
        );
    }

    #[test]
    fn full_space_short_circuits_without_an_image() {
        // Starting from the full space, the fixpoint is immediate and no
        // image computation runs at all.
        let mut m = TddManager::new();
        let full = Subspace::full(&mut m, 2);
        let op = qits_circuit::Operation::from_circuit("id", &{
            let mut c = qits_circuit::Circuit::new(2);
            c.push(qits_circuit::Gate::h(0));
            c
        });
        let qts = QuantumTransitionSystem::new(2, vec![op], full);
        let r = reachable_space(&mut m, &qts, Strategy::Basic, 10);
        assert!(r.converged);
        assert_eq!(r.iterations, 0, "full space needs no image computation");
        assert_eq!(r.space.dim(), 4);
    }

    #[test]
    fn reachable_space_is_an_invariant() {
        // The reachable space itself always satisfies the invariant check.
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
        let r = reachable_space(&mut m, &qts, Strategy::Basic, 20);
        assert!(r.converged);
        let inv = r.space.clone();
        let (holds, r2) = check_invariant(&mut m, &qts, &inv, Strategy::Basic, 20);
        assert!(holds);
        assert!(r2.converged);
        assert_eq!(r2.space.dim(), r.space.dim());
    }

    #[test]
    fn invariant_violated_when_too_small() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
        // The initial state alone is not invariant under GHZ preparation.
        let vars = Subspace::ket_vars(3);
        let zero_ket = m.product_ket(&vars, &[states::ZERO; 3]);
        let only_zero = Subspace::from_states(&mut m, 3, &[zero_ket]);
        let (holds, _) = check_invariant(&mut m, &qts, &only_zero, Strategy::Basic, 10);
        assert!(!holds);
    }

    #[test]
    fn max_iterations_truncates() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(4, 0.5));
        let r = reachable_space(&mut m, &qts, Strategy::Contraction { k1: 2, k2: 2 }, 1);
        assert!(!r.converged);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn gc_between_iterations_matches_grow_only_run() {
        // The same fixpoint, with and without an aggressive GC policy:
        // identical space, nodes actually reclaimed, smaller final arena.
        let spec = generators::qrw(3, 0.5);
        let strategy = Strategy::Contraction { k1: 2, k2: 2 };

        let mut m_plain = TddManager::new();
        let qts_plain = QuantumTransitionSystem::from_spec(&mut m_plain, &spec);
        let r_plain = reachable_space(&mut m_plain, &qts_plain, strategy, 20);

        let mut m_gc = TddManager::new();
        let qts_gc = QuantumTransitionSystem::from_spec(&mut m_gc, &spec);
        m_gc.set_gc_policy(Some(GcPolicy::aggressive()));
        let r_gc = reachable_space(&mut m_gc, &qts_gc, strategy, 20);

        assert!(r_gc.converged);
        assert_eq!(r_plain.space.dim(), r_gc.space.dim());
        assert!(r_gc.collections > 0, "aggressive policy must collect");
        assert!(r_gc.reclaimed_nodes > 0, "iterations must produce garbage");
        assert!(
            m_gc.arena_len() < m_plain.arena_len(),
            "GC run must end with a smaller arena: {} vs {}",
            m_gc.arena_len(),
            m_plain.arena_len()
        );
        // The held structures are untouched by the collections: the
        // fixpoint is a fixpoint and the initial space is contained in it.
        assert!(qts_gc
            .initial()
            .clone()
            .is_subspace_of(&mut m_gc, &r_gc.space));
        let ops = qts_gc.operations().clone();
        let (img, _) = image(&mut m_gc, &ops, &r_gc.space, strategy);
        assert!(img.is_subspace_of(&mut m_gc, &r_gc.space));
    }

    #[test]
    fn gc_keeps_the_checked_invariant_valid() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::qrw(3, 0.3));
        m.set_gc_policy(Some(GcPolicy::aggressive()));
        let vars = Subspace::ket_vars(3);
        let bad_ket = m.basis_ket(&vars, &[true, false, false]);
        let bad = Subspace::from_states(&mut m, 3, &[bad_ket]);
        let safe = bad.complement(&mut m);
        let (holds, r) = check_invariant(
            &mut m,
            &qts,
            &safe,
            Strategy::Contraction { k1: 2, k2: 2 },
            20,
        );
        assert!(r.converged);
        assert!(!holds, "the walk eventually reaches the bad state");
        assert!(r.collections > 0);
        // `safe` rode through every collection untouched: it still has
        // dimension 7 and still excludes the bad state.
        assert_eq!(safe.dim(), 7);
        let bad_again = m.basis_ket(&vars, &[true, false, false]);
        assert!(!safe.contains(&mut m, bad_again));
    }
}
