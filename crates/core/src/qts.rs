//! Quantum transition systems (Definition 2 of the paper).

use std::ops::Deref;
use std::sync::Arc;

use qits_circuit::{generators::QtsSpec, Operation};
use qits_tdd::TddManager;

use crate::error::QitsError;
use crate::subspace::Subspace;

/// The operations view of a transition system: the symbols `Sigma` and
/// their quantum operations `T_sigma`, detached from any subspace state.
///
/// Operations are circuits — they hold **no TDD edges** — so this view is
/// immutable and cheaply cloneable (the operation list is behind an
/// [`Arc`]). Cloning [`QuantumTransitionSystem::operations`] gives an
/// owned handle that outlives any borrow of the system — handy when a
/// caller wants to drive the image kernel repeatedly while the system's
/// initial subspace is also in play.
///
/// Derefs to `[Operation]`, so anything taking `&[Operation]` accepts
/// `&ops` directly.
#[derive(Debug, Clone)]
pub struct Operations {
    n_qubits: u32,
    ops: Arc<[Operation]>,
}

impl Operations {
    /// Wraps an operation list as a shareable view, validating that every
    /// operation acts on the given register and has a non-empty Kraus set.
    pub fn try_new(n_qubits: u32, operations: Vec<Operation>) -> Result<Self, QitsError> {
        for op in &operations {
            if op.n_qubits() != n_qubits {
                return Err(QitsError::RegisterMismatch {
                    expected: n_qubits,
                    found: op.n_qubits(),
                    context: format!("operation '{}'", op.label()),
                });
            }
            if op.branch_count() == 0 {
                return Err(QitsError::EmptyKrausSet {
                    label: op.label().to_string(),
                });
            }
        }
        Ok(Operations {
            n_qubits,
            ops: operations.into(),
        })
    }

    /// Wraps an operation list as a shareable view.
    ///
    /// # Panics
    ///
    /// Panics if any operation disagrees on the register width or has an
    /// empty Kraus set; [`Operations::try_new`] reports the same
    /// conditions as [`QitsError`] values instead.
    pub fn new(n_qubits: u32, operations: Vec<Operation>) -> Self {
        Self::try_new(n_qubits, operations).unwrap_or_else(|e| panic!("Operations::new: {e}"))
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Whether two handles share the same underlying operation list.
    pub fn shares_list_with(&self, other: &Operations) -> bool {
        Arc::ptr_eq(&self.ops, &other.ops)
    }
}

impl Deref for Operations {
    type Target = [Operation];

    fn deref(&self) -> &[Operation] {
        &self.ops
    }
}

/// A quantum transition system `M = (H, S0, Sigma, T)`: an `n`-qubit
/// Hilbert space, an initial subspace `S0`, and one quantum operation
/// `T_sigma` per symbol.
///
/// Internally this is two views glued together: an immutable, shareable
/// [`Operations`] handle and the initial-subspace state. Since the image
/// kernel reads its input immutably (GC never moves nodes, so nothing is
/// relocated in place), both views can be borrowed at once —
/// [`crate::Engine`] simply passes `(qts.operations(), qts.initial())`.
///
/// # Example
///
/// ```
/// use qits::QuantumTransitionSystem;
/// use qits_circuit::generators;
/// use qits_tdd::TddManager;
///
/// let mut m = TddManager::new();
/// let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(4));
/// assert_eq!(qts.n_qubits(), 4);
/// assert_eq!(qts.initial().dim(), 1);
/// assert_eq!(qts.operations().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuantumTransitionSystem {
    operations: Operations,
    initial: Subspace,
}

impl QuantumTransitionSystem {
    /// Assembles a transition system from parts, validating register
    /// agreement (operations and initial subspace) and that the register
    /// is non-empty.
    pub fn try_new(
        n_qubits: u32,
        operations: Vec<Operation>,
        initial: Subspace,
    ) -> Result<Self, QitsError> {
        if n_qubits == 0 {
            return Err(QitsError::ZeroQubitSystem);
        }
        if initial.n_qubits() != n_qubits {
            return Err(QitsError::RegisterMismatch {
                expected: n_qubits,
                found: initial.n_qubits(),
                context: "the initial subspace".to_string(),
            });
        }
        Ok(QuantumTransitionSystem {
            operations: Operations::try_new(n_qubits, operations)?,
            initial,
        })
    }

    /// Assembles a transition system from parts.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`QuantumTransitionSystem::try_new`]
    /// reports as [`QitsError`] values (register mismatch, zero-qubit
    /// register, empty Kraus set).
    pub fn new(n_qubits: u32, operations: Vec<Operation>, initial: Subspace) -> Self {
        Self::try_new(n_qubits, operations, initial)
            .unwrap_or_else(|e| panic!("QuantumTransitionSystem::new: {e}"))
    }

    /// Builds the system of a benchmark spec, spanning the initial
    /// subspace from the spec's product states.
    pub fn try_from_spec(m: &mut TddManager, spec: &QtsSpec) -> Result<Self, QitsError> {
        let vars = Subspace::ket_vars(spec.n_qubits);
        let states: Vec<_> = spec
            .initial_states
            .iter()
            .map(|amps| m.product_ket(&vars, amps))
            .collect();
        let initial = Subspace::from_states(m, spec.n_qubits, &states);
        QuantumTransitionSystem::try_new(spec.n_qubits, spec.operations.clone(), initial)
    }

    /// Builds the system of a benchmark spec.
    ///
    /// # Panics
    ///
    /// Panics where [`QuantumTransitionSystem::try_from_spec`] errors.
    pub fn from_spec(m: &mut TddManager, spec: &QtsSpec) -> Self {
        Self::try_from_spec(m, spec)
            .unwrap_or_else(|e| panic!("QuantumTransitionSystem::from_spec: {e}"))
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.operations.n_qubits()
    }

    /// The operations `T_sigma` — the one canonical accessor. Derefs to
    /// `&[Operation]`; clone it to obtain an owned, `Arc`-shared handle
    /// that outlives any borrow of `self`.
    pub fn operations(&self) -> &Operations {
        &self.operations
    }

    /// The initial subspace `S0`.
    pub fn initial(&self) -> &Subspace {
        &self.initial
    }

    /// Mutable access to the initial subspace, for callers that replace
    /// or extend `S0` between runs.
    pub fn initial_mut(&mut self) -> &mut Subspace {
        &mut self.initial
    }

    /// Registers the system's long-lived edges (the initial subspace's
    /// basis and projector; operations are circuits and hold no edges) as
    /// GC roots. Release them later with
    /// [`TddManager::unprotect_all`]; nothing else is needed — collection
    /// never moves a node.
    pub fn protect(&self, m: &mut TddManager) -> Vec<qits_tdd::RootId> {
        self.initial.protect(m)
    }
}

impl qits_tdd::EdgeHolder for QuantumTransitionSystem {
    fn gc_edges(&self, visit: &mut dyn FnMut(qits_tdd::Edge)) {
        self.initial.gc_edges(visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::generators;

    #[test]
    fn from_spec_spans_initial_states() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        assert_eq!(qts.initial().dim(), 2); // |++-> and |11-> independent
        assert_eq!(qts.operations().len(), 1);
    }

    #[test]
    fn bitflip_spec_has_four_operations() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
        assert_eq!(qts.operations().len(), 4);
        assert_eq!(qts.initial().dim(), 3);
    }

    #[test]
    #[should_panic(expected = "register mismatch")]
    fn new_rejects_mismatched_registers() {
        let initial = Subspace::zero(2);
        let op = qits_circuit::Operation::new("op", 3);
        let _ = QuantumTransitionSystem::new(2, vec![op], initial);
    }

    #[test]
    fn try_new_reports_mismatch_as_value() {
        let initial = Subspace::zero(2);
        let op = qits_circuit::Operation::new("op", 3);
        let err = QuantumTransitionSystem::try_new(2, vec![op], initial).unwrap_err();
        assert!(matches!(
            err,
            QitsError::RegisterMismatch {
                expected: 2,
                found: 3,
                ..
            }
        ));
    }

    #[test]
    fn try_new_reports_initial_subspace_mismatch() {
        let initial = Subspace::zero(4);
        let op = qits_circuit::Operation::new("op", 2);
        let err = QuantumTransitionSystem::try_new(2, vec![op], initial).unwrap_err();
        assert!(matches!(
            err,
            QitsError::RegisterMismatch {
                expected: 2,
                found: 4,
                ..
            }
        ));
    }

    #[test]
    fn try_new_rejects_zero_qubits() {
        let err = QuantumTransitionSystem::try_new(0, Vec::new(), Subspace::zero(0)).unwrap_err();
        assert_eq!(err, QitsError::ZeroQubitSystem);
    }

    #[test]
    fn cloned_operations_handle_is_shared_not_copied() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
        let a = qts.operations().clone();
        let b = qts.operations().clone();
        assert!(a.shares_list_with(&b), "handles must share the list");
        assert!(a.shares_list_with(qts.operations()));
        assert_eq!(a.len(), 4);
        assert_eq!(a.n_qubits(), qts.n_qubits());
    }

    #[test]
    fn operations_and_initial_borrow_simultaneously() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        // Both views usable at once: the image kernel's calling convention.
        let (ops, initial) = (qts.operations(), qts.initial());
        assert_eq!(ops.len(), 1);
        assert_eq!(initial.dim(), 2);
        let ops_slice: &[Operation] = ops; // deref coercion
        assert_eq!(ops_slice.len(), 1);
    }
}
