//! Quantum transition systems (Definition 2 of the paper).

use qits_circuit::{generators::QtsSpec, Operation};
use qits_tdd::TddManager;

use crate::subspace::Subspace;

/// A quantum transition system `M = (H, S0, Sigma, T)`: an `n`-qubit
/// Hilbert space, an initial subspace `S0`, and one quantum operation
/// `T_sigma` per symbol.
///
/// # Example
///
/// ```
/// use qits::QuantumTransitionSystem;
/// use qits_circuit::generators;
/// use qits_tdd::TddManager;
///
/// let mut m = TddManager::new();
/// let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(4));
/// assert_eq!(qts.n_qubits(), 4);
/// assert_eq!(qts.initial().dim(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuantumTransitionSystem {
    n_qubits: u32,
    operations: Vec<Operation>,
    initial: Subspace,
}

impl QuantumTransitionSystem {
    /// Assembles a transition system from parts.
    ///
    /// # Panics
    ///
    /// Panics if any operation or the initial subspace disagrees on the
    /// register width.
    pub fn new(n_qubits: u32, operations: Vec<Operation>, initial: Subspace) -> Self {
        assert_eq!(
            initial.n_qubits(),
            n_qubits,
            "initial subspace register mismatch"
        );
        for op in &operations {
            assert_eq!(
                op.n_qubits(),
                n_qubits,
                "operation '{}' register mismatch",
                op.label()
            );
        }
        QuantumTransitionSystem {
            n_qubits,
            operations,
            initial,
        }
    }

    /// Builds the system of a benchmark spec, spanning the initial
    /// subspace from the spec's product states.
    pub fn from_spec(m: &mut TddManager, spec: &QtsSpec) -> Self {
        let vars = Subspace::ket_vars(spec.n_qubits);
        let states: Vec<_> = spec
            .initial_states
            .iter()
            .map(|amps| m.product_ket(&vars, amps))
            .collect();
        let initial = Subspace::from_states(m, spec.n_qubits, &states);
        QuantumTransitionSystem::new(spec.n_qubits, spec.operations.clone(), initial)
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The operations `T_sigma`.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// The initial subspace `S0`.
    pub fn initial(&self) -> &Subspace {
        &self.initial
    }

    /// Registers the system's long-lived edges (the initial subspace's
    /// basis and projector; operations are circuits and hold no edges) as
    /// GC roots. Pair with [`QuantumTransitionSystem::relocate`] after a
    /// collection.
    pub fn protect(&self, m: &mut TddManager) -> Vec<qits_tdd::RootId> {
        self.initial.protect(m)
    }

    /// Rewrites the system's edges after a garbage collection (they must
    /// have been protected across it).
    pub fn relocate(&mut self, r: &qits_tdd::Relocations) {
        self.initial.relocate(r);
    }
}

impl qits_tdd::Relocatable for QuantumTransitionSystem {
    fn gc_protect(&self, m: &mut TddManager) -> Vec<qits_tdd::RootId> {
        self.protect(m)
    }

    fn gc_relocate(&mut self, r: &qits_tdd::Relocations) {
        self.relocate(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::generators;

    #[test]
    fn from_spec_spans_initial_states() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        assert_eq!(qts.initial().dim(), 2); // |++-> and |11-> independent
        assert_eq!(qts.operations().len(), 1);
    }

    #[test]
    fn bitflip_spec_has_four_operations() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
        assert_eq!(qts.operations().len(), 4);
        assert_eq!(qts.initial().dim(), 3);
    }

    #[test]
    #[should_panic(expected = "register mismatch")]
    fn new_rejects_mismatched_registers() {
        let initial = Subspace::zero(2);
        let op = qits_circuit::Operation::new("op", 3);
        let _ = QuantumTransitionSystem::new(2, vec![op], initial);
    }
}
