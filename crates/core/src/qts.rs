//! Quantum transition systems (Definition 2 of the paper).

use std::ops::Deref;
use std::sync::Arc;

use qits_circuit::{generators::QtsSpec, Operation};
use qits_tdd::TddManager;

use crate::subspace::Subspace;

/// The operations view of a transition system: the symbols `Sigma` and
/// their quantum operations `T_sigma`, detached from any subspace state.
///
/// Operations are circuits — they hold **no TDD edges** — so this view is
/// immutable and cheaply cloneable (the operation list is behind an
/// [`Arc`]). That is the point of the type: [`crate::image`] takes its
/// input subspace `&mut` so in-image GC safepoints can relocate it, and a
/// caller that stores operations and initial subspace in one
/// [`QuantumTransitionSystem`] could never hand out both borrows at once.
/// [`QuantumTransitionSystem::parts_mut`] splits the borrow instead: an
/// owned `Operations` handle plus `&mut Subspace`.
///
/// Derefs to `[Operation]`, so anything taking `&[Operation]` accepts
/// `&ops` directly.
#[derive(Debug, Clone)]
pub struct Operations {
    n_qubits: u32,
    ops: Arc<[Operation]>,
}

impl Operations {
    /// Wraps an operation list as a shareable view.
    ///
    /// # Panics
    ///
    /// Panics if any operation disagrees on the register width.
    pub fn new(n_qubits: u32, operations: Vec<Operation>) -> Self {
        for op in &operations {
            assert_eq!(
                op.n_qubits(),
                n_qubits,
                "operation '{}' register mismatch",
                op.label()
            );
        }
        Operations {
            n_qubits,
            ops: operations.into(),
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }
}

impl Deref for Operations {
    type Target = [Operation];

    fn deref(&self) -> &[Operation] {
        &self.ops
    }
}

/// A quantum transition system `M = (H, S0, Sigma, T)`: an `n`-qubit
/// Hilbert space, an initial subspace `S0`, and one quantum operation
/// `T_sigma` per symbol.
///
/// Internally this is two views glued together: an immutable, shareable
/// [`Operations`] handle and the mutable initial-subspace state. Use
/// [`QuantumTransitionSystem::parts_mut`] to borrow them apart — the shape
/// [`crate::image`] wants now that its input is `&mut` (see the GC
/// safepoint discussion there).
///
/// # Example
///
/// ```
/// use qits::QuantumTransitionSystem;
/// use qits_circuit::generators;
/// use qits_tdd::TddManager;
///
/// let mut m = TddManager::new();
/// let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(4));
/// assert_eq!(qts.n_qubits(), 4);
/// assert_eq!(qts.initial().dim(), 1);
/// // Borrow split: shared operations handle + mutable initial subspace.
/// let (ops, initial) = qts.parts_mut();
/// assert_eq!(ops.len(), 1);
/// assert_eq!(initial.dim(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuantumTransitionSystem {
    operations: Operations,
    initial: Subspace,
}

impl QuantumTransitionSystem {
    /// Assembles a transition system from parts.
    ///
    /// # Panics
    ///
    /// Panics if any operation or the initial subspace disagrees on the
    /// register width.
    pub fn new(n_qubits: u32, operations: Vec<Operation>, initial: Subspace) -> Self {
        assert_eq!(
            initial.n_qubits(),
            n_qubits,
            "initial subspace register mismatch"
        );
        QuantumTransitionSystem {
            operations: Operations::new(n_qubits, operations),
            initial,
        }
    }

    /// Builds the system of a benchmark spec, spanning the initial
    /// subspace from the spec's product states.
    pub fn from_spec(m: &mut TddManager, spec: &QtsSpec) -> Self {
        let vars = Subspace::ket_vars(spec.n_qubits);
        let states: Vec<_> = spec
            .initial_states
            .iter()
            .map(|amps| m.product_ket(&vars, amps))
            .collect();
        let initial = Subspace::from_states(m, spec.n_qubits, &states);
        QuantumTransitionSystem::new(spec.n_qubits, spec.operations.clone(), initial)
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.operations.n_qubits()
    }

    /// The operations `T_sigma` (derefs to `&[Operation]`).
    pub fn operations(&self) -> &Operations {
        &self.operations
    }

    /// An owned, shareable handle to the operations — an [`Arc`] clone,
    /// not a deep copy. Taking the handle leaves `self` free to be
    /// borrowed mutably (e.g. as a GC holder) while an `image()` runs.
    pub fn operations_handle(&self) -> Operations {
        self.operations.clone()
    }

    /// The initial subspace `S0`.
    pub fn initial(&self) -> &Subspace {
        &self.initial
    }

    /// Mutable access to the initial subspace — the state half of the
    /// borrow split; GC safepoints inside [`crate::image`] relocate it in
    /// place when `S0` is the image input.
    pub fn initial_mut(&mut self) -> &mut Subspace {
        &mut self.initial
    }

    /// Splits the system into its two views: an owned operations handle
    /// (cheap [`Arc`] clone) and the mutable initial subspace. This is the
    /// calling convention for computing the image of `S0` itself:
    ///
    /// ```
    /// # use qits::{image, QuantumTransitionSystem, Strategy};
    /// # use qits_circuit::generators;
    /// # use qits_tdd::TddManager;
    /// # let mut m = TddManager::new();
    /// # let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::ghz(3));
    /// let (ops, initial) = qts.parts_mut();
    /// let (img, _) = image(&mut m, &ops, initial, Strategy::Basic);
    /// ```
    pub fn parts_mut(&mut self) -> (Operations, &mut Subspace) {
        (self.operations.clone(), &mut self.initial)
    }

    /// Registers the system's long-lived edges (the initial subspace's
    /// basis and projector; operations are circuits and hold no edges) as
    /// GC roots. Pair with [`QuantumTransitionSystem::relocate`] after a
    /// collection.
    pub fn protect(&self, m: &mut TddManager) -> Vec<qits_tdd::RootId> {
        self.initial.protect(m)
    }

    /// Rewrites the system's edges after a garbage collection (they must
    /// have been protected across it).
    pub fn relocate(&mut self, r: &qits_tdd::Relocations) {
        self.initial.relocate(r);
    }
}

impl qits_tdd::Relocatable for QuantumTransitionSystem {
    fn gc_protect(&self, m: &mut TddManager) -> Vec<qits_tdd::RootId> {
        self.protect(m)
    }

    fn gc_relocate(&mut self, r: &qits_tdd::Relocations) {
        self.relocate(r);
    }

    fn gc_restore(&mut self, m: &TddManager, ids: &mut std::slice::Iter<'_, qits_tdd::RootId>) {
        self.initial.gc_restore(m, ids);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::generators;

    #[test]
    fn from_spec_spans_initial_states() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        assert_eq!(qts.initial().dim(), 2); // |++-> and |11-> independent
        assert_eq!(qts.operations().len(), 1);
    }

    #[test]
    fn bitflip_spec_has_four_operations() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
        assert_eq!(qts.operations().len(), 4);
        assert_eq!(qts.initial().dim(), 3);
    }

    #[test]
    #[should_panic(expected = "register mismatch")]
    fn new_rejects_mismatched_registers() {
        let initial = Subspace::zero(2);
        let op = qits_circuit::Operation::new("op", 3);
        let _ = QuantumTransitionSystem::new(2, vec![op], initial);
    }

    #[test]
    fn operations_handle_is_shared_not_copied() {
        let mut m = TddManager::new();
        let qts = QuantumTransitionSystem::from_spec(&mut m, &generators::bitflip_code());
        let a = qts.operations_handle();
        let b = qts.operations_handle();
        assert!(Arc::ptr_eq(&a.ops, &b.ops), "handles must share the list");
        assert_eq!(a.len(), 4);
        assert_eq!(a.n_qubits(), qts.n_qubits());
    }

    #[test]
    fn parts_mut_splits_the_borrow() {
        let mut m = TddManager::new();
        let mut qts = QuantumTransitionSystem::from_spec(&mut m, &generators::grover(3));
        let (ops, initial) = qts.parts_mut();
        // Both halves usable simultaneously: the whole point of the split.
        assert_eq!(ops.len(), 1);
        assert_eq!(initial.dim(), 2);
        let ops_slice: &[Operation] = &ops; // deref coercion
        assert_eq!(ops_slice.len(), 1);
    }
}
