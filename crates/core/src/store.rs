//! Persistence for engine sessions — the core-crate face of the
//! [`qits_store`] snapshot format.
//!
//! The `qits-store` crate owns the *container*: a versioned, checksummed
//! binary file holding a topologically-ordered TDD dump, subspace
//! descriptors, a reachability checkpoint, and opaque memo entries. This
//! module owns the *meaning*: how an [`Engine`]'s state maps into that
//! container and back.
//!
//! * [`Engine::snapshot`] / [`Engine::save_snapshot`] dump the session's
//!   initial subspace (and, optionally, an in-flight
//!   [`ReachabilityResult`] checkpoint) into a [`Snapshot`].
//! * [`Engine::warm_start`] / [`Engine::warm_start_from`] restore a
//!   snapshot into a live session: the TDD dump is re-interned through
//!   the manager's unique table (order-aware — a dump taken under a
//!   sifted order loads correctly into any order), and a checkpointed
//!   fixpoint comes back as a [`ResumedReach`] that
//!   [`Engine::resume_reachable_space`] continues.
//! * [`encode_job_output`] / [`decode_job_output`] give [`JobOutput`] a
//!   stable byte form — the payload of the memo spill behind
//!   [`crate::PoolBuilder::warm_start`] and
//!   [`crate::ServiceHandle::save_snapshot`].
//! * [`encode_image_stats`] / [`decode_image_stats`] are shared with the
//!   bench crate's resumable checkpoints, so a resumed benchmark row is
//!   bit-identical to the one measured before the restart (`f64`s travel
//!   as raw bits).
//!
//! Every failure surfaces as a typed [`crate::QitsError::StoreIo`] /
//! [`crate::QitsError::StoreCorrupt`] / [`crate::QitsError::StoreVersion`]
//! / [`crate::QitsError::StoreSpecMismatch`] — never a panic: snapshot
//! files cross process lifetimes and machines, so they are treated as
//! untrusted input end to end.

use std::path::Path;
use std::time::Duration;

use qits_num::Cplx;
use qits_tdd::{CacheStats, Edge};

use crate::engine::Engine;
use crate::error::QitsError;
use crate::image::ImageStats;
use crate::mc::ReachabilityResult;
use crate::pool::{ImageOutcome, JobOutput, MemoKey, ReachOutcome, ResultMemo};
use crate::subspace::Subspace;

pub use qits_store::{
    decode_tdd_dump, encode_tdd_dump, ByteReader, ByteWriter, MemoEntry, ReachDump, Snapshot,
    StoreError, SubspaceDump, FORMAT_VERSION, MAGIC,
};

// ----------------------------------------------------------------------
// Subspaces in and out of the root table.
// ----------------------------------------------------------------------

/// Appends a subspace's edges (basis kets, then projector) to the dump's
/// root table and returns the descriptor indexing them.
fn push_subspace_roots(s: &Subspace, roots: &mut Vec<Edge>) -> SubspaceDump {
    let start = roots.len() as u32;
    let basis = (0..s.dim() as u32).map(|i| start + i).collect();
    roots.extend_from_slice(s.basis());
    roots.push(s.projector());
    SubspaceDump {
        n_qubits: s.n_qubits(),
        basis,
        projector: start + s.dim() as u32,
    }
}

/// Reassembles a subspace from its descriptor against the restored root
/// table. Out-of-range indices are [`QitsError::StoreCorrupt`].
fn restore_subspace(d: &SubspaceDump, roots: &[Edge]) -> Result<Subspace, QitsError> {
    let fetch = |i: u32| {
        roots
            .get(i as usize)
            .copied()
            .ok_or_else(|| QitsError::StoreCorrupt {
                detail: format!(
                    "subspace root index {i} out of range ({} roots)",
                    roots.len()
                ),
            })
    };
    let mut basis = Vec::with_capacity(d.basis.len());
    for &i in &d.basis {
        basis.push(fetch(i)?);
    }
    Ok(Subspace::from_parts(d.n_qubits, basis, fetch(d.projector)?))
}

// ----------------------------------------------------------------------
// Engine snapshots.
// ----------------------------------------------------------------------

/// A reachability checkpoint restored by [`Engine::warm_start`]: the
/// working space as of the snapshot, plus the counters accumulated
/// before it — everything [`Engine::resume_reachable_space`] needs to
/// continue the fixpoint as if the process had never stopped.
#[derive(Debug, Clone)]
pub struct ResumedReach {
    /// The working space `S_j` at checkpoint time (on the restoring
    /// session's manager).
    pub space: Subspace,
    /// Image computations performed before the checkpoint.
    pub iterations: usize,
    /// Whether the checkpointed run had already converged.
    pub converged: bool,
    /// Garbage collections performed before the checkpoint.
    pub collections: usize,
    /// Nodes reclaimed by those collections.
    pub reclaimed_nodes: u64,
}

impl Engine {
    /// Captures the session into a [`Snapshot`]: the initial subspace,
    /// an optional in-flight reachability checkpoint, and the spec
    /// fingerprint (when the session was built from an
    /// [`crate::EngineSpec`]). All diagrams are dumped in one
    /// topologically-ordered node table, shared subgraphs included once.
    pub fn snapshot(&self, label: &str, progress: Option<&ReachabilityResult>) -> Snapshot {
        let mut roots: Vec<Edge> = Vec::new();
        let mut subspaces = vec![push_subspace_roots(self.initial(), &mut roots)];
        let reach = progress.map(|r| {
            let idx = subspaces.len() as u32;
            subspaces.push(push_subspace_roots(&r.space, &mut roots));
            ReachDump {
                space: idx,
                iterations: r.iterations as u64,
                converged: r.converged,
                collections: r.collections as u64,
                reclaimed_nodes: r.reclaimed_nodes,
            }
        });
        let mut snap = Snapshot::new(label);
        snap.spec_fingerprint = self.fingerprint();
        snap.tdd = Some(self.manager().dump(&roots));
        snap.subspaces = subspaces;
        snap.reach = reach;
        snap
    }

    /// [`Engine::snapshot`] straight to a file (atomically: written to a
    /// temporary sibling, then renamed into place).
    pub fn save_snapshot(
        &self,
        path: impl AsRef<Path>,
        label: &str,
        progress: Option<&ReachabilityResult>,
    ) -> Result<(), QitsError> {
        self.snapshot(label, progress)
            .write_to(path)
            .map_err(QitsError::from)
    }

    /// Restores a snapshot into this session: validates the spec
    /// fingerprint (when both sides carry one), re-interns the TDD dump
    /// through the manager — warming the unique table and weight table
    /// with every diagram the snapshot holds — and returns the
    /// reachability checkpoint, if the snapshot recorded one, ready for
    /// [`Engine::resume_reachable_space`].
    ///
    /// The dump is order-aware: a snapshot taken under a different (or
    /// dynamically sifted) variable order is re-expressed under this
    /// session's order on the way in, exactly like a cross-manager
    /// import.
    pub fn warm_start(&mut self, snap: &Snapshot) -> Result<Option<ResumedReach>, QitsError> {
        if let (Some(expected), Some(found)) = (self.fingerprint(), snap.spec_fingerprint) {
            if expected != found {
                return Err(QitsError::StoreSpecMismatch { expected, found });
            }
        }
        let roots: Vec<Edge> = match &snap.tdd {
            Some(dump) => self.manager_mut().load_dump(dump)?,
            None => Vec::new(),
        };
        // Restore every descriptor — even the ones this session does not
        // keep — so a snapshot with dangling indices is rejected whole
        // instead of failing later, after state was already mutated.
        let mut restored = Vec::with_capacity(snap.subspaces.len());
        for sd in &snap.subspaces {
            restored.push(restore_subspace(sd, &roots)?);
        }
        match &snap.reach {
            None => Ok(None),
            Some(rd) => {
                let space = restored.get(rd.space as usize).cloned().ok_or_else(|| {
                    QitsError::StoreCorrupt {
                        detail: format!(
                            "reach checkpoint references subspace {} of {}",
                            rd.space,
                            restored.len()
                        ),
                    }
                })?;
                Ok(Some(ResumedReach {
                    space,
                    iterations: rd.iterations as usize,
                    converged: rd.converged,
                    collections: rd.collections as usize,
                    reclaimed_nodes: rd.reclaimed_nodes,
                }))
            }
        }
    }

    /// [`Engine::warm_start`] straight from a file.
    pub fn warm_start_from(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<Option<ResumedReach>, QitsError> {
        let snap = Snapshot::read_from(path)?;
        self.warm_start(&snap)
    }
}

// ----------------------------------------------------------------------
// Byte codecs for the crate's result types.
// ----------------------------------------------------------------------

fn encode_cache_stats(w: &mut ByteWriter, c: &CacheStats) {
    w.put_u64(c.hits);
    w.put_u64(c.misses);
    w.put_u64(c.inserts);
    w.put_u64(c.evictions);
    w.put_u64(c.purged);
}

fn decode_cache_stats(r: &mut ByteReader<'_>) -> Result<CacheStats, StoreError> {
    Ok(CacheStats {
        hits: r.get_u64()?,
        misses: r.get_u64()?,
        inserts: r.get_u64()?,
        evictions: r.get_u64()?,
        purged: r.get_u64()?,
    })
}

/// Serialises an [`ImageStats`] into the shared byte form. `f64`-free by
/// construction; the embedded [`Duration`] travels as whole seconds plus
/// subsecond nanoseconds, so the round trip is exact.
pub fn encode_image_stats(w: &mut ByteWriter, st: &ImageStats) {
    w.put_u64(st.max_nodes as u64);
    w.put_u64(st.elapsed.as_secs());
    w.put_u32(st.elapsed.subsec_nanos());
    w.put_u64(st.branches as u64);
    w.put_u64(st.output_dim as u64);
    w.put_u64(st.live_nodes as u64);
    w.put_u64(st.allocated_nodes as u64);
    w.put_u64(st.peak_arena as u64);
    w.put_u64(st.reclaimed_nodes);
    w.put_u64(st.safepoints);
    w.put_u64(st.safepoint_collections);
    w.put_u64(st.safepoint_reclaimed);
    encode_cache_stats(w, &st.cont_cache);
    encode_cache_stats(w, &st.add_cache);
    w.put_u32(st.probe_p50);
    w.put_u32(st.probe_p99);
    w.put_u64(st.tombstones as u64);
    w.put_u64(st.index_cells as u64);
    w.put_u64(st.generation_bumps);
    w.put_u64(st.stale_handle_hits);
    w.put_u64(st.gc_nanos);
    w.put_u64(st.swaps);
    w.put_u64(st.sift_passes);
}

/// Inverse of [`encode_image_stats`].
pub fn decode_image_stats(r: &mut ByteReader<'_>) -> Result<ImageStats, StoreError> {
    Ok(ImageStats {
        max_nodes: r.get_u64()? as usize,
        elapsed: Duration::new(r.get_u64()?, r.get_u32()?),
        branches: r.get_u64()? as usize,
        output_dim: r.get_u64()? as usize,
        live_nodes: r.get_u64()? as usize,
        allocated_nodes: r.get_u64()? as usize,
        peak_arena: r.get_u64()? as usize,
        reclaimed_nodes: r.get_u64()?,
        safepoints: r.get_u64()?,
        safepoint_collections: r.get_u64()?,
        safepoint_reclaimed: r.get_u64()?,
        cont_cache: decode_cache_stats(r)?,
        add_cache: decode_cache_stats(r)?,
        probe_p50: r.get_u32()?,
        probe_p99: r.get_u32()?,
        tombstones: r.get_u64()? as usize,
        index_cells: r.get_u64()? as usize,
        generation_bumps: r.get_u64()?,
        stale_handle_hits: r.get_u64()?,
        gc_nanos: r.get_u64()?,
        swaps: r.get_u64()?,
        sift_passes: r.get_u64()?,
    })
}

fn encode_reach_outcome(w: &mut ByteWriter, r: &ReachOutcome) {
    w.put_u64(r.dim as u64);
    w.put_u64(r.iterations as u64);
    w.put_bool(r.converged);
    w.put_u64(r.collections as u64);
    w.put_u64(r.reclaimed_nodes);
    w.put_u64(r.stats.len() as u64);
    for st in &r.stats {
        encode_image_stats(w, st);
    }
}

fn decode_reach_outcome(r: &mut ByteReader<'_>) -> Result<ReachOutcome, StoreError> {
    let dim = r.get_u64()? as usize;
    let iterations = r.get_u64()? as usize;
    let converged = r.get_bool()?;
    let collections = r.get_u64()? as usize;
    let reclaimed_nodes = r.get_u64()?;
    let n = r.get_count(8)?;
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        stats.push(decode_image_stats(r)?);
    }
    Ok(ReachOutcome {
        dim,
        iterations,
        converged,
        collections,
        reclaimed_nodes,
        stats,
    })
}

/// Serialises a [`JobOutput`] into the stable byte form memo spills use.
pub fn encode_job_output(out: &JobOutput) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match out {
        JobOutput::Image(o) => {
            w.put_u8(0);
            w.put_u64(o.dim as u64);
            w.put_u64(o.amplitudes.len() as u64);
            for row in &o.amplitudes {
                w.put_u64(row.len() as u64);
                for a in row {
                    w.put_f64(a.re);
                    w.put_f64(a.im);
                }
            }
            encode_image_stats(&mut w, &o.stats);
        }
        JobOutput::Reachability(r) => {
            w.put_u8(1);
            encode_reach_outcome(&mut w, r);
        }
        JobOutput::Invariant { holds, reach } => {
            w.put_u8(2);
            w.put_bool(*holds);
            encode_reach_outcome(&mut w, reach);
        }
        JobOutput::Equivalence { equivalent } => {
            w.put_u8(3);
            w.put_bool(*equivalent);
        }
    }
    w.into_bytes()
}

/// Inverse of [`encode_job_output`]. Trailing bytes, unknown variant
/// tags, and short reads are all [`StoreError::Malformed`] /
/// [`StoreError::Truncated`] — a corrupt memo entry is rejected, never
/// misread.
pub fn decode_job_output(bytes: &[u8]) -> Result<JobOutput, StoreError> {
    let mut r = ByteReader::new(bytes);
    let out = match r.get_u8()? {
        0 => {
            let dim = r.get_u64()? as usize;
            let rows = r.get_count(8)?;
            let mut amplitudes = Vec::with_capacity(rows);
            for _ in 0..rows {
                let cols = r.get_count(16)?;
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(Cplx::new(r.get_f64()?, r.get_f64()?));
                }
                amplitudes.push(row);
            }
            let stats = decode_image_stats(&mut r)?;
            JobOutput::Image(Box::new(ImageOutcome {
                dim,
                amplitudes,
                stats,
            }))
        }
        1 => JobOutput::Reachability(decode_reach_outcome(&mut r)?),
        2 => {
            let holds = r.get_bool()?;
            JobOutput::Invariant {
                holds,
                reach: decode_reach_outcome(&mut r)?,
            }
        }
        3 => JobOutput::Equivalence {
            equivalent: r.get_bool()?,
        },
        tag => {
            return Err(StoreError::Malformed(format!(
                "unknown job-output tag {tag}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(StoreError::Malformed(format!(
            "{} trailing byte(s) after job output",
            r.remaining()
        )));
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Memo spills.
// ----------------------------------------------------------------------

/// Serialises every cached entry of a [`ResultMemo`] into snapshot memo
/// entries (oldest-first, so a smaller loader keeps the hottest tail).
pub(crate) fn spill_memo(memo: &ResultMemo) -> Vec<MemoEntry> {
    memo.export_entries()
        .into_iter()
        .map(|(key, out)| MemoEntry {
            key,
            value: encode_job_output(&out),
        })
        .collect()
}

/// Preloads decoded snapshot entries into a memo as warm entries.
/// Returns how many were loaded; a corrupt entry fails the whole load.
pub(crate) fn preload_memo(memo: &ResultMemo, entries: &[MemoEntry]) -> Result<usize, QitsError> {
    for e in entries {
        let out = decode_job_output(&e.value)?;
        memo.preload(MemoKey::from_raw(e.key), out);
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crate::image::Strategy;
    use qits_circuit::generators;

    fn busy_stats() -> ImageStats {
        let mut st = ImageStats {
            max_nodes: 17,
            elapsed: Duration::new(3, 999_999_999),
            branches: 5,
            output_dim: 4,
            ..ImageStats::default()
        };
        st.cont_cache.hits = 101;
        st.add_cache.purged = 7;
        st.probe_p99 = 12;
        st.gc_nanos = u64::MAX;
        st
    }

    #[test]
    fn image_stats_round_trip_exactly() {
        let st = busy_stats();
        let mut w = ByteWriter::new();
        encode_image_stats(&mut w, &st);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_image_stats(&mut r).unwrap(), st);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn every_job_output_variant_round_trips() {
        let outputs = vec![
            JobOutput::Image(Box::new(ImageOutcome {
                dim: 2,
                amplitudes: vec![vec![
                    Cplx::new(0.5, -0.25),
                    Cplx::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
                ]],
                stats: busy_stats(),
            })),
            JobOutput::Reachability(ReachOutcome {
                dim: 8,
                iterations: 3,
                converged: true,
                collections: 2,
                reclaimed_nodes: 40,
                stats: vec![busy_stats(), ImageStats::default()],
            }),
            JobOutput::Invariant {
                holds: false,
                reach: ReachOutcome {
                    dim: 1,
                    iterations: 1,
                    converged: false,
                    collections: 0,
                    reclaimed_nodes: 0,
                    stats: vec![],
                },
            },
            JobOutput::Equivalence { equivalent: true },
        ];
        for out in outputs {
            let bytes = encode_job_output(&out);
            let back = decode_job_output(&bytes).unwrap();
            // JobOutput's structural equality goes through Debug (the
            // memo-key identity), which covers every field bit-for-bit.
            assert_eq!(format!("{back:?}"), format!("{out:?}"));
        }
    }

    #[test]
    fn corrupt_job_outputs_are_typed_errors() {
        assert!(matches!(
            decode_job_output(&[9]),
            Err(StoreError::Malformed(_))
        ));
        assert!(matches!(decode_job_output(&[]), Err(StoreError::Truncated)));
        let mut bytes = encode_job_output(&JobOutput::Equivalence { equivalent: true });
        bytes.push(0);
        assert!(matches!(
            decode_job_output(&bytes),
            Err(StoreError::Malformed(_))
        ));
        let short = encode_job_output(&JobOutput::Reachability(ReachOutcome {
            dim: 1,
            iterations: 1,
            converged: true,
            collections: 0,
            reclaimed_nodes: 0,
            stats: vec![ImageStats::default()],
        }));
        assert!(matches!(
            decode_job_output(&short[..short.len() - 3]),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn engine_snapshot_restores_the_checkpoint() {
        let mut engine = EngineBuilder::new()
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .build_from_spec(&generators::qrw(3, 0.3))
            .unwrap();
        let partial = engine.reachable_space(1).unwrap();
        assert!(!partial.converged);
        let snap = engine.snapshot("test", Some(&partial));
        assert_eq!(snap.subspaces.len(), 2);

        let mut fresh = EngineBuilder::new()
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .build_from_spec(&generators::qrw(3, 0.3))
            .unwrap();
        let resumed = fresh.warm_start(&snap).unwrap().expect("checkpoint");
        assert_eq!(resumed.iterations, 1);
        assert!(!resumed.converged);
        assert_eq!(resumed.space.dim(), partial.space.dim());

        // Resuming finishes the fixpoint with the same final space and
        // combined iteration count as the uninterrupted run.
        let finished = fresh.resume_reachable_space(&resumed, 20).unwrap();
        let mut straight = EngineBuilder::new()
            .strategy(Strategy::Contraction { k1: 2, k2: 2 })
            .build_from_spec(&generators::qrw(3, 0.3))
            .unwrap();
        let full = straight.reachable_space(20).unwrap();
        assert!(finished.converged);
        assert_eq!(finished.space.dim(), full.space.dim());
        assert_eq!(finished.iterations, full.iterations);
    }

    #[test]
    fn warm_start_rejects_dangling_subspace_indices() {
        let engine = EngineBuilder::new()
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        let mut snap = engine.snapshot("bad", None);
        snap.subspaces[0].projector = 999;
        let mut other = EngineBuilder::new()
            .build_from_spec(&generators::ghz(3))
            .unwrap();
        assert!(matches!(
            other.warm_start(&snap),
            Err(QitsError::StoreCorrupt { .. })
        ));
    }

    #[test]
    fn memo_spill_round_trips_warm() {
        let memo = ResultMemo::new(8);
        memo.insert(
            MemoKey::from_raw(42),
            &JobOutput::Equivalence { equivalent: true },
        );
        let entries = spill_memo(&memo);
        assert_eq!(entries.len(), 1);
        let restored = ResultMemo::new(8);
        assert_eq!(preload_memo(&restored, &entries).unwrap(), 1);
        assert!(restored.get(&MemoKey::from_raw(42)).is_some());
        assert_eq!(restored.stats().warm_hits, 1);
    }
}
