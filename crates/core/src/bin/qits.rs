//! `qits` — the scenario-file CLI: parse a textual QTS, pick a strategy,
//! answer its declared properties as JSON lines.
//!
//! ```text
//! qits run scenarios/adder3.qts
//! qits run scenarios/repcode5.qts --workers 4 --memo 256
//! qits check scenarios/cliffordt4.qts
//! qits export --family adder --n 3 --out scenarios/adder3.qts
//! ```
//!
//! | subcommand | effect |
//! |---|---|
//! | `run <file>` | parse the scenario, build the engine, run every declared property, print one `result` JSON line per property and a final `done` line; exit 0 iff all properties answered |
//! | `check <file>` | parse only; print a `scenario` summary line |
//! | `export --family <f>` | synthesize a sample scenario for a generator family (`adder`, `repcode`, `cliffordt`) and print it (or write `--out`) |
//!
//! `run` flags: `--strategy auto|basic|addition|contraction` (default
//! `auto` — the Table I crossover picks per job), `--workers <k>` (run the
//! properties on a `k`-worker [`qits::EnginePool`] instead of a serial
//! engine), `--memo <cap>` (pool result-memo capacity), `--warm-start
//! <path>` (warm-start pool workers and memo from a snapshot file — implies
//! the pool path). The scenario grammar is documented in
//! [`qits_circuit::parse`].

use std::io::Write;
use std::process::ExitCode;

use qits::serve::proto;
use qits::{run_job, EnginePool, EngineSpec, Job, QitsError, Strategy};
use qits_circuit::parse::{parse_scenario, render_scenario, Property, Scenario};
use qits_circuit::tensorize::states;
use qits_circuit::{generators, Circuit, Gate};

struct RunOptions {
    file: String,
    strategy: String,
    workers: Option<usize>,
    memo: Option<usize>,
    warm_start: Option<String>,
}

fn parse_run_args(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        file: String::new(),
        strategy: "auto".to_string(),
        workers: None,
        memo: None,
        warm_start: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or(format!("{name} needs a value"))
        };
        match flag {
            "--strategy" => opts.strategy = value("--strategy")?,
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?,
                )
            }
            "--memo" => {
                opts.memo = Some(
                    value("--memo")?
                        .parse()
                        .map_err(|_| "--memo needs an integer".to_string())?,
                )
            }
            "--warm-start" => opts.warm_start = Some(value("--warm-start")?),
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            path if opts.file.is_empty() => opts.file = path.to_string(),
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }
    if opts.file.is_empty() {
        return Err("run needs a scenario file".to_string());
    }
    Ok(opts)
}

fn engine_spec(scenario: &Scenario, strategy: &str) -> Result<EngineSpec, String> {
    let spec = EngineSpec::new(scenario.to_spec());
    Ok(match strategy {
        "auto" => spec,
        "basic" => spec.strategy(Strategy::Basic),
        "addition" => spec.strategy(Strategy::Addition { k: 1 }),
        "contraction" => spec.strategy(Strategy::Contraction { k1: 4, k2: 4 }),
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn property_name(p: &Property) -> &'static str {
    match p {
        Property::Reachability { .. } => "reachability",
        Property::Invariant { .. } => "invariant",
        Property::Equivalence { .. } => "equivalence",
    }
}

/// Builds the job a property declares. Equivalence names were resolved at
/// parse time, so `circuit()` cannot fail here for a parsed scenario.
fn job_for(scenario: &Scenario, p: &Property) -> Result<Job, String> {
    Ok(match p {
        Property::Reachability { max_iterations } => Job::reachability(*max_iterations),
        Property::Invariant {
            states,
            max_iterations,
        } => Job::invariant(scenario.n_qubits, states.clone(), *max_iterations),
        Property::Equivalence { a, b, up_to_phase } => Job::Equivalence {
            a: scenario.circuit(a).map_err(|e| e.to_string())?,
            b: scenario.circuit(b).map_err(|e| e.to_string())?,
            up_to_phase: *up_to_phase,
        },
    })
}

fn result_line(
    scenario: &Scenario,
    index: usize,
    p: &Property,
    result: &Result<qits::JobOutput, QitsError>,
) -> String {
    let head = format!(
        "{{\"event\": \"result\", \"scenario\": \"{}\", \"index\": {index}, \
         \"property\": \"{}\"",
        proto::escape_json(&scenario.name),
        property_name(p),
    );
    match result {
        Ok(out) => format!(
            "{head}, \"status\": \"ok\", \"output\": {}}}",
            proto::output_json(out)
        ),
        Err(e) => format!(
            "{head}, \"status\": \"error\", \"error\": \"{}\"}}",
            proto::escape_json(&e.to_string())
        ),
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_run_args(args)?;
    let text =
        std::fs::read_to_string(&opts.file).map_err(|e| format!("reading '{}': {e}", opts.file))?;
    let scenario = parse_scenario(&text).map_err(|e| format!("{}: {e}", opts.file))?;
    let spec = engine_spec(&scenario, &opts.strategy)?;

    let jobs: Vec<Job> = scenario
        .properties
        .iter()
        .map(|p| job_for(&scenario, p))
        .collect::<Result<_, _>>()?;

    // A serial engine answers one property at a time; --workers or
    // --warm-start routes the whole batch through an EnginePool instead.
    let results: Vec<Result<qits::JobOutput, QitsError>> =
        if opts.workers.is_some() || opts.warm_start.is_some() {
            let mut builder = EnginePool::builder(spec);
            if let Some(w) = opts.workers {
                builder = builder.workers(w);
            }
            if let Some(cap) = opts.memo {
                builder = builder.memo_capacity(cap);
            }
            if let Some(path) = &opts.warm_start {
                builder = builder
                    .warm_start(path)
                    .map_err(|e| format!("warm start from '{path}': {e}"))?;
            }
            let pool = builder.build().map_err(|e| format!("building pool: {e}"))?;
            let handle = pool.handle();
            let tickets: Vec<_> = jobs.into_iter().map(|j| handle.submit(j)).collect();
            let results = tickets.into_iter().map(|t| t.join()).collect();
            pool.shutdown();
            results
        } else {
            let mut engine = spec.build().map_err(|e| format!("building engine: {e}"))?;
            jobs.iter().map(|j| run_job(&mut engine, j)).collect()
        };

    let mut failed = 0usize;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, (p, result)) in scenario.properties.iter().zip(&results).enumerate() {
        if result.is_err() {
            failed += 1;
        }
        writeln!(out, "{}", result_line(&scenario, i, p, result)).map_err(|e| e.to_string())?;
    }
    writeln!(
        out,
        "{{\"event\": \"done\", \"scenario\": \"{}\", \"properties\": {}, \"failed\": {failed}}}",
        proto::escape_json(&scenario.name),
        results.len(),
    )
    .map_err(|e| e.to_string())?;
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let [file] = args else {
        return Err("check takes exactly one scenario file".to_string());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading '{file}': {e}"))?;
    let s = parse_scenario(&text).map_err(|e| format!("{file}: {e}"))?;
    println!(
        "{{\"event\": \"scenario\", \"name\": \"{}\", \"n_qubits\": {}, \"ops\": {}, \
         \"circuits\": {}, \"initial_states\": {}, \"properties\": {}}}",
        proto::escape_json(&s.name),
        s.n_qubits,
        s.operations.len(),
        s.circuits.len(),
        s.initial_states.len(),
        s.properties.len(),
    );
    Ok(ExitCode::SUCCESS)
}

/// All `2^n` computational basis states as product states, qubit 0 the
/// most significant bit — the full-space invariant of the samples.
fn basis_states(n: u32) -> Vec<Vec<(qits_num::Cplx, qits_num::Cplx)>> {
    (0..1usize << n)
        .map(|x| {
            (0..n)
                .map(|q| {
                    if (x >> (n - 1 - q)) & 1 == 1 {
                        states::ONE
                    } else {
                        states::ZERO
                    }
                })
                .collect()
        })
        .collect()
}

type Sample = (generators::QtsSpec, Vec<(String, Circuit)>, Vec<Property>);

/// The committed sample scenario for a generator family: the spec plus
/// named circuits and one property of each kind.
fn sample_scenario(family: &str, n: u32) -> Result<Sample, String> {
    match family {
        "adder" => {
            // The Draper adder op vs the ripple-carry cascade — only
            // DSL-expressible up to n = 3 (controls beyond Toffoli).
            if !(2..=3).contains(&n) {
                return Err("adder sample supports --n 2..=3 (ripple needs <= 2 controls)".into());
            }
            let spec = generators::qft_adder(n, 1);
            let circuits = vec![("ripple".to_string(), generators::ripple_increment(n))];
            let properties = vec![
                Property::Reachability {
                    max_iterations: (1 << n) + 2,
                },
                Property::Invariant {
                    states: basis_states(n),
                    max_iterations: (1 << n) + 2,
                },
                Property::Equivalence {
                    a: "add".to_string(),
                    b: "ripple".to_string(),
                    up_to_phase: false,
                },
            ];
            Ok((spec, circuits, properties))
        }
        "repcode" => {
            if !(2..=5).contains(&n) {
                return Err("repcode sample supports --n 2..=5".into());
            }
            let spec = generators::repetition_code(n);
            let reg = spec.n_qubits;
            // Two commuting orderings of the same syndrome extraction.
            let mut syn_a = Circuit::new(reg);
            for i in 0..n - 1 {
                syn_a.push(Gate::cx(i, n + i));
                syn_a.push(Gate::cx(i + 1, n + i));
            }
            let mut syn_b = Circuit::new(reg);
            for i in (0..n - 1).rev() {
                syn_b.push(Gate::cx(i + 1, n + i));
                syn_b.push(Gate::cx(i, n + i));
            }
            let mut invariant_states = spec.initial_states.clone();
            invariant_states.push(vec![states::ZERO; reg as usize]);
            let properties = vec![
                Property::Reachability { max_iterations: 8 },
                Property::Invariant {
                    states: invariant_states,
                    max_iterations: 8,
                },
                Property::Equivalence {
                    a: "syn_a".to_string(),
                    b: "syn_b".to_string(),
                    up_to_phase: false,
                },
            ];
            Ok((
                spec,
                vec![("syn_a".to_string(), syn_a), ("syn_b".to_string(), syn_b)],
                properties,
            ))
        }
        "cliffordt" => {
            if !(2..=6).contains(&n) {
                return Err("cliffordt sample supports --n 2..=6".into());
            }
            let spec = generators::random_clifford_t(n, 3 * n, 0.125, 42);
            // T.T = S: a tiny equivalence with real phase structure.
            let mut tt = Circuit::new(spec.n_qubits);
            tt.push(Gate::single(qits_circuit::GateKind::T, 0));
            tt.push(Gate::single(qits_circuit::GateKind::T, 0));
            let mut s1 = Circuit::new(spec.n_qubits);
            s1.push(Gate::single(qits_circuit::GateKind::S, 0));
            let properties = vec![
                Property::Reachability {
                    max_iterations: (1 << n) + 2,
                },
                Property::Invariant {
                    states: basis_states(n),
                    max_iterations: (1 << n) + 2,
                },
                Property::Equivalence {
                    a: "tt".to_string(),
                    b: "s1".to_string(),
                    up_to_phase: false,
                },
            ];
            Ok((
                spec,
                vec![("tt".to_string(), tt), ("s1".to_string(), s1)],
                properties,
            ))
        }
        other => Err(format!(
            "unknown family '{other}' (expected adder, repcode, cliffordt)"
        )),
    }
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut family: Option<String> = None;
    let mut n: Option<u32> = None;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or(format!("{name} needs a value"))
        };
        match flag {
            "--family" => family = Some(value("--family")?),
            "--n" => {
                n = Some(
                    value("--n")?
                        .parse()
                        .map_err(|_| "--n needs an integer".to_string())?,
                )
            }
            "--out" => out_path = Some(value("--out")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    let family = family.ok_or("export needs --family")?;
    let n = n.unwrap_or(match family.as_str() {
        "adder" => 3,
        "repcode" => 5,
        _ => 4,
    });
    let (spec, circuits, properties) = sample_scenario(&family, n)?;
    let text = render_scenario(&spec, &circuits, &properties).map_err(|e| e.to_string())?;
    match out_path {
        Some(path) => std::fs::write(&path, &text).map_err(|e| format!("writing '{path}': {e}"))?,
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

const USAGE: &str = "usage: qits <run|check|export> ...\n  \
    run <file> [--strategy s] [--workers k] [--memo cap] [--warm-start path]\n  \
    check <file>\n  \
    export --family <adder|repcode|cliffordt> [--n k] [--out path]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("qits: {e}");
            ExitCode::FAILURE
        }
    }
}
