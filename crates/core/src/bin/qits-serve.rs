//! `qits-serve` — a JSON-lines serving front over an [`qits::EnginePool`].
//!
//! Stands up a pool over one of the benchmark transition systems and
//! speaks the protocol documented in [`qits::serve::proto`] on
//! stdin/stdout: one request per input line, one event per output line,
//! results streamed in completion order. Diagnostics go to stderr.
//!
//! ```text
//! qits-serve --family grover --n 3 --workers 4 --queue-depth 256 --memo 1024
//! ```
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--family <name>` | `grover` | `grover`, `qft`, `bv`, `ghz`, `qrw`, `bitflip`, `adder`, `repcode`, `cliffordt` |
//! | `--n <qubits>` | `3` | register size (ignored by `bitflip`) |
//! | `--scenario <path>` | off | serve the transition system of a scenario file (see [`qits_circuit::parse`]) instead of a generator family |
//! | `--workers <k>` | available parallelism | pool worker threads |
//! | `--queue-depth <d>` | unbounded | admission bound (`QueueFull` beyond it) |
//! | `--memo <cap>` | off | result-memo capacity in entries |
//! | `--strategy <s>` | `auto` | `auto`, `basic`, `addition`, `contraction` |
//! | `--warm-start <path>` | off | warm-start workers and preload the memo from a snapshot file |

use std::io::{self, BufReader, Write};
use std::process::ExitCode;

use qits::serve::proto;
use qits::{EnginePool, EngineSpec, Strategy};
use qits_circuit::generators;

struct Options {
    family: String,
    n: u32,
    scenario: Option<String>,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    memo: Option<usize>,
    strategy: String,
    warm_start: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        family: "grover".to_string(),
        n: 3,
        scenario: None,
        workers: None,
        queue_depth: None,
        memo: None,
        strategy: "auto".to_string(),
        warm_start: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or(format!("{name} needs a value"))
        };
        match flag {
            "--family" => opts.family = value("--family")?,
            "--scenario" => opts.scenario = Some(value("--scenario")?),
            "--n" => {
                opts.n = value("--n")?
                    .parse()
                    .map_err(|_| "--n needs an integer".to_string())?
            }
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?,
                )
            }
            "--queue-depth" => {
                opts.queue_depth = Some(
                    value("--queue-depth")?
                        .parse()
                        .map_err(|_| "--queue-depth needs an integer".to_string())?,
                )
            }
            "--memo" => {
                opts.memo = Some(
                    value("--memo")?
                        .parse()
                        .map_err(|_| "--memo needs an integer".to_string())?,
                )
            }
            "--strategy" => opts.strategy = value("--strategy")?,
            "--warm-start" => opts.warm_start = Some(value("--warm-start")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Noise probability of the `qrw` family — matches the benchmark suite.
const QRW_NOISE: f64 = 0.125;

fn spec_for(opts: &Options) -> Result<EngineSpec, String> {
    let system = match &opts.scenario {
        // A scenario file's transition system; its property declarations
        // are ignored here — jobs arrive over the wire.
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading scenario '{path}': {e}"))?;
            qits_circuit::parse::parse_scenario(&text)
                .map_err(|e| format!("{path}: {e}"))?
                .to_spec()
        }
        None => match opts.family.as_str() {
            "grover" => generators::grover(opts.n),
            "qft" => generators::qft(opts.n),
            "bv" => generators::bernstein_vazirani(opts.n, &generators::bv_secret(opts.n)),
            "ghz" => generators::ghz(opts.n),
            "qrw" => generators::qrw(opts.n, QRW_NOISE),
            "bitflip" => generators::bitflip_code(),
            "adder" => generators::qft_adder(opts.n, 1),
            "repcode" => generators::repetition_code(opts.n),
            "cliffordt" => {
                generators::random_clifford_t(opts.n, 3 * opts.n, QRW_NOISE, u64::from(opts.n))
            }
            other => return Err(format!("unknown family '{other}'")),
        },
    };
    let spec = EngineSpec::new(system);
    Ok(match opts.strategy.as_str() {
        "auto" => spec,
        "basic" => spec.strategy(Strategy::Basic),
        "addition" => spec.strategy(Strategy::Addition { k: 1 }),
        "contraction" => spec.strategy(Strategy::Contraction { k1: 4, k2: 4 }),
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("qits-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match spec_for(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qits-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = EnginePool::builder(spec);
    if let Some(w) = opts.workers {
        builder = builder.workers(w);
    }
    if let Some(d) = opts.queue_depth {
        builder = builder.queue_depth(d);
    }
    if let Some(cap) = opts.memo {
        builder = builder.memo_capacity(cap);
    }
    if let Some(path) = &opts.warm_start {
        builder = match builder.warm_start(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("qits-serve: warm start from '{path}' failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    let pool = match builder.build() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("qits-serve: building the pool failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "qits-serve: {} workers over {:?}; reading JSON-lines from stdin",
        pool.workers(),
        pool.spec().system().name,
    );
    let handle = pool.handle();
    if let Err(e) = proto::serve(handle, BufReader::new(io::stdin()), io::stdout()) {
        eprintln!("qits-serve: i/o error: {e}");
        return ExitCode::FAILURE;
    }
    let stats = pool.shutdown();
    let _ = writeln!(
        io::stderr(),
        "qits-serve: served {} jobs ({} ok, {} failed, {} cancelled, {} expired, \
         {} memo hits of which {} warm)",
        stats.jobs_submitted,
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.jobs_expired,
        stats.memo.hits,
        stats.memo.warm_hits,
    );
    ExitCode::SUCCESS
}
