//! Hilbert-space subspaces, represented symbolically.
//!
//! A subspace is stored as an orthonormal basis of TDD kets *and* the TDD
//! of its projector, maintained together exactly as in the paper's
//! Section IV: the Gram–Schmidt join keeps `P = sum |v><v|` in lock-step
//! with the basis, and the basis-decomposition of a given projector peels
//! off columns located by the leftmost non-zero path of the projector TDD.

use std::collections::BTreeMap;

use qits_num::Cplx;
use qits_tdd::{Edge, EdgeHolder, RootId, TddManager};
use qits_tensor::Var;

use crate::error::QitsError;

/// Squared-norm threshold below which a Gram–Schmidt residual counts as
/// zero (the vector lies in the subspace already).
///
/// Distinct from the TDD weight tolerance: residual norms accumulate error
/// from full contractions, so the rank decision uses a coarser cutoff.
pub const RANK_TOLERANCE: f64 = 1e-9;

/// A (closed) subspace of an `n`-qubit state space.
///
/// Kets live on the position-0 wire variables `x_i = Var::wire(i, 0)`; the
/// projector uses `x_i` as column and `y_i = Var::wire(i, 1)` as row
/// variables, giving the interleaved order `x1 < y1 < x2 < y2 < ...` shown
/// in the paper's Fig. 1.
///
/// All edges are owned by the [`TddManager`] passed to each method; using
/// a subspace with a different manager is a logic error.
///
/// # Garbage collection
///
/// A subspace holds long-lived edges (the basis kets and the projector),
/// so it participates in the manager's root-tracked GC (see
/// [`qits_tdd::gc`]). Collection never moves a node, so there is no
/// relocation step: a subspace that was kept alive across a collection —
/// by rooting it with [`Subspace::protect`], or by passing it as an
/// [`EdgeHolder`] to [`TddManager::collect_retaining`] /
/// [`TddManager::maybe_collect_at_safepoint`] — is simply still valid
/// afterwards, bit for bit. A subspace that was *not* kept alive holds
/// detectably stale edges ([`TddManager::is_live`] returns `false`) and
/// must not be used again. The fixpoint drivers in [`crate::mc`] and the
/// image kernel hand every subspace they manage to each safepoint
/// automatically; [`crate::Engine`] does the same for the session state.
///
/// # Example
///
/// ```
/// use qits_tdd::TddManager;
/// use qits_tensor::Var;
/// use qits::Subspace;
///
/// let mut m = TddManager::new();
/// let vars: Vec<Var> = (0..2).map(Var::ket).collect();
/// let k00 = m.basis_ket(&vars, &[false, false]);
/// let k11 = m.basis_ket(&vars, &[true, true]);
/// let s = Subspace::from_states(&mut m, 2, &[k00, k11]);
/// assert_eq!(s.dim(), 2);
/// let bell = m.product_ket(&vars, &[(qits_num::Cplx::FRAC_1_SQRT_2, qits_num::Cplx::FRAC_1_SQRT_2); 2]);
/// assert!(!s.contains(&mut m, bell)); // |++> is not in span{|00>,|11>}
/// ```
#[derive(Debug, Clone)]
pub struct Subspace {
    n_qubits: u32,
    basis: Vec<Edge>,
    projector: Edge,
}

impl Subspace {
    /// The zero subspace of an `n`-qubit space.
    pub fn zero(n_qubits: u32) -> Subspace {
        Subspace {
            n_qubits,
            basis: Vec::new(),
            projector: Edge::ZERO,
        }
    }

    /// The ket variables `x_i` of an `n`-qubit space.
    pub fn ket_vars(n_qubits: u32) -> Vec<Var> {
        (0..n_qubits).map(Var::ket).collect()
    }

    /// The projector row variables `y_i` of an `n`-qubit space.
    pub fn row_vars(n_qubits: u32) -> Vec<Var> {
        (0..n_qubits).map(Var::row).collect()
    }

    /// Spans a subspace from arbitrary (possibly dependent, possibly
    /// unnormalised) states via the Gram–Schmidt join of Section IV-B.
    pub fn from_states(m: &mut TddManager, n_qubits: u32, states: &[Edge]) -> Subspace {
        let mut s = Subspace::zero(n_qubits);
        for &e in states {
            s.absorb(m, e);
        }
        s
    }

    /// Reassembles a subspace from parts restored off disk. The caller
    /// (the snapshot loader in [`crate::store`]) guarantees the basis is
    /// orthonormal and the projector is its sum of outer products — both
    /// held by construction, since dumps are taken from live subspaces
    /// and the TDD round trip is value-exact.
    pub(crate) fn from_parts(n_qubits: u32, basis: Vec<Edge>, projector: Edge) -> Subspace {
        Subspace {
            n_qubits,
            basis,
            projector,
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Dimension of the subspace.
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// The orthonormal basis kets.
    pub fn basis(&self) -> &[Edge] {
        &self.basis
    }

    /// The projector TDD over interleaved `(x_i, y_i)` variables.
    pub fn projector(&self) -> Edge {
        self.projector
    }

    /// Registers every edge of the subspace (basis kets and projector) as
    /// a GC root, returning the ids for a later
    /// [`TddManager::unprotect_all`].
    pub fn protect(&self, m: &mut TddManager) -> Vec<RootId> {
        let mut ids = Vec::with_capacity(self.basis.len() + 1);
        ids.extend(self.basis.iter().map(|&e| m.protect(e)));
        ids.push(m.protect(self.projector));
        ids
    }
}

impl EdgeHolder for Subspace {
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        for &e in &self.basis {
            visit(e);
        }
        visit(self.projector);
    }
}

impl Subspace {
    /// Applies the projector to a ket: `P |psi>`.
    pub fn project(&self, m: &mut TddManager, psi: Edge) -> Edge {
        if self.basis.is_empty() {
            return Edge::ZERO;
        }
        let xs = Self::ket_vars(self.n_qubits);
        let projected = m.contract(self.projector, psi, &xs);
        let map: BTreeMap<Var, Var> = (0..self.n_qubits)
            .map(|q| (Var::row(q), Var::ket(q)))
            .collect();
        m.rename_monotone(projected, &map)
    }

    /// Gram–Schmidt step: extends the basis by (the normalised residual
    /// of) `psi` if it adds a new dimension. Returns `true` if the
    /// dimension grew.
    ///
    /// This is the paper's subspace-join primitive: `u = psi - P psi`;
    /// if `u` is non-zero, normalise it, add it to the basis, and update
    /// `P += |u><u|`.
    pub fn absorb(&mut self, m: &mut TddManager, psi: Edge) -> bool {
        if psi.is_zero() {
            return false;
        }
        let proj = self.project(m, psi);
        let u = m.sub(psi, proj);
        if u.is_zero() {
            return false;
        }
        let xs = Self::ket_vars(self.n_qubits);
        let n2 = m.norm_sqr(u, &xs);
        if n2 <= RANK_TOLERANCE {
            return false;
        }
        let v = m.scale(u, Cplx::real(1.0 / n2.sqrt()));
        self.basis.push(v);
        let outer = self.outer(m, v);
        self.projector = m.add(self.projector, outer);
        true
    }

    /// [`Subspace::absorb`] with the implicit register assumption made
    /// explicit: `psi` must be a ket over this subspace's register — its
    /// support may only contain ket variables `x_q` with `q < n_qubits`.
    /// `absorb` silently trusts this (a wider ket corrupts the projector
    /// bookkeeping); here it is validated and reported as a
    /// [`QitsError::RegisterMismatch`] value. [`crate::Engine`]'s
    /// subspace constructor routes through this check.
    pub fn try_absorb(&mut self, m: &mut TddManager, psi: Edge) -> Result<bool, QitsError> {
        for v in m.support(psi).iter() {
            if v.position() != 0 {
                // Not a width problem at all: the tensor carries a
                // non-ket index (row/intermediate wire position), so it
                // is not a state vector over this register.
                return Err(QitsError::RegisterMismatch {
                    expected: self.n_qubits,
                    found: v.qubit() + 1,
                    context: format!(
                        "a tensor that is not a ket (variable {v} sits at wire \
                         position {}, not 0)",
                        v.position()
                    ),
                });
            }
            if v.qubit() >= self.n_qubits {
                return Err(QitsError::RegisterMismatch {
                    expected: self.n_qubits,
                    found: v.qubit() + 1,
                    context: format!("a state depending on ket variable {v}"),
                });
            }
        }
        Ok(self.absorb(m, psi))
    }

    /// `|v><v|` over the projector variable convention.
    fn outer(&self, m: &mut TddManager, v: Edge) -> Edge {
        let bra = m.conj(v); // column variables x_i
        let map: BTreeMap<Var, Var> = (0..self.n_qubits)
            .map(|q| (Var::ket(q), Var::row(q)))
            .collect();
        let ket_rows = m.rename_monotone(v, &map); // row variables y_i
        m.contract(bra, ket_rows, &[])
    }

    /// The join `self v other` (smallest subspace containing both).
    pub fn join(&self, m: &mut TddManager, other: &Subspace) -> Subspace {
        assert_eq!(self.n_qubits, other.n_qubits, "join needs equal registers");
        let mut s = self.clone();
        for &e in &other.basis {
            s.absorb(m, e);
        }
        s
    }

    /// Whether a (normalised) ket lies in the subspace.
    pub fn contains(&self, m: &mut TddManager, psi: Edge) -> bool {
        let proj = self.project(m, psi);
        let u = m.sub(psi, proj);
        if u.is_zero() {
            return true;
        }
        let xs = Self::ket_vars(self.n_qubits);
        m.norm_sqr(u, &xs) <= RANK_TOLERANCE
    }

    /// Whether `self` is contained in `other`.
    pub fn is_subspace_of(&self, m: &mut TddManager, other: &Subspace) -> bool {
        self.basis.iter().all(|&e| other.contains(m, e))
    }

    /// Subspace equality (mutual containment; dimensions checked first).
    pub fn equals(&self, m: &mut TddManager, other: &Subspace) -> bool {
        self.dim() == other.dim() && self.is_subspace_of(m, other)
    }

    /// The full `2^n`-dimensional space, whose projector is the identity.
    ///
    /// Useful as the trivial invariant and as the starting point for
    /// [`Subspace::complement`]. Cost is `O(4^n)` basis kets; intended for
    /// the small registers model-checking properties are stated on.
    pub fn full(m: &mut TddManager, n_qubits: u32) -> Subspace {
        let mut identity = Edge::ONE;
        for q in 0..n_qubits {
            let id = m.identity(Var::ket(q), Var::row(q));
            identity = m.contract(identity, id, &[]);
        }
        Subspace::from_projector(m, n_qubits, identity)
    }

    /// The orthogonal complement: the subspace with projector `I - P`.
    ///
    /// Safety properties are often stated as "never reach `Bad`"; checking
    /// them as an invariant needs `Bad`'s complement.
    pub fn complement(&self, m: &mut TddManager) -> Subspace {
        let mut identity = Edge::ONE;
        for q in 0..self.n_qubits {
            let id = m.identity(Var::ket(q), Var::row(q));
            identity = m.contract(identity, id, &[]);
        }
        let comp = m.sub(identity, self.projector);
        Subspace::from_projector(m, self.n_qubits, comp)
    }

    /// Reconstructs a subspace from a projector TDD via the paper's
    /// Section IV-A basis decomposition: repeatedly locate the leftmost
    /// non-zero path, slice out that column, normalise it into a basis
    /// vector, and subtract its outer product.
    ///
    /// # Panics
    ///
    /// Panics if `projector` is not (numerically) an orthogonal projector —
    /// detected when a peeled column fails to reduce the remainder.
    pub fn from_projector(m: &mut TddManager, n_qubits: u32, projector: Edge) -> Subspace {
        let xs = Self::ket_vars(n_qubits);
        let ys = Self::row_vars(n_qubits);
        let all: Vec<Var> = {
            let mut v = xs.clone();
            v.extend(ys.iter().copied());
            v.sort_unstable();
            v
        };
        let mut s = Subspace::zero(n_qubits);
        let mut p = projector;
        let max_dim = 1usize << n_qubits.min(30);
        while !p.is_zero() {
            assert!(
                s.dim() < max_dim,
                "projector decomposition exceeded the space dimension; \
                 input is not a projector"
            );
            let asn = m
                .first_nonzero_assignment(p, &all)
                .expect("non-zero diagram has a non-zero path");
            // Column index: the x-variable bits of the leftmost path.
            let mut column = p;
            for (i, &v) in all.iter().enumerate() {
                if v.position() == 0 {
                    column = m.slice(column, v, asn[i]);
                }
            }
            // `column` is a ket over the row variables y_i.
            let n2 = m.norm_sqr(column, &ys);
            assert!(
                n2 > RANK_TOLERANCE,
                "leftmost non-zero column has zero norm; input is not a projector"
            );
            let v = m.scale(column, Cplx::real(1.0 / n2.sqrt()));
            let map: BTreeMap<Var, Var> =
                (0..n_qubits).map(|q| (Var::row(q), Var::ket(q))).collect();
            let ket = m.rename_monotone(v, &map);
            s.basis.push(ket);
            let outer = s.outer(m, ket);
            p = m.sub(p, outer);
        }
        s.projector = projector;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::tensorize::states;

    fn ket(m: &mut TddManager, n: u32, bits: &[bool]) -> Edge {
        let vars = Subspace::ket_vars(n);
        m.basis_ket(&vars, bits)
    }

    #[test]
    fn zero_subspace() {
        let mut m = TddManager::new();
        let s = Subspace::zero(2);
        assert_eq!(s.dim(), 0);
        let k = ket(&mut m, 2, &[false, true]);
        assert!(!s.contains(&mut m, k));
        assert!(s.project(&mut m, k).is_zero());
    }

    #[test]
    fn absorb_builds_orthonormal_basis() {
        let mut m = TddManager::new();
        let mut s = Subspace::zero(2);
        let k00 = ket(&mut m, 2, &[false, false]);
        let k01 = ket(&mut m, 2, &[false, true]);
        assert!(s.absorb(&mut m, k00));
        assert!(!s.absorb(&mut m, k00)); // already inside
        assert!(s.absorb(&mut m, k01));
        assert_eq!(s.dim(), 2);
        // Orthonormality of the stored basis.
        let vars = Subspace::ket_vars(2);
        for (i, &a) in s.basis().iter().enumerate() {
            for (j, &b) in s.basis().iter().enumerate() {
                let ip = m.inner_product(a, b, &vars);
                let expect = if i == j { Cplx::ONE } else { Cplx::ZERO };
                assert!(ip.approx_eq_with(expect, 1e-8));
            }
        }
    }

    #[test]
    fn try_absorb_rejects_wider_kets_and_row_variables() {
        let mut m = TddManager::new();
        let mut s = Subspace::zero(2);
        // A ket on qubit 2 exceeds the 2-qubit register.
        let wide = ket(&mut m, 3, &[false, false, true]);
        let err = s.try_absorb(&mut m, wide).unwrap_err();
        assert!(matches!(
            err,
            crate::error::QitsError::RegisterMismatch { expected: 2, .. }
        ));
        // A projector-shaped tensor (row variable) is not a ket at all.
        let id = m.identity(Var::ket(0), Var::row(0));
        assert!(s.try_absorb(&mut m, id).is_err());
        // In-register kets absorb exactly as `absorb` would.
        let k = ket(&mut m, 2, &[true, false]);
        assert!(s.try_absorb(&mut m, k).unwrap());
        assert_eq!(s.dim(), 1);
    }

    #[test]
    fn absorb_dependent_superposition() {
        let mut m = TddManager::new();
        let mut s = Subspace::zero(1);
        let k0 = ket(&mut m, 1, &[false]);
        let k1 = ket(&mut m, 1, &[true]);
        s.absorb(&mut m, k0);
        s.absorb(&mut m, k1);
        // |+> is dependent on {|0>, |1>}.
        let vars = Subspace::ket_vars(1);
        let plus = m.product_ket(&vars, &[states::PLUS]);
        assert!(!s.absorb(&mut m, plus));
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn projector_is_idempotent_and_hermitian() {
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(3);
        let a = m.product_ket(&vars, &[states::PLUS, states::PLUS, states::MINUS]);
        let b = m.basis_ket(&vars, &[true, true, false]);
        let s = Subspace::from_states(&mut m, 3, &[a, b]);
        assert_eq!(s.dim(), 2);
        // P applied twice equals P applied once, on a probe state.
        let probe = m.product_ket(&vars, &[states::PLUS, states::ZERO, states::ONE]);
        let p1 = s.project(&mut m, probe);
        let p2 = s.project(&mut m, p1);
        let diff = m.sub(p1, p2);
        assert!(diff.is_zero() || m.norm_sqr(diff, &vars) < 1e-16);
        // Hermitian: P == conj(P) transposed == rename-swapped conj. The
        // interleaved convention makes transposition a x<->y swap, which is
        // NOT monotone; check instead <a|P b> == <P a|b>.
        let pa = s.project(&mut m, probe);
        let c = m.basis_ket(&vars, &[false, true, true]);
        let pc = s.project(&mut m, c);
        let lhs = m.inner_product(c, pa, &vars);
        let rhs = m.inner_product(pc, probe, &vars);
        assert!(lhs.approx_eq_with(rhs, 1e-8));
    }

    #[test]
    fn paper_example_2_join() {
        // Section IV-B, Example 2: completing {|++->} with |11->.
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(3);
        let ppm = m.product_ket(&vars, &[states::PLUS, states::PLUS, states::MINUS]);
        let oom = m.product_ket(&vars, &[states::ONE, states::ONE, states::MINUS]);
        let s = Subspace::from_states(&mut m, 3, &[ppm, oom]);
        assert_eq!(s.dim(), 2);
        // The second basis vector is -1/(2 sqrt 3) (|00>+|01>+|10>-3|11>)|->.
        let v = s.basis()[1];
        let amp = |m: &mut TddManager, bits: [bool; 3]| {
            let asn: BTreeMap<Var, bool> = vars.iter().copied().zip(bits.iter().copied()).collect();
            m.eval(v, &asn)
        };
        let c = 1.0 / (2.0 * 3f64.sqrt()) * std::f64::consts::FRAC_1_SQRT_2;
        // |xy0> component of |-> carries +1/sqrt2; overall sign is a global
        // phase, so compare ratios: a(110)/a(000) = -3.
        let a000 = amp(&mut m, [false, false, false]);
        let a110 = amp(&mut m, [true, true, false]);
        assert!((a000.abs() - c).abs() < 1e-9, "got {a000}");
        assert!((a110 / a000).approx_eq_with(Cplx::real(-3.0), 1e-6));
    }

    #[test]
    fn paper_example_1_projector_decomposition() {
        // Section IV-A, Example 1: decompose the projector of
        // span{|++->, |11->} (the matrix of Fig. 1) back into a basis.
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(3);
        let ppm = m.product_ket(&vars, &[states::PLUS, states::PLUS, states::MINUS]);
        let oom = m.product_ket(&vars, &[states::ONE, states::ONE, states::MINUS]);
        let s = Subspace::from_states(&mut m, 3, &[ppm, oom]);
        let decomposed = Subspace::from_projector(&mut m, 3, s.projector());
        assert_eq!(decomposed.dim(), 2);
        assert!(decomposed.equals(&mut m, &s));
        // First recovered vector: normalised first non-zero column =
        // 1/sqrt(3)(|00>+|01>+|10>)|->, as computed in the paper.
        let v1 = decomposed.basis()[0];
        let a = {
            let asn: BTreeMap<Var, bool> =
                vars.iter().copied().zip([false, false, false]).collect();
            m.eval(v1, &asn)
        };
        assert!((a.abs() - 1.0 / 6f64.sqrt()).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn join_of_disjoint_spaces() {
        let mut m = TddManager::new();
        let k0 = ket(&mut m, 2, &[false, false]);
        let k1 = ket(&mut m, 2, &[true, true]);
        let a = Subspace::from_states(&mut m, 2, &[k0]);
        let b = Subspace::from_states(&mut m, 2, &[k1]);
        let j = a.join(&mut m, &b);
        assert_eq!(j.dim(), 2);
        assert!(a.is_subspace_of(&mut m, &j));
        assert!(b.is_subspace_of(&mut m, &j));
        assert!(!j.is_subspace_of(&mut m, &a));
    }

    #[test]
    fn equality_is_basis_independent() {
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(1);
        let k0 = ket(&mut m, 1, &[false]);
        let k1 = ket(&mut m, 1, &[true]);
        let plus = m.product_ket(&vars, &[states::PLUS]);
        let minus = m.product_ket(&vars, &[states::MINUS]);
        let a = Subspace::from_states(&mut m, 1, &[k0, k1]);
        let b = Subspace::from_states(&mut m, 1, &[plus, minus]);
        assert!(a.equals(&mut m, &b));
    }

    #[test]
    fn full_space_has_full_dimension() {
        let mut m = TddManager::new();
        let s = Subspace::full(&mut m, 3);
        assert_eq!(s.dim(), 8);
        let probe = m.product_ket(
            &Subspace::ket_vars(3),
            &[states::PLUS, states::MINUS, states::ONE],
        );
        assert!(s.contains(&mut m, probe));
    }

    #[test]
    fn complement_properties() {
        let mut m = TddManager::new();
        let vars = Subspace::ket_vars(2);
        let bell_pieces = [
            m.basis_ket(&vars, &[false, false]),
            m.basis_ket(&vars, &[true, true]),
        ];
        let s = Subspace::from_states(&mut m, 2, &bell_pieces);
        let c = s.complement(&mut m);
        assert_eq!(s.dim() + c.dim(), 4);
        // Complement basis is orthogonal to the original space.
        for &b in c.basis() {
            assert!(!s.contains(&mut m, b));
            let proj = s.project(&mut m, b);
            assert!(proj.is_zero() || m.norm_sqr(proj, &vars) < 1e-12);
        }
        // Double complement returns the original space.
        let cc = c.complement(&mut m);
        assert!(cc.equals(&mut m, &s));
    }

    #[test]
    fn complement_of_full_space_is_zero() {
        let mut m = TddManager::new();
        let s = Subspace::full(&mut m, 2);
        let c = s.complement(&mut m);
        assert_eq!(c.dim(), 0);
    }

    #[test]
    fn full_space_projector_is_identity() {
        let mut m = TddManager::new();
        let k0 = ket(&mut m, 1, &[false]);
        let k1 = ket(&mut m, 1, &[true]);
        let s = Subspace::from_states(&mut m, 1, &[k0, k1]);
        let expect = m.identity(Var::ket(0), Var::row(0));
        assert_eq!(s.projector(), expect);
    }
}
