//! The contraction partition of Section V-B.
//!
//! For parameters `k1`, `k2`: cut the circuit *horizontally* into
//! `ceil(n/k1)` qubit bands, then *vertically* after every `k2` multi-qubit
//! gates that cross a band boundary (the gates "cut by a horizontal line").
//! Every gate is assigned to the cell (band of its topmost qubit, current
//! vertical segment); the contraction of all cells over their shared
//! indices equals the whole circuit, whatever the assignment — the
//! parameters only steer efficiency, which is exactly what Table II sweeps.

use qits_circuit::Circuit;

/// A partition of a circuit's gates into contraction blocks.
///
/// `blocks[i]` holds gate indices in circuit order; blocks themselves are
/// ordered by (segment, band), the order the engine contracts them in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocks {
    /// Gate indices per block, each in circuit order.
    pub blocks: Vec<Vec<usize>>,
    /// Number of horizontal bands used.
    pub n_bands: u32,
    /// Number of vertical segments used.
    pub n_segments: u32,
}

impl Blocks {
    /// Total gates across all blocks.
    pub fn gate_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Number of rectangular regions the cut lines create
    /// (`bands x segments`) — what the paper's Fig. 3 counts as "six
    /// blocks". Regions that contain no gate contribute no tensor, so
    /// `blocks.len() <= regions()`.
    pub fn regions(&self) -> u32 {
        self.n_bands * self.n_segments
    }
}

/// Computes the contraction-partition blocks of `circuit` for parameters
/// `(k1, k2)`.
///
/// # Panics
///
/// Panics if `k1 == 0` or `k2 == 0`.
pub fn contraction_blocks(circuit: &Circuit, k1: u32, k2: u32) -> Blocks {
    assert!(k1 > 0, "k1 must be positive");
    assert!(k2 > 0, "k2 must be positive");
    let n = circuit.n_qubits();
    let n_bands = n.div_ceil(k1);
    let band_of = |q: u32| q / k1;

    // Pass 1: assign each gate a (segment, band) cell.
    let mut seg = 0u32;
    let mut crossings = 0u32;
    let mut cells: Vec<(u32, u32)> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let min_q = gate.qubits().min().expect("gate touches a qubit");
        let max_q = gate.max_qubit();
        let crosses = band_of(min_q) != band_of(max_q);
        cells.push((seg, band_of(min_q)));
        if crosses {
            crossings += 1;
            if crossings >= k2 {
                // Vertical cut across the whole circuit after this gate.
                seg += 1;
                crossings = 0;
            }
        }
    }
    // Only count segments that actually hold a gate (a cut after the last
    // gate opens no new segment).
    let n_segments = cells.iter().map(|&(s, _)| s).max().map_or(1, |s| s + 1);

    // Pass 2: bucket gates by cell, ordered by (segment, band).
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut index_of = std::collections::BTreeMap::new();
    for (gi, &cell) in cells.iter().enumerate() {
        let bi = *index_of.entry(cell).or_insert_with(|| {
            blocks.push(Vec::new());
            blocks.len() - 1
        });
        blocks[bi].push(gi);
    }
    // BTreeMap iteration is (segment, band)-ordered, but insertion order
    // above follows gate order; rebuild in cell order.
    let mut ordered: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
    for &bi in index_of.values() {
        ordered.push(blocks[bi].clone());
    }
    Blocks {
        blocks: ordered,
        n_bands,
        n_segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::Gate;

    /// The paper's Fig. 3 claim: the bit-flip code circuit at k1 = 3,
    /// k2 = 2 is cut into six blocks.
    #[test]
    fn bitflip_code_cuts_into_six_blocks() {
        // Syndrome extraction: 6 CX gates on 6 qubits (3 data, 3 ancilla).
        let mut c = Circuit::new(6);
        c.push(Gate::cx(0, 3));
        c.push(Gate::cx(1, 3));
        c.push(Gate::cx(1, 4));
        c.push(Gate::cx(2, 4));
        c.push(Gate::cx(0, 5));
        c.push(Gate::cx(2, 5));
        let blocks = contraction_blocks(&c, 3, 2);
        assert_eq!(blocks.n_bands, 2);
        assert_eq!(blocks.n_segments, 3);
        // Six rectangular regions, as in Fig. 3. Every CX's topmost qubit
        // is a data qubit, so the three gate-holding blocks are all in
        // band 0 (the rest of each region is bare wire).
        assert_eq!(blocks.regions(), 6);
        assert_eq!(blocks.blocks.len(), 3);
        assert_eq!(blocks.gate_count(), 6);
    }

    #[test]
    fn single_band_never_cuts() {
        let mut c = Circuit::new(3);
        for _ in 0..10 {
            c.push(Gate::cx(0, 2));
        }
        let blocks = contraction_blocks(&c, 3, 1);
        // Everything in one band: no gate ever crosses.
        assert_eq!(blocks.n_segments, 1);
        assert_eq!(blocks.blocks.len(), 1);
    }

    #[test]
    fn k2_counts_crossing_gates_only() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1)); // inside band 0 (k1 = 2)
        c.push(Gate::cx(1, 2)); // crosses
        c.push(Gate::cx(2, 3)); // inside band 1
        c.push(Gate::cx(1, 2)); // crosses -> cut after (k2 = 2)
        c.push(Gate::h(0));
        let blocks = contraction_blocks(&c, 2, 2);
        assert_eq!(blocks.n_segments, 2);
        // Gates 0..3 in segment 0, gate 4 in segment 1.
        let seg_of_gate: Vec<u32> = {
            let mut v = vec![0u32; 5];
            for (bi, b) in blocks.blocks.iter().enumerate() {
                for &g in b {
                    // Recover segment from block ordering: blocks are
                    // (segment, band) ordered; segment 1 blocks come last.
                    v[g] = if bi >= blocks.blocks.len() - 1 { 1 } else { 0 };
                }
            }
            v
        };
        assert_eq!(seg_of_gate[4], 1);
    }

    #[test]
    fn every_gate_assigned_exactly_once() {
        let mut c = Circuit::new(8);
        for q in 0..7 {
            c.push(Gate::cx(q, q + 1));
            c.push(Gate::h(q));
        }
        for (k1, k2) in [(1, 1), (2, 3), (4, 4), (8, 1), (3, 2)] {
            let blocks = contraction_blocks(&c, k1, k2);
            assert_eq!(blocks.gate_count(), c.len(), "k1={k1} k2={k2}");
            let mut seen = vec![false; c.len()];
            for b in &blocks.blocks {
                for &g in b {
                    assert!(!seen[g], "gate {g} in two blocks");
                    seen[g] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    #[should_panic(expected = "k1 must be positive")]
    fn rejects_zero_k1() {
        let c = Circuit::new(2);
        let _ = contraction_blocks(&c, 0, 1);
    }
}
