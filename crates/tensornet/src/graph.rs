//! The interaction graph of a tensor network (the paper's Fig. 5).

use std::collections::{BTreeMap, BTreeSet};

use qits_tensor::Var;

use crate::network::TensorNetwork;

/// The undirected graph whose vertices are tensor-network indices and
/// whose edges connect indices belonging to the same gate.
///
/// Because diagonal gates and control legs share a single index per wire,
/// gates contribute *hyper-edges*: a CCX gate connects its two control
/// indices and its two target indices pairwise. The degree ranking of this
/// graph selects the slicing indices of the addition partition.
///
/// # Example
///
/// ```
/// use qits_circuit::{Circuit, Gate};
/// use qits_tdd::TddManager;
/// use qits_tensornet::{InteractionGraph, TensorNetwork};
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::ccx(0, 1, 2));
/// let mut m = TddManager::new();
/// let net = TensorNetwork::from_circuit(&mut m, &c);
/// let g = InteractionGraph::of(&net);
/// // The CCX hyper-edge makes a 4-clique of its legs.
/// assert_eq!(g.degree(net.in_var(0)), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InteractionGraph {
    adjacency: BTreeMap<Var, BTreeSet<Var>>,
    /// Number of tensors (gates) each index belongs to.
    membership: BTreeMap<Var, usize>,
}

impl InteractionGraph {
    /// Builds the graph of a network: one hyper-edge (clique) per tensor.
    pub fn of(net: &TensorNetwork) -> InteractionGraph {
        let mut g = InteractionGraph::default();
        for t in net.tensors() {
            let vars: Vec<Var> = t.vars.iter().collect();
            for &v in &vars {
                *g.membership.entry(v).or_insert(0) += 1;
                g.adjacency.entry(v).or_default();
            }
            for (i, &a) in vars.iter().enumerate() {
                for &b in &vars[i + 1..] {
                    g.adjacency.entry(a).or_default().insert(b);
                    g.adjacency.entry(b).or_default().insert(a);
                }
            }
        }
        g
    }

    /// Number of distinct neighbours of `v`.
    pub fn degree(&self, v: Var) -> usize {
        self.adjacency.get(&v).map_or(0, BTreeSet::len)
    }

    /// Number of tensors whose index set contains `v`.
    pub fn membership(&self, v: Var) -> usize {
        self.membership.get(&v).copied().unwrap_or(0)
    }

    /// All vertices, ascending.
    pub fn vertices(&self) -> impl Iterator<Item = Var> + '_ {
        self.adjacency.keys().copied()
    }

    /// Neighbours of `v`, ascending.
    pub fn neighbours(&self, v: Var) -> impl Iterator<Item = Var> + '_ {
        self.adjacency.get(&v).into_iter().flatten().copied()
    }

    /// The `k` highest-degree vertices (degree descending, then variable
    /// ascending for determinism) — the slicing candidates of the addition
    /// partition.
    pub fn highest_degree_vars(&self, k: usize) -> Vec<Var> {
        let mut vs: Vec<(usize, Var)> = self
            .adjacency
            .keys()
            .map(|&v| (self.degree(v), v))
            .collect();
        vs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        vs.into_iter().take(k).map(|(_, v)| v).collect()
    }

    /// A text rendering of the graph: one `index: neighbours` line per
    /// vertex, ascending — used by the Fig. 5 example.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (v, ns) in &self.adjacency {
            out.push_str(&format!("{v} (deg {}):", ns.len()));
            for n in ns {
                out.push_str(&format!(" {n}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::{Circuit, Gate};
    use qits_tdd::TddManager;

    fn graph_of(c: &Circuit) -> (InteractionGraph, TensorNetwork) {
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, c);
        (InteractionGraph::of(&net), net)
    }

    #[test]
    fn single_qubit_gate_connects_in_out() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        let (g, net) = graph_of(&c);
        assert_eq!(g.degree(net.in_var(0)), 1);
        assert!(g.neighbours(net.in_var(0)).eq([net.out_var(0)]));
    }

    #[test]
    fn chain_degrees_accumulate() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        c.push(Gate::h(0));
        let (g, _) = graph_of(&c);
        // Middle index (0,1) belongs to both H gates.
        assert_eq!(g.degree(Var::wire(0, 1)), 2);
        assert_eq!(g.membership(Var::wire(0, 1)), 2);
    }

    #[test]
    fn highest_degree_ranking_deterministic() {
        let mut c = Circuit::new(3);
        c.push(Gate::ccx(0, 1, 2));
        c.push(Gate::h(0));
        let (g, net) = graph_of(&c);
        let top = g.highest_degree_vars(1);
        // q0 input: CCX clique (3 neighbours) + H out (1) = degree 4.
        assert_eq!(top, vec![net.in_var(0)]);
    }

    #[test]
    fn render_lists_all_vertices() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        let (g, _) = graph_of(&c);
        let r = g.render();
        assert_eq!(r.lines().count(), 3); // q0.0 (hyper), q1.0, q1.1
        assert!(r.contains("deg"));
    }
}
