//! Sequential network contraction with last-use index summation.

use qits_tdd::{CacheStats, Edge, TddManager};
use qits_tensor::{Var, VarSet};

use crate::network::{NetTensor, TensorNetwork};
use crate::partition::Blocks;

/// Result of a network contraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContractionOutcome {
    /// The contracted tensor over the kept indices.
    pub edge: Edge,
    /// Peak **live** node count over all intermediate TDDs — the paper's
    /// "max #node" measurement. This counts the nodes reachable from each
    /// intermediate diagram ([`TddManager::node_count`]), never arena
    /// slots, so it is unaffected by garbage accumulated in the arena and
    /// comparable across GC-on and GC-off runs.
    pub max_nodes: usize,
    /// Arena slots allocated in the manager when the contraction finished
    /// ([`TddManager::arena_len`]) — the *allocated* counterpart to the
    /// live `max_nodes`, which is what a [`qits_tdd::GcPolicy`]-driven
    /// collection reclaims down to the live set.
    pub allocated_nodes: usize,
    /// Movement of the manager's contraction cache across this call
    /// (hits here are sub-contractions reused from *earlier* work on the
    /// same manager — other slices, blocks, or basis states).
    pub cont_cache: CacheStats,
}

/// Contracts `tensors` in order, summing every index at its *last* use
/// unless it is listed in `keep`.
///
/// This single routine backs all three image-computation methods:
/// the basic method contracts a whole circuit with `keep = external
/// indices`; the addition partition contracts each slice the same way; the
/// contraction partition pre-contracts blocks and then feeds
/// `[state, block_1, ..., block_k]` through it with `keep = outputs`.
///
/// An index in `keep` that appears in no tensor simply never arises; an
/// index summed here that no tensor *depends* on (possible after diagram
/// reduction) is handled by the contraction's factor-2 rule.
pub fn contract_network(
    m: &mut TddManager,
    tensors: &[NetTensor],
    keep: &VarSet,
) -> ContractionOutcome {
    if tensors.is_empty() {
        return ContractionOutcome {
            edge: Edge::ONE,
            max_nodes: 0,
            allocated_nodes: m.arena_len(),
            cont_cache: CacheStats::default(),
        };
    }
    let cache_before = m.stats().cont_cache;
    // Last tensor index in which each variable occurs.
    let mut last_use = std::collections::BTreeMap::new();
    for (i, t) in tensors.iter().enumerate() {
        for v in t.vars.iter() {
            last_use.insert(v, i);
        }
    }
    let sums_at = |i: usize| -> Vec<Var> {
        let mut s: Vec<Var> = last_use
            .iter()
            .filter(|&(v, &li)| li == i && !keep.contains(*v))
            .map(|(&v, _)| v)
            .collect();
        s.sort_unstable();
        s
    };

    let mut max_nodes = tensors
        .iter()
        .map(|t| m.node_count(t.edge))
        .max()
        .unwrap_or(0);
    let first_sums = sums_at(0);
    let mut acc = m.contract(tensors[0].edge, Edge::ONE, &first_sums);
    max_nodes = max_nodes.max(m.node_count(acc));
    for (i, t) in tensors.iter().enumerate().skip(1) {
        let sums = sums_at(i);
        acc = m.contract(acc, t.edge, &sums);
        max_nodes = max_nodes.max(m.node_count(acc));
    }
    ContractionOutcome {
        edge: acc,
        max_nodes,
        allocated_nodes: m.arena_len(),
        cont_cache: m.stats().cont_cache.since(&cache_before),
    }
}

/// The keep-set of every block of a contraction partition: the indices
/// shared with other blocks or external to the circuit (everything else is
/// internal to the block and summed when the block is pre-contracted).
///
/// Exposed separately from [`precontract_blocks`] so a caller that wants
/// control *between* block contractions — e.g. to poll a GC safepoint with
/// its own live set — can run the per-block loop itself:
/// `contract_network(m, &members_of_block_i, &keeps[i])`.
pub fn block_keep_vars(net: &TensorNetwork, blocks: &Blocks) -> Vec<VarSet> {
    let tensors = net.tensors();
    // How many tensors use each variable, across the whole network.
    let mut usage = std::collections::BTreeMap::new();
    for t in tensors {
        for v in t.vars.iter() {
            *usage.entry(v).or_insert(0usize) += 1;
        }
    }
    let external = net.external_vars();

    blocks
        .blocks
        .iter()
        .map(|block| {
            // A variable is internal iff all its users are inside this
            // block and it is not an external index.
            let mut in_block = std::collections::BTreeMap::new();
            for &gi in block {
                for v in tensors[gi].vars.iter() {
                    *in_block.entry(v).or_insert(0usize) += 1;
                }
            }
            in_block
                .iter()
                .filter(|&(v, &cnt)| external.contains(*v) || usage[v] > cnt)
                .map(|(&v, _)| v)
                .collect()
        })
        .collect()
}

/// Pre-contracts each block of a contraction partition into a single
/// [`NetTensor`], keeping every index shared with other blocks or external
/// to the circuit.
///
/// Returns the block tensors in block order plus the peak node count
/// observed while building them.
pub fn precontract_blocks(
    m: &mut TddManager,
    net: &TensorNetwork,
    blocks: &Blocks,
) -> (Vec<NetTensor>, usize) {
    let keeps = block_keep_vars(net, blocks);
    let mut out = Vec::with_capacity(blocks.blocks.len());
    let mut max_nodes = 0usize;
    for (block, keep) in blocks.blocks.iter().zip(keeps) {
        let members: Vec<NetTensor> = block.iter().map(|&gi| net.tensors()[gi].clone()).collect();
        let outcome = contract_network(m, &members, &keep);
        max_nodes = max_nodes.max(outcome.max_nodes);
        out.push(NetTensor {
            edge: outcome.edge,
            vars: keep,
        });
    }
    (out, max_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::{sim, Circuit, Gate};
    use qits_num::Cplx;
    use std::collections::BTreeMap;

    /// Contract a full circuit network monolithically and compare the
    /// resulting operator against the dense simulator.
    fn check_monolithic(c: &Circuit) {
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, c);
        let outcome = contract_network(&mut m, net.tensors(), &net.external_vars());
        let dense = sim::circuit_matrix(c);
        let n = c.n_qubits();
        for col in 0..(1usize << n) {
            for row in 0..(1usize << n) {
                let mut asn = BTreeMap::new();
                for q in 0..n {
                    asn.insert(net.in_var(q), (col >> (n - 1 - q)) & 1 == 1);
                    asn.insert(net.out_var(q), (row >> (n - 1 - q)) & 1 == 1);
                }
                // Wires with in == out only have consistent assignments.
                let consistent = (0..n).all(|q| {
                    net.in_var(q) != net.out_var(q)
                        || ((col >> (n - 1 - q)) & 1) == ((row >> (n - 1 - q)) & 1)
                });
                if !consistent {
                    assert!(
                        dense[(row, col)].is_zero(),
                        "diagonal wire with off-diagonal entry"
                    );
                    continue;
                }
                let got = m.eval(outcome.edge, &asn);
                assert!(
                    got.approx_eq(dense[(row, col)]),
                    "({row},{col}): got {got}, want {}",
                    dense[(row, col)]
                );
            }
        }
    }

    #[test]
    fn monolithic_bell_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        check_monolithic(&c);
    }

    #[test]
    fn monolithic_diagonal_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::cp(0, 1, 0.7));
        c.push(Gate::z(0));
        check_monolithic(&c);
    }

    #[test]
    fn monolithic_mixed_three_qubits() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::ccx(0, 1, 2));
        c.push(Gate::cp(1, 2, 0.3));
        c.push(Gate::h(2));
        c.push(Gate::cx(2, 0));
        check_monolithic(&c);
    }

    #[test]
    fn slices_sum_to_whole() {
        // Addition-partition identity at network level.
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::h(1));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        let whole = contract_network(&mut m, net.tensors(), &net.external_vars());
        let v = net.in_var(0); // a hyper leg (CX control): interesting cut
        let s0 = net.slice_at(&mut m, v, false);
        let s1 = net.slice_at(&mut m, v, true);
        let e0 = contract_network(&mut m, s0.tensors(), &net.external_vars());
        let e1 = contract_network(&mut m, s1.tensors(), &net.external_vars());
        let sum = m.add(e0.edge, e1.edge);
        assert_eq!(sum, whole.edge);
    }

    #[test]
    fn blocks_contract_to_whole() {
        // Contraction-partition identity: blocks recontract to the circuit.
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(2, 3));
        c.push(Gate::h(3));
        c.push(Gate::cx(0, 3));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        let whole = contract_network(&mut m, net.tensors(), &net.external_vars());
        for (k1, k2) in [(2u32, 1u32), (2, 2), (1, 3), (4, 1)] {
            let blocks = crate::partition::contraction_blocks(&c, k1, k2);
            let (bt, _) = precontract_blocks(&mut m, &net, &blocks);
            let re = contract_network(&mut m, &bt, &net.external_vars());
            assert_eq!(re.edge, whole.edge, "k1={k1} k2={k2}");
        }
    }

    #[test]
    fn reduced_kraus_tensor_still_sums_correctly() {
        // A scaled-identity Kraus gate reduces to a bare scalar TDD, yet
        // its declared wire index must still be summed exactly once (the
        // factor-2 contraction rule). Compare against the dense matrix.
        use qits_circuit::{Gate, GateKind};
        use qits_num::Mat;
        let p: f64 = 0.36;
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        c.push(Gate::custom1(
            0,
            Mat::identity(2).scale(Cplx::real((1.0 - p).sqrt())),
        ));
        c.push(Gate::single(GateKind::X, 0));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        // The scaled identity is diagonal: its tensor reduces to a scalar.
        assert!(net.tensors()[1].edge.is_terminal());
        let out = contract_network(&mut m, net.tensors(), &net.external_vars());
        let dense = sim::circuit_matrix(&c);
        let mut asn = BTreeMap::new();
        asn.insert(net.in_var(0), false);
        asn.insert(net.out_var(0), false);
        let got = m.eval(out.edge, &asn);
        assert!(got.approx_eq(dense[(0, 0)]));
    }

    #[test]
    fn empty_network_is_one() {
        let mut m = TddManager::new();
        let out = contract_network(&mut m, &[], &VarSet::new());
        assert_eq!(out.edge, Edge::ONE);
    }

    #[test]
    fn max_nodes_tracks_peak() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::h(2));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        let out = contract_network(&mut m, net.tensors(), &net.external_vars());
        assert!(out.max_nodes >= 3);
        // Sanity: result evaluates to (1/sqrt 2)^3 on the all-zero column.
        let mut asn = BTreeMap::new();
        for q in 0..3 {
            asn.insert(net.in_var(q), false);
            asn.insert(net.out_var(q), false);
        }
        let got = m.eval(out.edge, &asn);
        assert!(got.approx_eq(Cplx::real(0.5f64.powf(1.5))));
    }
}
