//! Circuit → tensor network lowering.

use qits_circuit::tensorize::{gate_tdd, GateLegs};
use qits_circuit::Circuit;
use qits_tdd::{Edge, EdgeHolder, RootId, TddManager};
use qits_tensor::{Var, VarSet};

/// One tensor of a network: a TDD plus the set of network indices it
/// carries.
///
/// `vars` is authoritative — a reduced diagram may not *depend* on every
/// listed index (a scaled-identity Kraus operator reduces to a scalar), but
/// the index bookkeeping of the contraction engine works on the declared
/// sets, with the factor-2 contraction rule covering reduced indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetTensor {
    /// The tensor, as a TDD in the shared manager.
    pub edge: Edge,
    /// The network indices of this tensor.
    pub vars: VarSet,
}

impl EdgeHolder for NetTensor {
    // Network tensors (gate TDDs, pre-contracted blocks) are long-lived
    // edges: whoever holds them across a collection passes them as a mark
    // root. Collection never moves a node, so no post-GC fixup exists.
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        visit(self.edge);
    }
}

/// A quantum circuit as a tensor network.
///
/// Index convention: index `Var::wire(q, p)` is the `p`-th index on qubit
/// `q`'s wire. Position 0 is the circuit input. Non-diagonal gate targets
/// *advance* the wire to a fresh index; control legs and diagonal targets
/// reuse the current index (the hyper-edge convention of Section V-A).
///
/// # Example
///
/// ```
/// use qits_circuit::{Circuit, Gate};
/// use qits_tdd::TddManager;
/// use qits_tensornet::TensorNetwork;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(0));
/// c.push(Gate::cp(0, 1, 0.5)); // diagonal: consumes no indices
/// let mut m = TddManager::new();
/// let net = TensorNetwork::from_circuit(&mut m, &c);
/// assert_eq!(net.tensors().len(), 2);
/// // Qubit 1's wire never advanced.
/// assert_eq!(net.in_var(1), net.out_var(1));
/// ```
#[derive(Debug, Clone)]
pub struct TensorNetwork {
    n_qubits: u32,
    tensors: Vec<NetTensor>,
    gate_legs: Vec<GateLegs>,
    out_pos: Vec<u32>,
}

impl TensorNetwork {
    /// Lowers a circuit to a tensor network, building one TDD per gate in
    /// the given manager.
    pub fn from_circuit(m: &mut TddManager, circuit: &Circuit) -> TensorNetwork {
        let n = circuit.n_qubits();
        let mut pos = vec![0u32; n as usize];
        let mut tensors = Vec::with_capacity(circuit.len());
        let mut gate_legs = Vec::with_capacity(circuit.len());
        for gate in circuit.gates() {
            let controls: Vec<(Var, bool)> = gate
                .controls
                .iter()
                .map(|c| (Var::wire(c.qubit, pos[c.qubit as usize]), c.value))
                .collect();
            let target_in: Vec<Var> = gate
                .targets
                .iter()
                .map(|&t| Var::wire(t, pos[t as usize]))
                .collect();
            let target_out: Vec<Var> = if gate.is_diagonal() {
                target_in.clone()
            } else {
                gate.targets
                    .iter()
                    .map(|&t| {
                        pos[t as usize] += 1;
                        Var::wire(t, pos[t as usize])
                    })
                    .collect()
            };
            let legs = GateLegs {
                controls,
                target_in,
                target_out,
            };
            let edge = gate_tdd(m, gate, &legs);
            tensors.push(NetTensor {
                edge,
                vars: VarSet::from_iter(legs.all_vars()),
            });
            gate_legs.push(legs);
        }
        TensorNetwork {
            n_qubits: n,
            tensors,
            gate_legs,
            out_pos: pos,
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The network's tensors, in circuit order (possibly followed by
    /// selector tensors introduced by slicing).
    pub fn tensors(&self) -> &[NetTensor] {
        &self.tensors
    }

    /// The legs of the `i`-th *gate* tensor (selector tensors added by
    /// [`TensorNetwork::slice_at`] have no gate legs).
    pub fn gate_legs(&self) -> &[GateLegs] {
        &self.gate_legs
    }

    /// The circuit input index of qubit `q`.
    pub fn in_var(&self, q: u32) -> Var {
        Var::wire(q, 0)
    }

    /// The circuit output index of qubit `q` (equal to the input index if
    /// no non-diagonal gate ever touched the wire).
    pub fn out_var(&self, q: u32) -> Var {
        Var::wire(q, self.out_pos[q as usize])
    }

    /// All input indices, ascending.
    pub fn in_vars(&self) -> Vec<Var> {
        (0..self.n_qubits).map(|q| self.in_var(q)).collect()
    }

    /// All output indices, ascending.
    pub fn out_vars(&self) -> Vec<Var> {
        (0..self.n_qubits).map(|q| self.out_var(q)).collect()
    }

    /// The external (input or output) indices as a set.
    pub fn external_vars(&self) -> VarSet {
        VarSet::from_iter(self.in_vars().into_iter().chain(self.out_vars()))
    }

    /// Every index of the network.
    pub fn all_vars(&self) -> VarSet {
        let mut s = self.external_vars();
        for t in &self.tensors {
            s = s.union(&t.vars);
        }
        s
    }

    /// Slices the network at `var = value`: every tensor carrying `var` is
    /// sliced, and a selector tensor `<var = value>` is appended so the
    /// slices of a network still *sum* to the original (the
    /// addition-partition identity of Section V-A).
    pub fn slice_at(&self, m: &mut TddManager, var: Var, value: bool) -> TensorNetwork {
        let mut out = self.clone();
        for t in out.tensors.iter_mut() {
            if t.vars.contains(var) {
                t.edge = m.slice(t.edge, var, value);
                t.vars.remove(var);
            }
        }
        let sel = m.selector(var, value);
        out.tensors.push(NetTensor {
            edge: sel,
            vars: VarSet::from_iter([var]),
        });
        out
    }

    /// Slices at every `(var, value)` pair in turn.
    pub fn slice_all(&self, m: &mut TddManager, cuts: &[(Var, bool)]) -> TensorNetwork {
        let mut net = self.clone();
        for &(v, val) in cuts {
            net = net.slice_at(m, v, val);
        }
        net
    }

    /// Protects every tensor of the network as a GC root, returning the
    /// ids for a later [`TddManager::unprotect_all`].
    pub fn protect(&self, m: &mut TddManager) -> Vec<RootId> {
        self.tensors.iter().map(|t| m.protect(t.edge)).collect()
    }
}

impl EdgeHolder for TensorNetwork {
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        for t in &self.tensors {
            t.gc_edges(visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_circuit::Gate;

    #[test]
    fn wire_positions_advance_only_for_non_diagonal() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0)); // advances q0
        c.push(Gate::cz(0, 1)); // diagonal: advances nothing
        c.push(Gate::cx(0, 1)); // advances q1 (target), control leg on q0
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        assert_eq!(net.out_var(0), Var::wire(0, 1));
        assert_eq!(net.out_var(1), Var::wire(1, 1));
        // CZ legs reuse position-1 of q0 and position-0 of q1.
        let cz_legs = &net.gate_legs()[1];
        assert_eq!(cz_legs.target_in, cz_legs.target_out);
    }

    #[test]
    fn control_legs_are_hyper() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        // Control on q0 reuses the input index.
        assert_eq!(net.out_var(0), net.in_var(0));
        let legs = &net.gate_legs()[0];
        assert_eq!(legs.controls[0].0, Var::wire(0, 0));
    }

    #[test]
    fn slice_adds_selector_and_removes_var() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        let v = Var::wire(0, 0);
        let sliced = net.slice_at(&mut m, v, true);
        assert_eq!(sliced.tensors().len(), 2);
        assert!(!sliced.tensors()[0].vars.contains(v));
        assert!(sliced.tensors()[1].vars.contains(v));
    }

    #[test]
    fn network_survives_collection_as_an_edge_holder() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        let ext: Vec<Var> = vec![
            Var::wire(0, 0),
            Var::wire(0, 1),
            Var::wire(1, 0),
            Var::wire(1, 1),
        ];
        let edges_before: Vec<Edge> = net.tensors().iter().map(|t| t.edge).collect();
        let whole_before = crate::contract_network(&mut m, net.tensors(), &net.external_vars());
        let dense_before = m.to_tensor(whole_before.edge, &ext);
        // Everything except the network itself becomes garbage.
        let out = m.collect_retaining(&[&net]);
        assert!(out.reclaimed > 0, "the monolithic operator was garbage");
        assert!(
            !m.is_live(whole_before.edge),
            "the unrooted operator must be detectably stale"
        );
        // No relocation step exists: the gate tensors are bit-identical
        // and re-contracting them rebuilds the same dense tensor.
        let edges_after: Vec<Edge> = net.tensors().iter().map(|t| t.edge).collect();
        assert_eq!(edges_after, edges_before);
        assert!(edges_after.iter().all(|&e| m.is_live(e)));
        let whole_after = crate::contract_network(&mut m, net.tensors(), &net.external_vars());
        let dense_after = m.to_tensor(whole_after.edge, &ext);
        assert!(dense_after.approx_eq(&dense_before));
    }

    #[test]
    fn external_vars_cover_in_and_out() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &c);
        let ext = net.external_vars();
        assert!(ext.contains(Var::wire(0, 0)));
        assert!(ext.contains(Var::wire(0, 1)));
        assert!(ext.contains(Var::wire(1, 0)));
        assert_eq!(ext.len(), 3); // q1 in == out
    }
}
