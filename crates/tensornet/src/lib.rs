//! Tensor networks for quantum circuits.
//!
//! A quantum circuit *is* a tensor network: every gate is a tensor, wires
//! carry shared indices, and the circuit's functionality is the contraction
//! of the network (Section II-B of the paper). This crate provides:
//!
//! * [`TensorNetwork`] — circuit → network lowering with the paper's
//!   hyper-edge convention: diagonal gates and control legs *reuse* the wire
//!   index instead of consuming it, so a controlled-phase gate has two legs
//!   instead of four;
//! * [`InteractionGraph`] — the undirected graph of Fig. 5 whose vertices
//!   are indices and whose (hyper-)edges are gates; its degree ranking
//!   drives the **addition partition** (Section V-A);
//! * [`TensorNetwork::slice_at`] — index slicing; slicing the `k`
//!   highest-degree indices splits the network into `2^k` additive parts;
//! * [`contraction_blocks`] — the **contraction partition** (Section V-B):
//!   horizontal cuts every `k1` qubits, a vertical cut after every `k2`
//!   boundary-crossing multi-qubit gates;
//! * [`contract_network`] — a sequential contraction engine that sums each
//!   bond index exactly once (at its last use) and tracks the peak TDD node
//!   count, the "max #node" metric of Table I.

mod engine;
mod graph;
mod network;
mod partition;

pub use engine::{block_keep_vars, contract_network, precontract_blocks, ContractionOutcome};
pub use graph::InteractionGraph;
pub use network::{NetTensor, TensorNetwork};
pub use partition::{contraction_blocks, Blocks};
