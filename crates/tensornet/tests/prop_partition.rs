//! Property tests for the partition schemes: on random circuits, both
//! partitions must reconstruct the whole-network contraction exactly.

use proptest::prelude::*;

use qits_circuit::{Circuit, Gate};
use qits_tdd::TddManager;
use qits_tensornet::{
    contract_network, contraction_blocks, precontract_blocks, InteractionGraph, TensorNetwork,
};

fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::x),
        (q.clone(), 0.0..std::f64::consts::TAU).prop_map(|(q, t)| Gate::phase(q, t)),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b))),
        (q.clone(), q.clone())
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cz(a, b))),
        (q.clone(), q.clone(), q.clone()).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then(|| Gate::ccx(a, b, c))
        }),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Dense equality of two operator edges over the network's external
/// variables (structural edge equality is too strict across different
/// float evaluation orders).
fn same_operator(
    m: &TddManager,
    net: &TensorNetwork,
    a: qits_tdd::Edge,
    b: qits_tdd::Edge,
) -> bool {
    let ext: Vec<_> = net.external_vars().iter().collect();
    m.to_tensor(a, &ext).approx_eq(&m.to_tensor(b, &ext))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Slicing at ANY index (not just the highest-degree one) and summing
    /// the two slice contractions reproduces the whole-network operator.
    #[test]
    fn slices_always_sum_to_whole(circuit in arb_circuit(3, 8), pick in 0usize..16) {
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &circuit);
        let keep = net.external_vars();
        let whole = contract_network(&mut m, net.tensors(), &keep);
        let all_vars: Vec<_> = net.all_vars().iter().collect();
        let var = all_vars[pick % all_vars.len()];
        let s0 = net.slice_at(&mut m, var, false);
        let s1 = net.slice_at(&mut m, var, true);
        let e0 = contract_network(&mut m, s0.tensors(), &keep);
        let e1 = contract_network(&mut m, s1.tensors(), &keep);
        let sum = m.add(e0.edge, e1.edge);
        prop_assert!(same_operator(&m, &net, sum, whole.edge));
    }

    /// Block pre-contraction followed by block contraction reproduces the
    /// whole-network operator for every (k1, k2).
    #[test]
    fn blocks_always_recontract_to_whole(
        circuit in arb_circuit(4, 8),
        k1 in 1u32..5,
        k2 in 1u32..5,
    ) {
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &circuit);
        let keep = net.external_vars();
        let whole = contract_network(&mut m, net.tensors(), &keep);
        let blocks = contraction_blocks(&circuit, k1, k2);
        prop_assert_eq!(blocks.gate_count(), circuit.len());
        let (bt, _) = precontract_blocks(&mut m, &net, &blocks);
        let re = contract_network(&mut m, &bt, &keep);
        prop_assert!(same_operator(&m, &net, re.edge, whole.edge));
    }

    /// The interaction graph's degree ranking is stable and its vertex set
    /// covers every index of every tensor.
    #[test]
    fn graph_covers_all_indices(circuit in arb_circuit(3, 8)) {
        let mut m = TddManager::new();
        let net = TensorNetwork::from_circuit(&mut m, &circuit);
        let g = InteractionGraph::of(&net);
        let vertices: std::collections::BTreeSet<_> = g.vertices().collect();
        for t in net.tensors() {
            for v in t.vars.iter() {
                prop_assert!(vertices.contains(&v), "missing index {v}");
            }
        }
        let top2 = g.highest_degree_vars(2);
        prop_assert_eq!(top2.clone(), g.highest_degree_vars(2), "ranking not deterministic");
        if top2.len() == 2 {
            prop_assert!(g.degree(top2[0]) >= g.degree(top2[1]));
        }
    }
}
