//! Regenerates Table I of the paper: time and max TDD node count of the
//! three image-computation methods across the benchmark families.
//!
//! Usage:
//!   cargo run -p qits-bench --release --bin table1              # laptop sizes
//!   cargo run -p qits-bench --release --bin table1 -- --full    # paper sizes
//!   cargo run -p qits-bench --release --bin table1 -- --timeout 600
//!   cargo run -p qits-bench --release --bin table1 -- --ci      # CI bench smoke
//!
//! Each case runs in a subprocess so timeouts ('-' entries, as in the
//! paper) do not poison later rows. Sizes where only the contraction
//! partition is feasible (the paper's Grover40, QFT30+, QRW30+) are listed
//! with the other methods expected to time out.
//!
//! `--ci` runs the bench-smoke cases (one small paper instance per
//! method), exits non-zero if any subprocess panics, times out, or breaks
//! the 6-field measurement protocol, and writes the `BENCH_ci.json` perf
//! artifact CI uploads on every push.
//!
//! `--ci --resume <path>` makes the smoke resumable: after each case the
//! measured rows are checkpointed to `<path>` (a `qits-store` container,
//! so an interrupted or corrupt file is a typed refusal on restart, not
//! garbage rows), a restarted run restores them instead of re-measuring,
//! and the final `BENCH_ci.json` rows are **bit-identical** to the
//! interrupted run's measurements. `--halt-after <k>` stops cleanly after
//! `k` cases — the hook the CI resume smoke uses to split one run across
//! two processes.

use std::path::{Path, PathBuf};
use std::time::Duration;

use qits_bench::{
    auto_selected, ci_report_json, fmt_count, fmt_secs, maybe_run_one, read_ci_checkpoint,
    run_case_subprocess, run_image_gc, run_pool_throughput, run_reorder_ab, run_serve_soak,
    run_store_measurement, spec_for, strategy_for, write_ci_checkpoint, CiRow, SoakConfig,
    CI_POOL_CASE, METHODS, REORDER_AB_ORDER,
};
use qits_tdd::GcPolicy;

struct Row {
    family: &'static str,
    n: u32,
    /// Skip basic/addition entirely (known-infeasible paper rows) to keep
    /// default runs fast; they print '-'.
    contraction_only: bool,
}

fn default_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    // Elementary-gate Grover reproduces the paper's hardness profile
    // (the primitive-tensor variant is listed separately below).
    for n in [9, 11, 13] {
        rows.push(Row {
            family: "grover-elem",
            n,
            contraction_only: false,
        });
    }
    rows.push(Row {
        family: "grover-elem",
        n: 17,
        contraction_only: true,
    });
    for n in [9, 11, 13] {
        rows.push(Row {
            family: "grover",
            n,
            contraction_only: false,
        });
    }
    for n in [9, 11, 13] {
        rows.push(Row {
            family: "qft",
            n,
            contraction_only: false,
        });
    }
    for n in [30, 50] {
        rows.push(Row {
            family: "qft",
            n,
            contraction_only: true,
        });
    }
    for n in [50, 100] {
        rows.push(Row {
            family: "bv",
            n,
            contraction_only: false,
        });
    }
    for n in [50, 100] {
        rows.push(Row {
            family: "ghz",
            n,
            contraction_only: false,
        });
    }
    for n in [8, 10, 12] {
        rows.push(Row {
            family: "qrw-elem",
            n,
            contraction_only: false,
        });
    }
    for n in [8, 10, 12] {
        rows.push(Row {
            family: "qrw",
            n,
            contraction_only: false,
        });
    }
    rows.push(Row {
        family: "qrw",
        n: 16,
        contraction_only: true,
    });
    // The scenario-frontend families (`qits run` workloads): Draper
    // adders, distance-d repetition codes, and noisy random Clifford+T.
    for n in [6, 8, 10] {
        rows.push(Row {
            family: "adder",
            n,
            contraction_only: false,
        });
    }
    for n in [3, 5, 7] {
        rows.push(Row {
            family: "repcode",
            n,
            contraction_only: false,
        });
    }
    for n in [6, 8, 10] {
        rows.push(Row {
            family: "cliffordt",
            n,
            contraction_only: false,
        });
    }
    rows
}

fn full_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    for n in [15, 18, 20] {
        rows.push(Row {
            family: "grover-elem",
            n,
            contraction_only: false,
        });
    }
    rows.push(Row {
        family: "grover-elem",
        n: 40,
        contraction_only: true,
    });
    for n in [15, 18, 20] {
        rows.push(Row {
            family: "qft",
            n,
            contraction_only: false,
        });
    }
    for n in [30, 50, 100] {
        rows.push(Row {
            family: "qft",
            n,
            contraction_only: true,
        });
    }
    for n in [100, 200, 300, 400, 500] {
        rows.push(Row {
            family: "bv",
            n,
            contraction_only: false,
        });
    }
    for n in [100, 200, 300, 400, 500] {
        rows.push(Row {
            family: "ghz",
            n,
            contraction_only: false,
        });
    }
    for n in [15, 18, 20] {
        rows.push(Row {
            family: "qrw-elem",
            n,
            contraction_only: false,
        });
    }
    for n in [30, 50, 100] {
        rows.push(Row {
            family: "qrw",
            n,
            contraction_only: true,
        });
    }
    for n in [12, 16, 20] {
        rows.push(Row {
            family: "adder",
            n,
            contraction_only: false,
        });
    }
    // A distance-d repetition code declares 2^(d-1) syndrome branches, so
    // d stays modest even in the full table.
    for n in [8, 9, 10] {
        rows.push(Row {
            family: "repcode",
            n,
            contraction_only: false,
        });
    }
    for n in [12, 14, 16] {
        rows.push(Row {
            family: "cliffordt",
            n,
            contraction_only: false,
        });
    }
    rows
}

/// The measured-case summary line, printed identically for a freshly
/// measured row and for one restored from a `--resume` checkpoint —
/// checkpointed `f64`s travel as raw bits, so the restored line matches
/// the interrupted run's character for character (what the CI resume
/// smoke greps for).
fn case_summary(row: &CiRow) -> String {
    format!(
        "ci:   ok  {:.3}s  max#node {}  live/alloc {}/{}  \
         safepoints {} ({} collected, {} nodes reclaimed)  auto→{}",
        row.subprocess.secs,
        row.subprocess.max_nodes,
        row.subprocess.live_nodes,
        row.subprocess.allocated_nodes,
        row.gc.safepoints,
        row.gc.safepoint_collections,
        row.gc.safepoint_reclaimed,
        row.auto_selected,
    )
}

fn reorder_summary(row: &CiRow) -> String {
    format!(
        "ci:   reorder[{}]  live {} → {}  peak {} → {}  \
         ({} swaps, {} sift passes)",
        REORDER_AB_ORDER,
        row.reorder.live_off,
        row.reorder.live_on,
        row.reorder.peak_off,
        row.reorder.peak_on,
        row.reorder.swaps,
        row.reorder.sift_passes,
    )
}

/// The CI bench-smoke mode: one small paper instance per method, each
/// measured through the subprocess protocol (so the protocol itself is
/// under test) and once more in-process under `GcPolicy::aggressive()`
/// for the safepoint counters. With `resume`, finished cases are
/// checkpointed after each measurement and restored instead of re-run;
/// with `halt_after`, the run stops cleanly once that many rows exist.
/// Returns the process exit code.
fn run_ci_smoke(timeout: Duration, resume: Option<&Path>, halt_after: Option<usize>) -> i32 {
    let mut rows: Vec<CiRow> = Vec::new();
    if let Some(path) = resume {
        if path.exists() {
            match read_ci_checkpoint(path) {
                Ok(restored) => {
                    println!(
                        "ci: resumed {} case(s) from checkpoint {}",
                        restored.len(),
                        path.display()
                    );
                    rows = restored;
                }
                Err(e) => {
                    eprintln!("ci: FAIL checkpoint {} is unusable: {e}", path.display());
                    return 1;
                }
            }
        }
    }
    for &(family, n, method) in qits_bench::CI_CASES.iter() {
        if let Some(row) = rows
            .iter()
            .find(|r| r.family == family && r.n == n && r.method == method)
        {
            println!("ci: {family}{n} / {method} (restored from checkpoint)");
            println!("{}", case_summary(row));
            println!("{}", reorder_summary(row));
            continue;
        }
        println!(
            "ci: {family}{n} / {method} (timeout {}s)",
            timeout.as_secs()
        );
        let Some(case) = run_case_subprocess(family, n, method, timeout) else {
            eprintln!(
                "ci: FAIL {family}{n}/{method}: subprocess panicked, timed out, \
                 or broke the 6-field measurement protocol"
            );
            return 1;
        };
        let gc = run_image_gc(
            &spec_for(family, n),
            strategy_for(method),
            Some(GcPolicy::aggressive()),
        );
        if gc.safepoints == 0 {
            // Every serial strategy polls at least one per-state
            // safepoint; a zero counter means the in-image safepoint
            // wiring regressed.
            eprintln!("ci: FAIL {family}{n}/{method}: no safepoint polled");
            return 1;
        }
        // The reordering A/B (schema v5): same case from the
        // position-major order, sifting off vs forced at every
        // collection — the live-node delta tracks what DVO buys.
        let reorder = run_reorder_ab(&spec_for(family, n), strategy_for(method));
        let row = CiRow {
            family: family.into(),
            n,
            method: method.into(),
            subprocess: case,
            gc,
            auto_selected: auto_selected(family, n),
            reorder,
        };
        println!("{}", case_summary(&row));
        println!("{}", reorder_summary(&row));
        rows.push(row);
        if let Some(path) = resume {
            if let Err(e) = write_ci_checkpoint(path, &rows) {
                eprintln!("ci: FAIL cannot write checkpoint {}: {e}", path.display());
                return 1;
            }
        }
        if halt_after.is_some_and(|k| rows.len() >= k) {
            println!(
                "ci: halting after {} case(s){}",
                rows.len(),
                resume
                    .map(|p| format!(" (checkpoint {})", p.display()))
                    .unwrap_or_default()
            );
            return 0;
        }
    }
    // The pool throughput row (schema v3): a batch of independent image
    // jobs through the EnginePool vs one fresh serial engine per job.
    // Hard-fail on any failed job (a correctness regression); the speedup
    // itself is recorded as a tracked perf number, not gated, because CI
    // runner core counts vary.
    // The unique-table health row (schema v4): Robin Hood probe
    // percentiles, tombstone ratio, and GC pause time of the
    // aggressive-GC runs. Collection recycles slots in place, so a
    // rebuild count above zero here is a regression.
    let health = qits_bench::UniqueTableHealth::from_rows(&rows);
    println!(
        "ci: unique_table probe p50/p99 {}/{}  tombstone ratio {:.3}  \
         gen bumps {}  stale hits {}  gc pause {:.2}ms",
        health.probe_p50,
        health.probe_p99,
        health.tombstone_ratio,
        health.generation_bumps,
        health.stale_handle_hits,
        health.gc_pause_ms,
    );
    let (family, n, method, workers, jobs) = CI_POOL_CASE;
    println!("ci: pool {family}{n} / {method} ({workers} workers, {jobs} jobs)");
    let pool = run_pool_throughput(family, n, method, workers, jobs);
    if pool.jobs_failed > 0 {
        eprintln!(
            "ci: FAIL pool run failed {} of {} jobs",
            pool.jobs_failed, pool.jobs
        );
        return 1;
    }
    println!(
        "ci:   ok  serial {:.3}s  pool {:.3}s  speedup {:.2}x",
        pool.serial_secs, pool.pool_secs, pool.speedup
    );
    if pool.speedup < 2.0 {
        eprintln!(
            "ci: WARN pool speedup {:.2}x below the 2x floor on this runner",
            pool.speedup
        );
    }
    // The serve soak (schema v6): the full CI deck — 2000 mixed-priority
    // jobs with deliberately cancelled and deadline-expired slices —
    // through the async front. Accounting soundness hard-fails here;
    // the tail-latency ceiling is gated by `bench_check` against the
    // JSON this run writes.
    let soak = SoakConfig::default();
    println!(
        "ci: serve soak ({} jobs, {} workers, memo {})",
        soak.jobs, soak.workers, soak.memo_capacity
    );
    let serve = run_serve_soak(soak);
    if !serve.sound() || serve.cancelled == 0 || serve.expired == 0 {
        eprintln!(
            "ci: FAIL serve soak books do not balance: {} ok, {} cancelled, \
             {} expired, {} failed, {} lost of {} (memo hit rate {:.4})",
            serve.completed,
            serve.cancelled,
            serve.expired,
            serve.failed,
            serve.lost,
            serve.jobs,
            serve.memo_hit_rate,
        );
        return 1;
    }
    println!(
        "ci:   ok  p50/p95/p99/max {:.3}/{:.3}/{:.3}/{:.3} ms  \
         ({} ok, {} cancelled, {} expired; memo {:.1}% hits)",
        serve.p50_ms,
        serve.p95_ms,
        serve.p99_ms,
        serve.max_ms,
        serve.completed,
        serve.cancelled,
        serve.expired,
        100.0 * serve.memo_hit_rate,
    );
    // The store row (schema v7): snapshot a mid-fixpoint session, warm-
    // start a fresh one from the file and finish it, then prove a pool
    // warm-started from a memo spill answers the duplicate job as a warm
    // hit. Non-convergence or a cold duplicate is a persistence
    // regression, so both hard-fail.
    println!("ci: store (snapshot round trip + warm-started pool)");
    let store = run_store_measurement(Path::new("target/bench-store"));
    if !store.resumed_converged || store.warm_hit_rate <= 0.0 {
        eprintln!(
            "ci: FAIL store round trip: converged={}, warm hit rate {:.3}",
            store.resumed_converged, store.warm_hit_rate
        );
        return 1;
    }
    println!(
        "ci:   ok  snapshot {} bytes  dump {:.2}ms  load {:.2}ms  \
         resumed fixpoint {} iterations  warm hit rate {:.2}",
        store.snapshot_bytes,
        store.dump_ms,
        store.load_ms,
        store.resumed_iterations,
        store.warm_hit_rate,
    );
    let json = ci_report_json(&rows, &pool, &serve, &store);
    if let Err(e) = std::fs::write("BENCH_ci.json", &json) {
        eprintln!("ci: FAIL cannot write BENCH_ci.json: {e}");
        return 1;
    }
    println!(
        "ci: wrote BENCH_ci.json ({} cases + pool + serve + store)",
        rows.len()
    );
    // A finished run owes nothing to the next one.
    if let Some(path) = resume {
        let _ = std::fs::remove_file(path);
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if maybe_run_one(&args) {
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let timeout_secs: u64 = args
        .iter()
        .position(|a| a == "--timeout")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if full { 3600 } else { 120 });
    let timeout = Duration::from_secs(timeout_secs);
    let resume: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--resume")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let halt_after: Option<usize> = args
        .iter()
        .position(|a| a == "--halt-after")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    if args.iter().any(|a| a == "--ci") {
        std::process::exit(run_ci_smoke(timeout, resume.as_deref(), halt_after));
    }
    let rows = if full { full_rows() } else { default_rows() };

    println!(
        "Table I reproduction ({} sizes, timeout {}s; '-' = timeout, as in the paper)",
        if full { "paper" } else { "laptop" },
        timeout_secs
    );
    println!("cache% = contraction-cache hit rate of the run (see ImageStats)");
    println!(
        "live/alloc/recl = live vs allocated arena nodes at the end, and nodes \
         reclaimed by GC during the run"
    );
    println!(
        "{:<12} | {:>9} {:>10} {:>7} {:>15} | {:>9} {:>10} {:>7} {:>15} | {:>9} {:>10} {:>7} {:>15}",
        "Benchmark",
        "basic",
        "max#node",
        "cache%",
        "live/alloc/recl",
        "addition",
        "max#node",
        "cache%",
        "live/alloc/recl",
        "contract",
        "max#node",
        "cache%",
        "live/alloc/recl",
    );
    println!("{}", "-".repeat(12 + 3 * 48));

    for row in rows {
        let mut cells = Vec::new();
        for method in METHODS {
            let skip = row.contraction_only && method != "contraction";
            let result = if skip {
                None
            } else {
                run_case_subprocess(row.family, row.n, method, timeout)
            };
            match result {
                Some(case) => {
                    cells.push(format!(
                        "{:>9} {:>10} {:>6.1}% {:>15}",
                        fmt_secs(Duration::from_secs_f64(case.secs)),
                        case.max_nodes,
                        100.0 * case.cont_hit_rate,
                        format!(
                            "{}/{}/{}",
                            fmt_count(case.live_nodes as u64),
                            fmt_count(case.allocated_nodes as u64),
                            fmt_count(case.reclaimed_nodes),
                        ),
                    ));
                }
                None => cells.push(format!("{:>9} {:>10} {:>7} {:>15}", "-", "-", "-", "-")),
            }
        }
        let name = format!(
            "{}{}",
            match row.family {
                "grover" => "Grover",
                "grover-elem" => "GroverE",
                "qft" => "QFT",
                "bv" => "BV",
                "ghz" => "GHZ",
                "qrw" => "QRW",
                "qrw-elem" => "QRWE",
                "adder" => "Adder",
                "repcode" => "RepCode",
                "cliffordt" => "CliffordT",
                other => other,
            },
            row.n
        );
        println!("{:<12} | {} | {} | {}", name, cells[0], cells[1], cells[2]);
    }
}
