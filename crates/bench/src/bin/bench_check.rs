//! `bench_check` — the perf regression guard over a fresh `BENCH_ci.json`.
//!
//! Parses the artifact the `table1 --ci` run just wrote (schema v8) and
//! hard-fails CI when a tracked perf number crosses its committed floor:
//!
//! * `pool.speedup` < 2.0 — the pool must beat fresh-serial-per-job by
//!   at least 2x on the CI case, or the serving layer regressed;
//! * `serve.p99_ms` > [`P99_CEILING_MS`] — the soak's tail latency gate;
//! * `serve.failed` / `serve.lost` non-zero — correctness, not perf;
//! * `store.warm_hit_rate` ≤ 0 or `store.resumed_converged` false — a
//!   warm-started pool recomputing duplicates, or a resumed fixpoint
//!   failing to finish, means the persistence layer regressed;
//! * `store.snapshot_bytes` = 0 — an empty snapshot recorded nothing;
//! * `cases` missing any scenario-frontend family (`adder`, `repcode`,
//!   `cliffordt`) — the perf trajectory must keep covering the workloads
//!   scenario files drive.
//!
//! Usage: `bench_check [path/to/BENCH_ci.json]` (default `BENCH_ci.json`).

use qits::serve::proto::{parse_json, JsonValue};

/// The committed p99 ceiling for the 2000-job CI soak, in milliseconds.
///
/// The soak's completion latency includes queue wait, so the tail scales
/// with the whole backlog: locally (release, 4 workers) the deck drains
/// with p99 under ~150 ms; CI's 2-core runners are several times slower
/// and noisier. 2000 ms holds an order-of-magnitude cushion over the
/// local figure while still catching a genuine tail collapse (a lost
/// wakeup, a starved lane, a memo regression serially recomputing the
/// deck) which pushes p99 toward the full-drain time.
const P99_CEILING_MS: f64 = 2000.0;

/// The committed pool-speedup floor for the CI pool case.
const SPEEDUP_FLOOR: f64 = 2.0;

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL — {msg}");
    std::process::exit(1);
}

fn number(v: &JsonValue, section: &str, key: &str) -> f64 {
    v.get(section)
        .and_then(|s| s.get(key))
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail(&format!("missing numeric field {section}.{key}")))
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ci.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let v = parse_json(&text).unwrap_or_else(|e| fail(&format!("{path} is not JSON: {e}")));

    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| fail("missing \"schema\""));
    if schema != "qits-bench-ci/8" {
        fail(&format!(
            "schema is '{schema}', expected 'qits-bench-ci/8' — regenerate \
             the artifact with `table1 --ci`"
        ));
    }

    let cases = v
        .get("cases")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| fail("missing \"cases\" array"));
    for family in ["adder", "repcode", "cliffordt"] {
        let covered = cases
            .iter()
            .any(|case| case.get("family").and_then(JsonValue::as_str) == Some(family));
        if !covered {
            fail(&format!(
                "no '{family}' row in cases — the scenario-frontend \
                 families must stay on the perf trajectory"
            ));
        }
    }

    let speedup = number(&v, "pool", "speedup");
    let p99 = number(&v, "serve", "p99_ms");
    let failed = number(&v, "serve", "failed");
    let lost = number(&v, "serve", "lost");
    let hit_rate = number(&v, "serve", "memo_hit_rate");
    let snapshot_bytes = number(&v, "store", "snapshot_bytes");
    let warm_hit_rate = number(&v, "store", "warm_hit_rate");
    let resumed_converged = v
        .get("store")
        .and_then(|s| s.get("resumed_converged"))
        .and_then(JsonValue::as_bool)
        .unwrap_or_else(|| fail("missing boolean field store.resumed_converged"));

    println!(
        "bench_check: pool speedup {speedup:.2}x (floor {SPEEDUP_FLOOR:.1}x), \
         serve p99 {p99:.1}ms (ceiling {P99_CEILING_MS:.0}ms), \
         memo hit rate {:.1}%, snapshot {snapshot_bytes:.0} bytes \
         (warm hit rate {:.1}%)",
        100.0 * hit_rate,
        100.0 * warm_hit_rate,
    );

    if failed > 0.0 || lost > 0.0 {
        fail(&format!(
            "the soak lost or failed jobs (failed={failed}, lost={lost})"
        ));
    }
    if hit_rate <= 0.0 {
        fail("the result memo served no hits — duplicate traffic is being recomputed");
    }
    if speedup < SPEEDUP_FLOOR {
        fail(&format!(
            "pool speedup {speedup:.2}x is below the {SPEEDUP_FLOOR:.1}x floor"
        ));
    }
    if p99 > P99_CEILING_MS {
        fail(&format!(
            "serve p99 {p99:.1}ms exceeds the {P99_CEILING_MS:.0}ms ceiling"
        ));
    }
    if snapshot_bytes <= 0.0 {
        fail("the store snapshot is empty — persistence recorded nothing");
    }
    if !resumed_converged {
        fail("the resumed fixpoint did not converge");
    }
    if warm_hit_rate <= 0.0 {
        fail("the warm-started pool served no warm memo hits — duplicates were recomputed");
    }
    println!("bench_check: ok");
}
