//! `serve_soak` — CI's soak gate for the async serving front.
//!
//! Fires thousands of mixed-priority jobs (with deliberately cancelled
//! and deadline-expired slices) through a [`qits::ServiceHandle`] and
//! audits the books: **every** job must resolve exactly once, nothing
//! may genuinely fail, and the result memo must demonstrably serve
//! duplicate traffic. Exits non-zero on any lost, duplicated, or failed
//! result; tail latency is printed for the record (the hard latency gate
//! lives in `bench_check`, against the committed `BENCH_ci.json`).
//!
//! Usage:
//!   cargo run --release -p qits-bench --bin serve_soak
//!   cargo run --release -p qits-bench --bin serve_soak -- --jobs 5000 --workers 8

use qits_bench::{run_serve_soak, SoakConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let defaults = SoakConfig::default();
    let config = SoakConfig {
        workers: flag("--workers", defaults.workers),
        jobs: flag("--jobs", defaults.jobs),
        memo_capacity: flag("--memo", defaults.memo_capacity),
    };
    println!(
        "soak: {} jobs over {} workers (memo capacity {})",
        config.jobs, config.workers, config.memo_capacity
    );
    let m = run_serve_soak(config);
    println!(
        "soak: latency p50/p95/p99/max  {:.3}/{:.3}/{:.3}/{:.3} ms",
        m.p50_ms, m.p95_ms, m.p99_ms, m.max_ms
    );
    println!(
        "soak: outcomes  {} ok, {} cancelled, {} expired, {} failed, {} lost",
        m.completed, m.cancelled, m.expired, m.failed, m.lost
    );
    println!(
        "soak: memo  {} hits / {} misses (hit rate {:.1}%)",
        m.memo_hits,
        m.memo_misses,
        100.0 * m.memo_hit_rate
    );
    if !m.sound() {
        eprintln!(
            "soak: FAIL — lost={} failed={} accounted={}/{} memo_hit_rate={:.4}",
            m.lost,
            m.failed,
            m.completed + m.failed + m.cancelled + m.expired,
            m.jobs,
            m.memo_hit_rate,
        );
        std::process::exit(1);
    }
    if m.cancelled == 0 || m.expired == 0 {
        eprintln!(
            "soak: FAIL — the deliberate shed slices must land \
             (cancelled={}, expired={})",
            m.cancelled, m.expired
        );
        std::process::exit(1);
    }
    println!("soak: ok");
}
