//! Regenerates Table II of the paper: contraction-partition image time as
//! a function of the parameters `(k1, k2)`, on a Grover instance.
//!
//! Usage:
//!   cargo run -p qits-bench --release --bin table2                  # Grover11, k in 1..=8
//!   cargo run -p qits-bench --release --bin table2 -- --size 15 --kmax 15   # paper setting
//!   cargo run -p qits-bench --release --bin table2 -- --family adder --size 8
//!
//! `--family` accepts any [`spec_for`] name (default `grover-elem`), so
//! the (k1, k2) sweep also runs over the scenario-frontend workloads
//! (`adder`, `repcode`, `cliffordt`).
//!
//! The paper's finding to reproduce: times are flat and small for
//! moderate (k1, k2) and degrade as both grow (the blocks approach the
//! monolithic operator).

use qits::{EngineBuilder, Strategy};
use qits_bench::{fmt_count, spec_for};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: u32| -> u32 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let n = get("--size", 13);
    let kmax = get("--kmax", 12);
    let family = args
        .iter()
        .position(|a| a == "--family")
        .and_then(|i| args.get(i + 1))
        .cloned()
        // The elementary-gate Grover: the variant whose (k1, k2)
        // sensitivity matches the paper's Table II (the primitive-tensor
        // Grover is flat).
        .unwrap_or_else(|| "grover-elem".to_string());

    let spec = spec_for(&family, n);
    println!(
        "Table II reproduction: contraction-partition time (s) for {} over k1, k2 in 1..={kmax}",
        spec.name
    );
    print!("{:>5} |", "k1\\k2");
    for k2 in 1..=kmax {
        print!("{k2:>8}");
    }
    println!();
    println!("{}", "-".repeat(7 + 8 * kmax as usize));

    let mut hit_rates = vec![vec![0.0f64; kmax as usize]; kmax as usize];
    let mut node_cells = vec![vec![String::new(); kmax as usize]; kmax as usize];
    let mut probe_p50 = 0u32;
    let mut probe_p99 = 0u32;
    let mut gc_pause_ms = 0.0f64;
    let mut generation_bumps = 0u64;
    let mut swaps = 0u64;
    let mut sift_passes = 0u64;
    for k1 in 1..=kmax {
        print!("{k1:>5} |");
        for k2 in 1..=kmax {
            // Fresh session per cell: no cache sharing between parameter
            // settings, matching the paper's per-run measurements. The
            // hit rate reported below is therefore purely within-run
            // reuse (blocks against many basis states).
            let mut engine = EngineBuilder::new()
                .strategy(Strategy::Contraction { k1, k2 })
                .build_from_spec(&spec)
                .expect("benchmark spec must form a valid system");
            let (_, stats) = engine.image().expect("table cell must compute");
            probe_p50 = probe_p50.max(stats.probe_p50);
            probe_p99 = probe_p99.max(stats.probe_p99);
            gc_pause_ms += stats.gc_nanos as f64 / 1e6;
            generation_bumps += stats.generation_bumps;
            swaps += stats.swaps;
            sift_passes += stats.sift_passes;
            hit_rates[(k1 - 1) as usize][(k2 - 1) as usize] = stats.cont_hit_rate();
            node_cells[(k1 - 1) as usize][(k2 - 1) as usize] = format!(
                "{}/{}/{}",
                fmt_count(stats.live_nodes as u64),
                fmt_count(stats.allocated_nodes as u64),
                fmt_count(stats.reclaimed_nodes),
            );
            print!("{:>8.4}", stats.elapsed.as_secs_f64());
        }
        println!();
    }

    println!();
    println!("Contraction-cache hit rate (%) per cell (within-run reuse):");
    print!("{:>5} |", "k1\\k2");
    for k2 in 1..=kmax {
        print!("{k2:>8}");
    }
    println!();
    println!("{}", "-".repeat(7 + 8 * kmax as usize));
    for k1 in 1..=kmax {
        print!("{k1:>5} |");
        for k2 in 1..=kmax {
            print!(
                "{:>8.1}",
                100.0 * hit_rates[(k1 - 1) as usize][(k2 - 1) as usize]
            );
        }
        println!();
    }

    println!();
    println!("Node accounting per cell: live / allocated / reclaimed-by-GC:");
    print!("{:>5} |", "k1\\k2");
    for k2 in 1..=kmax {
        print!("{k2:>16}");
    }
    println!();
    println!("{}", "-".repeat(7 + 16 * kmax as usize));
    for k1 in 1..=kmax {
        print!("{k1:>5} |");
        for k2 in 1..=kmax {
            print!("{:>16}", node_cells[(k1 - 1) as usize][(k2 - 1) as usize]);
        }
        println!();
    }

    println!();
    println!(
        "Unique-table health across all cells: probe p50/p99 {probe_p50}/{probe_p99}, \
         {generation_bumps} generation bumps, {gc_pause_ms:.2} ms total GC pause"
    );
    // Zero unless reordering is scheduled — QITS_REORDER=aggressive turns
    // it on for every cell without touching the command line.
    println!(
        "Variable reordering across all cells: {sift_passes} sift passes, {swaps} level swaps"
    );
}
