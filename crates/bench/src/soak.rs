//! The serving soak: thousands of mixed jobs through the async front of
//! an [`EnginePool`], with tail-latency accounting.
//!
//! This is the harness behind CI's `serve-soak` job and the `serve` row
//! of `BENCH_ci.json` (schema v6). It drives the whole serving surface
//! at once — priorities, deadlines, cancellation, the result memo — and
//! then audits the books: every submitted job must resolve exactly once
//! (no lost results, no duplicates — a ticket *is* a oneshot, so a
//! second result per job has nowhere to land), nothing may fail, and the
//! p50/p95/p99/max completion latencies are recorded for the regression
//! gate (`bench_check`).

use std::time::Duration;

use qits::serve::{JobRequest, Priority};
use qits::{CancelToken, EnginePool, EngineSpec, Job, QitsError};
use qits_circuit::{generators, Circuit, Gate};

/// Shape of one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Pool worker threads.
    pub workers: usize,
    /// Total jobs fired.
    pub jobs: usize,
    /// Result-memo capacity (entries).
    pub memo_capacity: usize,
}

impl Default for SoakConfig {
    /// The CI shape: 4 workers, 2000 mixed jobs, a memo big enough that
    /// the recurring shapes all stay resident.
    fn default() -> Self {
        SoakConfig {
            workers: 4,
            jobs: 2000,
            memo_capacity: 4096,
        }
    }
}

/// The `serve` row of `BENCH_ci.json`: outcome accounting plus the
/// completion-latency percentiles of the `Ok` jobs.
#[derive(Debug, Clone, Default)]
pub struct ServeMeasurement {
    /// Pool worker threads.
    pub workers: usize,
    /// Jobs fired.
    pub jobs: usize,
    /// Median completion latency (submission → result), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile completion latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile completion latency — the gated tail.
    pub p99_ms: f64,
    /// Worst completion latency observed.
    pub max_ms: f64,
    /// Jobs that resolved `Ok`.
    pub completed: u64,
    /// Jobs that resolved with a non-cancellation, non-deadline error —
    /// always a soak failure.
    pub failed: u64,
    /// Jobs that resolved [`QitsError::Cancelled`] (the deliberately
    /// cancelled slice).
    pub cancelled: u64,
    /// Jobs that resolved [`QitsError::DeadlineExpired`] (the
    /// deliberately expired slice).
    pub expired: u64,
    /// Jobs whose ticket never resolved — always zero, or the soak fails.
    pub lost: u64,
    /// Result-memo hits across the run.
    pub memo_hits: u64,
    /// Result-memo misses across the run.
    pub memo_misses: u64,
    /// `hits / (hits + misses)`.
    pub memo_hit_rate: f64,
}

impl ServeMeasurement {
    /// The soak's pass verdict: every job accounted for, exactly once,
    /// with no genuine failures — and the memo demonstrably working.
    pub fn sound(&self) -> bool {
        self.lost == 0
            && self.failed == 0
            && self.completed + self.failed + self.cancelled + self.expired == self.jobs as u64
            && self.memo_hit_rate > 0.0
    }
}

/// Nearest-rank percentile of an unsorted latency sample, `q` in `[0,1]`.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// The mixed job deck. Most indices land on one of a handful of
/// recurring shapes (so the memo sees real duplicate traffic); two
/// strided slices get per-index-unique reachability jobs so they can
/// never be served from the memo — one slice is submitted pre-cancelled,
/// the other with an already-expired deadline, making the shed paths
/// deterministic.
fn request_for(i: usize) -> (JobRequest, Expected) {
    // Deliberately cancelled slice: a pre-tripped token and a payload no
    // other index shares — must come back `Cancelled`, shed at dequeue.
    if i % 23 == 7 {
        let token = CancelToken::new();
        token.cancel();
        let req = JobRequest::new(Job::reachability(10_000 + i)).cancel_token(token);
        return (req, Expected::Cancelled);
    }
    // Racy-cancel slice: unique payload, cancelled by the driver right
    // after submission — lands `Cancelled` (at dequeue or mid-run via a
    // safepoint) unless a worker beats the trip, in which case `Ok`.
    if i % 23 == 14 {
        let req = JobRequest::new(Job::reachability(20_000 + i)).priority(Priority::Low);
        return (req, Expected::CancelRace);
    }
    // Deadline-expired slice: unique payload, zero budget — must come
    // back `DeadlineExpired`, shed at dequeue.
    if i % 23 == 19 {
        let req = JobRequest::new(Job::reachability(30_000 + i)).deadline(Duration::ZERO);
        return (req, Expected::Expired);
    }
    let priority = match i % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    };
    let job = match i % 7 {
        0 => Job::image(),
        1 => Job::Image { densify: true },
        2 => Job::reachability(32),
        3 => Job::equivalence(bell_pair(), bell_pair()),
        4 => Job::equivalence(bell_pair(), flipped_bell()),
        5 => Job::reachability(64),
        _ => Job::image(),
    };
    (JobRequest::new(job).priority(priority), Expected::Ok)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Expected {
    Ok,
    Cancelled,
    CancelRace,
    Expired,
}

fn bell_pair() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::h(0));
    c.push(Gate::cx(0, 1));
    c
}

fn flipped_bell() -> Circuit {
    let mut c = bell_pair();
    c.push(Gate::x(1));
    c
}

/// Runs the soak: fires `config.jobs` mixed requests through a
/// [`qits::ServiceHandle`], joins every ticket, and audits the outcome
/// counts against the deck's expectations. Panics only on harness bugs
/// (a spec that fails to build); result soundness is reported through
/// [`ServeMeasurement::sound`] so callers choose their exit path.
pub fn run_serve_soak(config: SoakConfig) -> ServeMeasurement {
    let spec = EngineSpec::new(generators::grover(3)).gc_policy(None);
    let pool = EnginePool::builder(spec)
        .workers(config.workers)
        .memo_capacity(config.memo_capacity)
        .build()
        .expect("the soak spec must form a valid system");
    let handle = pool.handle();

    let mut tickets = Vec::with_capacity(config.jobs);
    for i in 0..config.jobs {
        let (req, expected) = request_for(i);
        let ticket = handle
            .try_submit(req)
            .expect("the soak queue is unbounded; admission cannot fail");
        if expected == Expected::CancelRace {
            ticket.cancel();
        }
        tickets.push((ticket, expected));
    }

    let mut m = ServeMeasurement {
        workers: config.workers,
        jobs: config.jobs,
        ..ServeMeasurement::default()
    };
    let mut latencies = Vec::with_capacity(config.jobs);
    for (mut ticket, expected) in tickets {
        // Drain through `try_join` instead of `join` so the ticket (and
        // its completion timestamp) survives consumption — latency is
        // stamped by the pool at delivery, so polling here costs the
        // harness time but never skews the measurement.
        let result = loop {
            if let Some(r) = ticket.try_join() {
                break r;
            }
            std::thread::sleep(Duration::from_micros(100));
        };
        match &result {
            Ok(_) => {
                m.completed += 1;
                latencies.push(ticket.latency().unwrap_or(Duration::ZERO));
            }
            Err(QitsError::Cancelled) => m.cancelled += 1,
            Err(QitsError::DeadlineExpired) => m.expired += 1,
            Err(e) => {
                if m.failed == 0 {
                    eprintln!("soak: first failure ({expected:?} job): {e}");
                }
                m.failed += 1;
            }
        }
        // The deterministic slices must land exactly as dealt.
        match expected {
            Expected::Cancelled => debug_assert!(matches!(result, Err(QitsError::Cancelled))),
            Expected::Expired => debug_assert!(matches!(result, Err(QitsError::DeadlineExpired))),
            Expected::Ok | Expected::CancelRace => {}
        }
    }
    m.lost = (config.jobs as u64).saturating_sub(m.completed + m.failed + m.cancelled + m.expired);

    let stats = pool.shutdown();
    m.memo_hits = stats.memo.hits;
    m.memo_misses = stats.memo.misses;
    m.memo_hit_rate = stats.memo.hits as f64 / (stats.memo.hits + stats.memo.misses).max(1) as f64;

    latencies.sort_unstable();
    m.p50_ms = percentile_ms(&latencies, 0.50);
    m.p95_ms = percentile_ms(&latencies, 0.95);
    m.p99_ms = percentile_ms(&latencies, 0.99);
    m.max_ms = latencies
        .last()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_take_the_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&ms, 0.50), 50.0);
        assert_eq!(percentile_ms(&ms, 0.99), 99.0);
        assert_eq!(percentile_ms(&ms, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
        assert_eq!(percentile_ms(&[Duration::from_millis(7)], 0.5), 7.0);
    }

    #[test]
    fn small_soak_is_sound() {
        // A miniature of the CI soak: every deck slice present, books
        // balanced, memo demonstrably hit.
        let m = run_serve_soak(SoakConfig {
            workers: 2,
            jobs: 200,
            memo_capacity: 1024,
        });
        assert!(m.sound(), "soak books must balance: {m:?}");
        assert!(m.cancelled > 0, "the cancelled slice must land: {m:?}");
        assert!(m.expired > 0, "the expired slice must land: {m:?}");
        assert!(m.completed > 0);
        assert!(m.memo_hits > 0);
        assert!(m.p99_ms >= m.p50_ms);
        assert!(m.max_ms >= m.p99_ms);
    }
}
