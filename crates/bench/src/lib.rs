//! Shared harness for regenerating the paper's tables.
//!
//! The binaries `table1` and `table2` print the same rows the paper
//! reports (time in seconds, max TDD node count); the Criterion benches in
//! `benches/` track the same workloads for regression purposes. Absolute
//! numbers differ from the paper's Xeon server — the *shape* (method
//! ordering, node-count growth) is the reproduction target; see
//! EXPERIMENTS.md.

pub mod soak;

pub use soak::{run_serve_soak, ServeMeasurement, SoakConfig};

use std::path::Path;
use std::time::{Duration, Instant};

use qits::store::{ByteReader, ByteWriter, MemoEntry, Snapshot, StoreError};
use qits::{
    mc, Auto, Engine, EngineBuilder, EnginePool, EngineSpec, ImageStats, ImageStrategy, Job,
    ReorderPolicy, StaticOrder, Strategy, Subspace,
};
use qits_circuit::generators::{self, QtsSpec};
use qits_tdd::GcPolicy;

/// Bit-flip probability used for all QRW benchmarks (the paper does not
/// report its value; the image subspace is independent of it).
pub const QRW_NOISE: f64 = 0.125;

/// Builds a benchmark spec by family name and size, mirroring the naming
/// of Table I (`Grover15` = `("grover", 15)`).
///
/// Beyond the paper's five families, two ablation variants expose the
/// cost of compiling away the primitive multi-controlled tensors:
/// `grover-elem` lowers every `C^k(X)` to a Toffoli ladder with ancillas,
/// and `grover-ct` further lowers Toffolis to Clifford+T.
///
/// # Panics
///
/// Panics on an unknown family name.
pub fn spec_for(family: &str, n: u32) -> QtsSpec {
    match family {
        "grover" => generators::grover(n),
        "qft" => generators::qft(n),
        "bv" => generators::bernstein_vazirani(n, &generators::bv_secret(n)),
        "ghz" => generators::ghz(n),
        "qrw" => generators::qrw(n, QRW_NOISE),
        "grover-elem" => elementarized_grover(n, false),
        "grover-ct" => elementarized_grover(n, true),
        "qrw-elem" => elementarized_qrw(n),
        "adder" => generators::qft_adder(n, 1),
        "repcode" => generators::repetition_code(n),
        "cliffordt" => generators::random_clifford_t(n, 3 * n, QRW_NOISE, u64::from(n)),
        other => panic!("unknown benchmark family '{other}'"),
    }
}

/// The Grover benchmark lowered to elementary gates (see
/// [`qits_circuit::decompose::elementarize`]); ancilla wires extend the
/// register and start in `|0>`.
fn elementarized_grover(n: u32, clifford_t: bool) -> QtsSpec {
    use qits_circuit::decompose::{elementarize, ElementarizeOptions};
    use qits_circuit::tensorize::states;
    use qits_circuit::Operation;

    let base = generators::grover(n);
    let circuit = base.operations[0].kraus_branches().remove(0);
    let elem = elementarize(&circuit, ElementarizeOptions { clifford_t });
    let pad = (elem.n_qubits() - n) as usize;
    let initial_states = base
        .initial_states
        .iter()
        .map(|amps| {
            let mut a = amps.clone();
            a.extend(std::iter::repeat_n(states::ZERO, pad));
            a
        })
        .collect();
    QtsSpec {
        name: format!(
            "Grover{}{}{n}",
            if clifford_t { "CT" } else { "Elem" },
            if pad > 0 {
                format!("+{pad}a ")
            } else {
                String::new()
            }
        ),
        n_qubits: elem.n_qubits(),
        operations: vec![Operation::from_circuit("grover-elem", &elem)],
        initial_states,
    }
}

/// The quantum-walk benchmark lowered to elementary gates. Every Kraus
/// branch of the noisy operation becomes its own operation; the image of
/// a subspace is the same join either way.
fn elementarized_qrw(n: u32) -> QtsSpec {
    use qits_circuit::decompose::{elementarize, ElementarizeOptions};
    use qits_circuit::tensorize::states;
    use qits_circuit::Operation;

    let base = generators::qrw(n, QRW_NOISE);
    let mut circuits = Vec::new();
    for op in &base.operations {
        for branch in op.kraus_branches() {
            circuits.push(elementarize(&branch, ElementarizeOptions::default()));
        }
    }
    let width = circuits
        .iter()
        .map(qits_circuit::Circuit::n_qubits)
        .max()
        .expect("qrw has operations");
    assert!(
        circuits.iter().all(|c| c.n_qubits() == width),
        "elementarised QRW branches must share a register"
    );
    let pad = (width - n) as usize;
    let operations = circuits
        .iter()
        .enumerate()
        .map(|(i, c)| Operation::from_circuit(format!("walk-elem-{i}"), c))
        .collect();
    let initial_states = base
        .initial_states
        .iter()
        .map(|amps| {
            let mut a = amps.clone();
            a.extend(std::iter::repeat_n(states::ZERO, pad));
            a
        })
        .collect();
    QtsSpec {
        name: format!("QRWElem{n}+{pad}a"),
        n_qubits: width,
        operations,
        initial_states,
    }
}

/// The method names used by the harness CLI, in Table I column order.
pub const METHODS: [&str; 3] = ["basic", "addition", "contraction"];

/// Maps a CLI method name to a strategy with the paper's parameters
/// (`k = 1` for addition, `k1 = k2 = 4` for contraction).
///
/// # Panics
///
/// Panics on an unknown method name.
pub fn strategy_for(method: &str) -> Strategy {
    match method {
        "basic" => Strategy::Basic,
        "addition" => Strategy::Addition { k: 1 },
        "contraction" => Strategy::Contraction { k1: 4, k2: 4 },
        other => panic!("unknown method '{other}'"),
    }
}

/// One measured image computation: builds a fresh engine session (with
/// the default GC watermark installed, so the parallel strategies'
/// workers may reclaim mid-run), runs the image of the spec's initial
/// subspace, and finishes with the end-of-run collection a fixpoint
/// driver would do here — its reclaim count is what the `recl` table
/// column reports.
///
/// `live_nodes`/`allocated_nodes`/`elapsed` are snapshotted by the image
/// kernel *before* that final sweep, so the timing and node columns
/// describe the uncollected run and `reclaimed_nodes` the garbage it
/// left behind.
pub fn run_image(spec: &QtsSpec, strategy: Strategy) -> ImageStats {
    let mut engine = EngineBuilder::new()
        .gc_policy(Some(GcPolicy::default()))
        .strategy(strategy)
        .build_from_spec(spec)
        .expect("benchmark spec must form a valid system");
    let (img, mut stats) = engine.image().expect("benchmark image must compute");
    let out = engine.collect(&[&img]);
    stats.reclaimed_nodes += out.reclaimed as u64;
    stats
}

/// One measured image computation on a fresh session with an explicit GC
/// policy (`None` = grow-only): the A/B shape behind the peak-arena
/// regression test and the safepoint counters of `BENCH_ci.json`. No
/// end-of-run sweep — the stats describe the run exactly as the policy
/// (and the in-image safepoints) left it.
pub fn run_image_gc(spec: &QtsSpec, strategy: Strategy, policy: Option<GcPolicy>) -> ImageStats {
    let mut engine = EngineBuilder::new()
        .gc_policy(policy)
        .strategy(strategy)
        .build_from_spec(spec)
        .expect("benchmark spec must form a valid system");
    engine.image().expect("benchmark image must compute").1
}

/// The dynamic-variable-reordering A/B of one CI case: the same image
/// computation under `GcPolicy::aggressive()`, with sifting off and with
/// sifting forced at every safepoint collection — both runs starting
/// from the deliberately poor position-major static order (all kets
/// above all rows), so the sifting has real structure to reclaim. The
/// live/peak node deltas are the `reorder` row of `BENCH_ci.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderMeasurement {
    /// Live nodes at the end of the sifting-off run.
    pub live_off: usize,
    /// Live nodes at the end of the sifting-on run.
    pub live_on: usize,
    /// Peak allocated slots of the sifting-off run.
    pub peak_off: usize,
    /// Peak allocated slots of the sifting-on run.
    pub peak_on: usize,
    /// Adjacent-level swaps the sifting-on run performed.
    pub swaps: u64,
    /// Sifting passes the sifting-on run completed.
    pub sift_passes: u64,
}

/// The static order both arms of [`run_reorder_ab`] start from, as the
/// JSON records it.
pub const REORDER_AB_ORDER: StaticOrder = StaticOrder::PositionMajor;

/// Measures [`ReorderMeasurement`] for one case (see the struct docs).
pub fn run_reorder_ab(spec: &QtsSpec, strategy: Strategy) -> ReorderMeasurement {
    let run = |reorder: ReorderPolicy| {
        let mut engine = EngineBuilder::new()
            .strategy(strategy)
            .static_order(REORDER_AB_ORDER)
            .gc_policy(Some(GcPolicy::aggressive()))
            .reorder(reorder)
            .build_from_spec(spec)
            .expect("benchmark spec must form a valid system");
        engine.image().expect("benchmark image must compute").1
    };
    let off = run(ReorderPolicy::Off);
    let on = run(ReorderPolicy::EveryCollection);
    ReorderMeasurement {
        live_off: off.live_nodes,
        live_on: on.live_nodes,
        peak_off: off.peak_arena,
        peak_on: on.peak_arena,
        swaps: on.swaps,
        sift_passes: on.sift_passes,
    }
}

/// Like [`run_image`] but also returns the image and the session that
/// owns it, for validation.
pub fn run_image_with_result(spec: &QtsSpec, strategy: Strategy) -> (Subspace, ImageStats, Engine) {
    let mut engine = EngineBuilder::new()
        .strategy(strategy)
        .build_from_spec(spec)
        .expect("benchmark spec must form a valid system");
    let (img, stats) = engine.image().expect("benchmark image must compute");
    (img, stats, engine)
}

/// One measured reachability fixpoint on a fresh session, with an
/// optional GC policy — the workload behind the `gc_overhead` bench and
/// the GC columns of the table binaries.
pub fn run_reachability(
    spec: &QtsSpec,
    strategy: Strategy,
    max_iterations: usize,
    policy: Option<GcPolicy>,
) -> (mc::ReachabilityResult, Engine) {
    let mut engine = EngineBuilder::new()
        .gc_policy(policy)
        .strategy(strategy)
        .build_from_spec(spec)
        .expect("benchmark spec must form a valid system");
    let r = engine
        .reachable_space(max_iterations)
        .expect("benchmark fixpoint must run");
    (r, engine)
}

/// One pool-vs-serial throughput measurement: the same batch of
/// independent image jobs served by an [`EnginePool`] and by the
/// pre-pool serving model (one **fresh** serial engine per job, which is
/// also the differential suite's baseline semantics). The pool wins on
/// two axes at once — parallelism across workers and warm per-worker
/// operation caches across the jobs each worker serves — so the speedup
/// floor holds even on single-core CI runners.
#[derive(Debug, Clone)]
pub struct PoolMeasurement {
    /// Benchmark family of the job's system.
    pub family: String,
    /// Register size.
    pub n: u32,
    /// Table-I method name.
    pub method: String,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Independent image jobs in the batch.
    pub jobs: usize,
    /// Wall-clock seconds for the serial fresh-engine-per-job run.
    pub serial_secs: f64,
    /// Wall-clock seconds for the pool run (submit batch, join all).
    pub pool_secs: f64,
    /// `serial_secs / pool_secs`.
    pub speedup: f64,
    /// Jobs the pool failed (must be 0 for a healthy run).
    pub jobs_failed: u64,
    /// Sifting passes each worker's private manager completed, in worker
    /// order. All zeros unless something schedules reordering — the
    /// throughput workload itself runs GC-off, but `QITS_REORDER=
    /// aggressive` (the CI matrix's reordering leg) reaches the worker
    /// engines through the builder and shows up here.
    pub worker_sift_passes: Vec<u64>,
}

/// Measures [`PoolMeasurement`] for one `(family, n, method)` workload:
/// `jobs` independent image jobs, serially on fresh engines and through a
/// `workers`-wide pool built from the same [`EngineSpec`].
pub fn run_pool_throughput(
    family: &str,
    n: u32,
    method: &str,
    workers: usize,
    jobs: usize,
) -> PoolMeasurement {
    // GC off: a throughput bench wants maximal operation-cache retention
    // across the jobs a worker serves (a collection purges the epoch-
    // tagged caches). Long-running deployments pick their own policy
    // through the spec; correctness under forced GC is the differential
    // suite's job, not this bench's.
    let spec = EngineSpec::new(spec_for(family, n))
        .strategy(strategy_for(method))
        .gc_policy(None);

    let start = Instant::now();
    for _ in 0..jobs {
        let mut engine = spec
            .build()
            .expect("benchmark spec must form a valid system");
        engine.image().expect("benchmark image must compute");
    }
    let serial_secs = start.elapsed().as_secs_f64();

    let pool = EnginePool::builder(spec)
        .workers(workers)
        .build()
        .expect("benchmark spec must form a valid system");
    let start = Instant::now();
    let handles = pool.submit_batch(vec![Job::image(); jobs]);
    for h in handles {
        h.join().expect("pool image job must compute");
    }
    let pool_secs = start.elapsed().as_secs_f64();
    let stats = pool.shutdown();

    PoolMeasurement {
        family: family.into(),
        n,
        method: method.into(),
        workers,
        jobs,
        serial_secs,
        pool_secs,
        speedup: serial_secs / pool_secs.max(f64::MIN_POSITIVE),
        jobs_failed: stats.jobs_failed,
        worker_sift_passes: stats
            .workers
            .iter()
            .map(|w| w.manager.sift_passes)
            .collect(),
    }
}

/// The pool workload the CI bench-smoke measures: the elementarised
/// Grover instance under the basic (monolithic-operator) method — heavy
/// enough per job that compute dwarfs queue overhead, and cache-friendly
/// enough that a worker's warm repeats run several times cheaper than a
/// cold session — on a 4-worker pool and a 32-job batch.
pub const CI_POOL_CASE: (&str, u32, &str, usize, usize) = ("grover-elem", 9, "basic", 4, 32);

/// The kernel the [`Auto`] selector picks for a benchmark instance —
/// recorded per CI case in `BENCH_ci.json` so the selector's decisions
/// are tracked as a perf artifact over time.
pub fn auto_selected(family: &str, n: u32) -> String {
    let spec = spec_for(family, n);
    let ops = qits::Operations::new(spec.n_qubits, spec.operations.clone());
    Auto::default().select(&ops).to_string()
}

/// Formats a node count compactly (`1234567` → `"1.2M"`), table style.
pub fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{}k", n / 1000)
    } else if n >= 1000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Formats a duration as fractional seconds, Table I style.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// One subprocess measurement: wall-clock seconds, peak TDD node count,
/// the contraction-cache hit rate, and the live/allocated/reclaimed node
/// accounting of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseMeasurement {
    /// Wall-clock seconds of the image computation.
    pub secs: f64,
    /// Peak TDD node count ("max #node", live nodes per diagram).
    pub max_nodes: usize,
    /// Contraction-cache hit rate in `[0, 1]`.
    pub cont_hit_rate: f64,
    /// Nodes still live (reachable from input/output) at the end.
    pub live_nodes: usize,
    /// Arena slots allocated at the end (live plus uncollected garbage).
    pub allocated_nodes: usize,
    /// Nodes reclaimed by garbage collections during the run.
    pub reclaimed_nodes: u64,
}

/// Runs a single `(family, n, method)` case in a subprocess of the current
/// executable, so a case that exceeds `timeout` can be killed without
/// poisoning later measurements (the paper uses a 3600 s timeout the same
/// way). Returns `None` on timeout or subprocess failure.
///
/// The subprocess is invoked as `<exe> --one <family> <n> <method>` and
/// must print `<seconds> <max_nodes> <cont_hit_rate> <live> <allocated>
/// <reclaimed>` on success.
pub fn run_case_subprocess(
    family: &str,
    n: u32,
    method: &str,
    timeout: Duration,
) -> Option<CaseMeasurement> {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().ok()?;
    let mut child = Command::new(exe)
        .args(["--one", family, &n.to_string(), method])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    let start = std::time::Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                if !status.success() {
                    return None;
                }
                break;
            }
            Ok(None) => {
                if start.elapsed() > timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    return None;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return None,
        }
    }
    let mut out = String::new();
    use std::io::Read;
    child.stdout.take()?.read_to_string(&mut out).ok()?;
    let mut it = out.split_whitespace();
    let secs: f64 = it.next()?.parse().ok()?;
    let max_nodes: usize = it.next()?.parse().ok()?;
    let cont_hit_rate: f64 = it.next()?.parse().ok()?;
    let live_nodes: usize = it.next()?.parse().ok()?;
    let allocated_nodes: usize = it.next()?.parse().ok()?;
    let reclaimed_nodes: u64 = it.next()?.parse().ok()?;
    Some(CaseMeasurement {
        secs,
        max_nodes,
        cont_hit_rate,
        live_nodes,
        allocated_nodes,
        reclaimed_nodes,
    })
}

/// The bench-smoke cases CI runs: one small paper instance per Table-I
/// method, plus the scenario-frontend families (schema v8). Small enough
/// to finish in seconds, real enough that a strategy regression (panic,
/// wrong dimension, runaway time) surfaces pre-merge.
/// The basic method only polls safepoints between Gram–Schmidt residuals
/// (and skips the final one), so its case needs an initial dimension > 1 —
/// Grover's is 2; the three new families all start from dimension <= n,
/// so they ride the addition/contraction methods.
pub const CI_CASES: [(&str, u32, &str); 6] = [
    ("grover", 4, "basic"),
    ("ghz", 5, "addition"),
    ("qrw", 4, "contraction"),
    ("adder", 3, "addition"),
    ("repcode", 5, "contraction"),
    ("cliffordt", 4, "addition"),
];

/// One row of the `BENCH_ci.json` perf artifact: the subprocess
/// measurement of a case (the 6-field protocol, exactly what Table I
/// reports) next to an in-process run under `GcPolicy::aggressive()`
/// whose safepoint counters prove the in-image collection machinery ran.
#[derive(Debug, Clone)]
pub struct CiRow {
    /// Benchmark family (`"ghz"`, `"grover"`, ...).
    pub family: String,
    /// Register size.
    pub n: u32,
    /// Table-I method name.
    pub method: String,
    /// The subprocess measurement (GC off beyond the default watermark).
    pub subprocess: CaseMeasurement,
    /// The in-process aggressive-GC measurement with safepoint counters.
    pub gc: ImageStats,
    /// The kernel the `Auto` strategy selector would run for this
    /// instance (see [`auto_selected`]) — tracked so selector drift shows
    /// up in the perf trajectory.
    pub auto_selected: String,
    /// The sifting-on-vs-off node-count A/B (see [`run_reorder_ab`]).
    pub reorder: ReorderMeasurement,
}

/// Unique-table health aggregated over the CI cases' aggressive-GC runs:
/// the `unique_table` row of `BENCH_ci.json` schema v4. Probe lengths
/// take the worst case across rows; churn counters and pause time sum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UniqueTableHealth {
    /// Worst median Robin Hood probe length across the CI cases.
    pub probe_p50: u32,
    /// Worst 99th-percentile probe length across the CI cases.
    pub probe_p99: u32,
    /// Stale index cells / allocated index cells at each case's end,
    /// summed — how much probe-run pollution the aggressive policy left
    /// behind (the rehash trigger bounds this below 0.75).
    pub tombstone_ratio: f64,
    /// Slot generations bumped by sweeps (one per reclaimed node).
    pub generation_bumps: u64,
    /// Unique-table hits on swept slots, detected by generation.
    pub stale_handle_hits: u64,
    /// Total milliseconds spent inside mark/sweep (GC pause time).
    pub gc_pause_ms: f64,
}

impl UniqueTableHealth {
    /// Aggregates the health row from the CI cases' aggressive-GC stats.
    pub fn from_rows(rows: &[CiRow]) -> UniqueTableHealth {
        let mut h = UniqueTableHealth::default();
        let mut tombstones = 0usize;
        let mut index_cells = 0usize;
        for r in rows {
            h.probe_p50 = h.probe_p50.max(r.gc.probe_p50);
            h.probe_p99 = h.probe_p99.max(r.gc.probe_p99);
            tombstones += r.gc.tombstones;
            index_cells += r.gc.index_cells;
            h.generation_bumps += r.gc.generation_bumps;
            h.stale_handle_hits += r.gc.stale_handle_hits;
            h.gc_pause_ms += r.gc.gc_nanos as f64 / 1e6;
        }
        h.tombstone_ratio = tombstones as f64 / index_cells.max(1) as f64;
        h
    }
}

/// The persistence measurement of one CI run — the `store` row of
/// `BENCH_ci.json` schema v7: how big a mid-fixpoint engine snapshot is,
/// what dumping and warm-starting it cost, whether the resumed fixpoint
/// converged, and whether a warm-started pool answered duplicate traffic
/// straight from the restored memo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreMeasurement {
    /// On-disk size of the engine snapshot (checkpointed mid-fixpoint).
    pub snapshot_bytes: u64,
    /// Milliseconds to dump the session and write the snapshot.
    pub dump_ms: f64,
    /// Milliseconds to read the snapshot back and warm-start a fresh
    /// session from it.
    pub load_ms: f64,
    /// Total fixpoint iterations of the resumed run (checkpointed window
    /// plus continuation) — must equal the uninterrupted run's count.
    pub resumed_iterations: usize,
    /// Whether the resumed fixpoint converged.
    pub resumed_converged: bool,
    /// `warm_hits / hits` of a pool warm-started from a memo spill and
    /// then asked the duplicate question — 1.0 when every hit was served
    /// by a snapshot-restored entry.
    pub warm_hit_rate: f64,
}

/// Measures [`StoreMeasurement`] for the CI store case: checkpoint a
/// QRW fixpoint after one iteration, warm-start a fresh session from the
/// file and finish it, then spill a pool's memo and prove a second,
/// warm-started pool answers the same job as a warm memo hit. Snapshot
/// files land under `dir` (CI passes `target/`).
///
/// # Panics
///
/// Panics when any persistence step fails — in the CI smoke that *is*
/// the regression signal.
pub fn run_store_measurement(dir: &Path) -> StoreMeasurement {
    std::fs::create_dir_all(dir).expect("creating the snapshot dir");
    let spec = EngineSpec::new(spec_for("qrw", 4)).strategy(strategy_for("contraction"));
    let path = dir.join("bench_store_engine.qsnap");

    // Checkpoint a partial fixpoint to disk, timed.
    let mut engine = spec.build().expect("store spec must form a valid system");
    let partial = engine
        .reachable_space(1)
        .expect("store fixpoint window must run");
    let start = Instant::now();
    engine
        .save_snapshot(&path, "bench-store", Some(&partial))
        .expect("snapshot must write");
    let dump_ms = start.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = std::fs::metadata(&path)
        .expect("snapshot must exist after writing")
        .len();

    // Warm-start a fresh session from the file, timed, and finish the
    // fixpoint from the restored space.
    let start = Instant::now();
    let mut fresh = spec.build().expect("store spec must form a valid system");
    let resumed = fresh
        .warm_start_from(&path)
        .expect("snapshot must load")
        .expect("snapshot carries a checkpoint");
    let load_ms = start.elapsed().as_secs_f64() * 1e3;
    let finished = fresh
        .resume_reachable_space(&resumed, 50)
        .expect("resumed fixpoint must run");

    // Memo spill → warm-started pool → the duplicate job must be a warm
    // hit (answered without any fixpoint running in the new pool).
    let memo_path = dir.join("bench_store_memo.qsnap");
    let job = Job::reachability(50);
    let pool = EnginePool::builder(spec.clone())
        .workers(2)
        .memo_capacity(64)
        .build()
        .expect("store spec must form a valid system");
    pool.submit(job.clone())
        .join()
        .expect("store pool job must compute");
    pool.handle()
        .save_snapshot(&memo_path, "bench-store-memo")
        .expect("memo spill must write");
    pool.shutdown();
    let warmed = EnginePool::builder(spec)
        .workers(2)
        .warm_start(&memo_path)
        .expect("memo snapshot must load")
        .build()
        .expect("store spec must form a valid system");
    warmed
        .submit(job)
        .join()
        .expect("warm-started duplicate must resolve");
    let stats = warmed.shutdown();

    StoreMeasurement {
        snapshot_bytes,
        dump_ms,
        load_ms,
        resumed_iterations: finished.iterations,
        resumed_converged: finished.converged,
        warm_hit_rate: stats.memo.warm_hits as f64 / stats.memo.hits.max(1) as f64,
    }
}

// ----------------------------------------------------------------------
// The resumable-run checkpoint (`table1 --resume`).
// ----------------------------------------------------------------------

fn encode_case(w: &mut ByteWriter, c: &CaseMeasurement) {
    w.put_f64(c.secs);
    w.put_u64(c.max_nodes as u64);
    w.put_f64(c.cont_hit_rate);
    w.put_u64(c.live_nodes as u64);
    w.put_u64(c.allocated_nodes as u64);
    w.put_u64(c.reclaimed_nodes);
}

fn decode_case(r: &mut ByteReader<'_>) -> Result<CaseMeasurement, StoreError> {
    Ok(CaseMeasurement {
        secs: r.get_f64()?,
        max_nodes: r.get_u64()? as usize,
        cont_hit_rate: r.get_f64()?,
        live_nodes: r.get_u64()? as usize,
        allocated_nodes: r.get_u64()? as usize,
        reclaimed_nodes: r.get_u64()?,
    })
}

fn encode_reorder(w: &mut ByteWriter, m: &ReorderMeasurement) {
    w.put_u64(m.live_off as u64);
    w.put_u64(m.live_on as u64);
    w.put_u64(m.peak_off as u64);
    w.put_u64(m.peak_on as u64);
    w.put_u64(m.swaps);
    w.put_u64(m.sift_passes);
}

fn decode_reorder(r: &mut ByteReader<'_>) -> Result<ReorderMeasurement, StoreError> {
    Ok(ReorderMeasurement {
        live_off: r.get_u64()? as usize,
        live_on: r.get_u64()? as usize,
        peak_off: r.get_u64()? as usize,
        peak_on: r.get_u64()? as usize,
        swaps: r.get_u64()?,
        sift_passes: r.get_u64()?,
    })
}

/// Writes a `table1 --resume` checkpoint: the CI rows measured so far,
/// riding inside a [`Snapshot`] container so the file gets the store
/// format's magic, version, and checksum for free. `f64`s travel as raw
/// bits, so a resumed run's rows (and the `BENCH_ci.json` it finally
/// writes) are bit-identical to the interrupted run's measurements.
pub fn write_ci_checkpoint(path: &Path, rows: &[CiRow]) -> Result<(), StoreError> {
    let mut w = ByteWriter::new();
    w.put_u64(rows.len() as u64);
    for row in rows {
        w.put_str(&row.family);
        w.put_u32(row.n);
        w.put_str(&row.method);
        w.put_str(&row.auto_selected);
        encode_case(&mut w, &row.subprocess);
        qits::store::encode_image_stats(&mut w, &row.gc);
        encode_reorder(&mut w, &row.reorder);
    }
    let mut snap = Snapshot::new("table1-checkpoint");
    snap.memo = vec![MemoEntry {
        key: rows.len() as u128,
        value: w.into_bytes(),
    }];
    snap.write_to(path)
}

/// Reads a `table1 --resume` checkpoint back. Corrupt, truncated, or
/// wrong-version files surface as typed [`StoreError`]s, never panics.
pub fn read_ci_checkpoint(path: &Path) -> Result<Vec<CiRow>, StoreError> {
    let snap = Snapshot::read_from(path)?;
    let entry = snap
        .memo
        .first()
        .ok_or_else(|| StoreError::Malformed("checkpoint carries no payload".to_string()))?;
    let mut r = ByteReader::new(&entry.value);
    let count = r.get_count(16)?;
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let family = r.get_str()?;
        let n = r.get_u32()?;
        let method = r.get_str()?;
        let auto_selected = r.get_str()?;
        let subprocess = decode_case(&mut r)?;
        let gc = qits::store::decode_image_stats(&mut r)?;
        let reorder = decode_reorder(&mut r)?;
        rows.push(CiRow {
            family,
            n,
            method,
            subprocess,
            gc,
            auto_selected,
            reorder,
        });
    }
    if r.remaining() != 0 {
        return Err(StoreError::Malformed(format!(
            "{} trailing byte(s) after checkpoint rows",
            r.remaining()
        )));
    }
    Ok(rows)
}

/// Serialises the CI bench rows plus the pool throughput measurement as
/// `BENCH_ci.json` (hand-rolled — the workspace carries no serde).
/// Schema is versioned so downstream trajectory tooling can evolve it;
/// v3 added the `pool` object (workers, batch size, serial vs pool
/// seconds, speedup); v4 added the `unique_table` health row (Robin Hood
/// probe percentiles, tombstone ratio, generational churn, GC pause
/// time) now that collection recycles slots in place instead of
/// rebuilding the table; v5 adds the per-case `reorder` object (live and
/// peak node counts with sifting off vs forced at every collection, from
/// the position-major order — see [`run_reorder_ab`]) and the pool row's
/// `worker_sift_passes`; v6 adds the `serve` row (the async-front soak:
/// completion-latency percentiles over thousands of mixed-priority jobs
/// with deliberately cancelled and deadline-expired slices, plus the
/// result-memo hit accounting — see [`run_serve_soak`]); v7 adds the
/// `store` row (snapshot size, dump/load milliseconds, resumed-fixpoint
/// iteration count, and the warm-started pool's memo hit rate — see
/// [`run_store_measurement`]); v8 extends `cases` with the scenario
/// frontend's generator families (`adder`, `repcode`, `cliffordt` — see
/// [`CI_CASES`]), so the perf trajectory covers the workloads scenario
/// files drive.
pub fn ci_report_json(
    rows: &[CiRow],
    pool: &PoolMeasurement,
    serve: &ServeMeasurement,
    store: &StoreMeasurement,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"qits-bench-ci/8\",\n");
    let ut = UniqueTableHealth::from_rows(rows);
    out.push_str(&format!(
        concat!(
            "  \"unique_table\": {{\"probe_p50\": {}, \"probe_p99\": {}, ",
            "\"tombstone_ratio\": {:.6}, \"generation_bumps\": {}, ",
            "\"stale_handle_hits\": {}, \"gc_pause_ms\": {:.3}}},\n",
        ),
        ut.probe_p50,
        ut.probe_p99,
        ut.tombstone_ratio,
        ut.generation_bumps,
        ut.stale_handle_hits,
        ut.gc_pause_ms,
    ));
    out.push_str(&format!(
        concat!(
            "  \"pool\": {{\"family\": \"{}\", \"n\": {}, \"method\": \"{}\", ",
            "\"workers\": {}, \"jobs\": {}, \"serial_secs\": {:.6}, ",
            "\"pool_secs\": {:.6}, \"speedup\": {:.3}, \"jobs_failed\": {}, ",
            "\"worker_sift_passes\": [{}]}},\n",
        ),
        pool.family,
        pool.n,
        pool.method,
        pool.workers,
        pool.jobs,
        pool.serial_secs,
        pool.pool_secs,
        pool.speedup,
        pool.jobs_failed,
        pool.worker_sift_passes
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str(&format!(
        concat!(
            "  \"serve\": {{\"workers\": {}, \"jobs\": {}, ",
            "\"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, ",
            "\"max_ms\": {:.3}, \"completed\": {}, \"failed\": {}, ",
            "\"cancelled\": {}, \"expired\": {}, \"lost\": {}, ",
            "\"memo_hits\": {}, \"memo_misses\": {}, \"memo_hit_rate\": {:.6}}},\n",
        ),
        serve.workers,
        serve.jobs,
        serve.p50_ms,
        serve.p95_ms,
        serve.p99_ms,
        serve.max_ms,
        serve.completed,
        serve.failed,
        serve.cancelled,
        serve.expired,
        serve.lost,
        serve.memo_hits,
        serve.memo_misses,
        serve.memo_hit_rate,
    ));
    out.push_str(&format!(
        concat!(
            "  \"store\": {{\"snapshot_bytes\": {}, \"dump_ms\": {:.3}, ",
            "\"load_ms\": {:.3}, \"resumed_iterations\": {}, ",
            "\"resumed_converged\": {}, \"warm_hit_rate\": {:.6}}},\n",
        ),
        store.snapshot_bytes,
        store.dump_ms,
        store.load_ms,
        store.resumed_iterations,
        store.resumed_converged,
        store.warm_hit_rate,
    ));
    out.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sub = &r.subprocess;
        let gc = &r.gc;
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"family\": \"{}\", \"n\": {}, \"method\": \"{}\", ",
                "\"auto_selected\": \"{}\",\n",
                "      \"subprocess\": {{\"secs\": {:.6}, \"max_nodes\": {}, ",
                "\"cont_hit_rate\": {:.6}, \"live_nodes\": {}, ",
                "\"allocated_nodes\": {}, \"reclaimed_nodes\": {}}},\n",
                "      \"gc_aggressive\": {{\"secs\": {:.6}, \"max_nodes\": {}, ",
                "\"peak_arena\": {}, \"live_nodes\": {}, \"allocated_nodes\": {}, ",
                "\"reclaimed_nodes\": {}, \"safepoints\": {}, ",
                "\"safepoint_collections\": {}, \"safepoint_reclaimed\": {}}},\n",
                "      \"reorder\": {{\"order\": \"{}\", \"live_off\": {}, ",
                "\"live_on\": {}, \"peak_off\": {}, \"peak_on\": {}, ",
                "\"swaps\": {}, \"sift_passes\": {}}}\n",
                "    }}{}\n",
            ),
            r.family,
            r.n,
            r.method,
            r.auto_selected,
            sub.secs,
            sub.max_nodes,
            sub.cont_hit_rate,
            sub.live_nodes,
            sub.allocated_nodes,
            sub.reclaimed_nodes,
            gc.elapsed.as_secs_f64(),
            gc.max_nodes,
            gc.peak_arena,
            gc.live_nodes,
            gc.allocated_nodes,
            gc.reclaimed_nodes,
            gc.safepoints,
            gc.safepoint_collections,
            gc.safepoint_reclaimed,
            REORDER_AB_ORDER,
            r.reorder.live_off,
            r.reorder.live_on,
            r.reorder.peak_off,
            r.reorder.peak_on,
            r.reorder.swaps,
            r.reorder.sift_passes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Entry point for the `--one` subprocess mode shared by the table
/// binaries. Returns `true` if the arguments selected subprocess mode.
pub fn maybe_run_one(args: &[String]) -> bool {
    if args.len() == 5 && args[1] == "--one" {
        let family = &args[2];
        let n: u32 = args[3].parse().expect("size must be an integer");
        let stats = run_image(&spec_for(family, n), strategy_for(&args[4]));
        println!(
            "{} {} {:.6} {} {} {}",
            stats.elapsed.as_secs_f64(),
            stats.max_nodes,
            stats.cont_hit_rate(),
            stats.live_nodes,
            stats.allocated_nodes,
            stats.reclaimed_nodes,
        );
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory under the workspace `target/` (the repo's
    /// temp-file policy: never the system temp dir).
    fn test_dir(name: &str) -> std::path::PathBuf {
        let d = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/bench-tests")
            .join(name);
        std::fs::create_dir_all(&d).expect("creating the bench test scratch dir");
        d
    }

    #[test]
    fn ci_checkpoint_round_trips_bit_identically() {
        let gc = run_image_gc(
            &spec_for("ghz", 4),
            strategy_for("addition"),
            Some(GcPolicy::aggressive()),
        );
        let rows = vec![CiRow {
            family: "ghz".into(),
            n: 4,
            method: "addition".into(),
            subprocess: CaseMeasurement {
                secs: 0.123456789,
                max_nodes: 17,
                cont_hit_rate: 1.0 / 3.0,
                live_nodes: 5,
                allocated_nodes: 9,
                reclaimed_nodes: 2,
            },
            gc,
            auto_selected: auto_selected("ghz", 4),
            reorder: ReorderMeasurement {
                live_off: 10,
                live_on: 8,
                peak_off: 20,
                peak_on: 16,
                swaps: 3,
                sift_passes: 1,
            },
        }];
        let path = test_dir("checkpoint").join("t1.ck");
        write_ci_checkpoint(&path, &rows).expect("checkpoint must write");
        let back = read_ci_checkpoint(&path).expect("checkpoint must read");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].family, rows[0].family);
        assert_eq!(back[0].subprocess, rows[0].subprocess);
        assert_eq!(back[0].gc, rows[0].gc);
        assert_eq!(back[0].reorder, rows[0].reorder);
        assert_eq!(back[0].auto_selected, rows[0].auto_selected);
        // Bit-identity is what makes a resumed BENCH row identical.
        assert_eq!(
            back[0].subprocess.secs.to_bits(),
            rows[0].subprocess.secs.to_bits()
        );

        // Corruption is a typed error, not a panic.
        let bytes = std::fs::read(&path).unwrap();
        let bad = path.with_extension("ck.bad");
        std::fs::write(&bad, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_ci_checkpoint(&bad).is_err());
    }

    #[test]
    fn spec_for_names_match_table() {
        assert_eq!(spec_for("grover", 5).name, "Grover5");
        assert_eq!(spec_for("qft", 8).name, "QFT8");
        assert_eq!(spec_for("bv", 10).name, "BV10");
        assert_eq!(spec_for("ghz", 12).name, "GHZ12");
        assert_eq!(spec_for("qrw", 6).name, "QRW6");
        assert_eq!(spec_for("adder", 3).name, "Adder3");
        assert_eq!(spec_for("repcode", 3).name, "RepCode3");
        assert_eq!(spec_for("cliffordt", 4).name, "CliffordT4");
    }

    #[test]
    fn all_methods_run_small_case() {
        for method in METHODS {
            let stats = run_image(&spec_for("ghz", 5), strategy_for(method));
            assert_eq!(stats.output_dim, 1, "{method}");
            assert!(stats.max_nodes > 0, "{method}");
        }
    }

    #[test]
    fn elementary_variants_compute_same_image_dim() {
        // The elementarised Grover acts on more wires but its image of the
        // (padded) invariant subspace has the same dimension.
        let base = run_image(&spec_for("grover", 4), strategy_for("contraction"));
        let elem = run_image(&spec_for("grover-elem", 4), strategy_for("contraction"));
        let ct = run_image(&spec_for("grover-ct", 4), strategy_for("contraction"));
        assert_eq!(base.output_dim, elem.output_dim);
        assert_eq!(base.output_dim, ct.output_dim);
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn unknown_method_panics() {
        let _ = strategy_for("quantum-annealing");
    }

    #[test]
    fn fmt_secs_two_decimals() {
        assert_eq!(fmt_secs(Duration::from_millis(1234)), "1.23");
    }

    #[test]
    fn fmt_count_humanizes() {
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1234), "1.2k");
        assert_eq!(fmt_count(56_789), "56k");
        assert_eq!(fmt_count(1_234_567), "1.2M");
        assert_eq!(fmt_count(45_000_000), "45M");
    }

    #[test]
    fn ci_cases_run_and_serialise() {
        // The exact pipeline of the CI bench-smoke job, minus the
        // subprocess hop: every CI case must run, and the JSON must carry
        // the safepoint counters of the aggressive-GC run.
        let (family, n, method) = CI_CASES[2];
        let stats = run_image(&spec_for(family, n), strategy_for(method));
        let gc = run_image_gc(
            &spec_for(family, n),
            strategy_for(method),
            Some(GcPolicy::aggressive()),
        );
        assert_eq!(
            stats.output_dim, gc.output_dim,
            "GC must not change results"
        );
        assert!(gc.safepoints > 0);
        assert!(gc.safepoint_collections > 0);
        let reorder = run_reorder_ab(&spec_for(family, n), strategy_for(method));
        assert!(
            reorder.sift_passes > 0,
            "forcing sifting at every collection must sift: {reorder:?}"
        );
        assert!(reorder.swaps > 0);
        assert!(
            reorder.live_on <= reorder.live_off,
            "sifting must not end with more live nodes than the \
             position-major baseline: {reorder:?}"
        );
        let rows = vec![CiRow {
            family: family.into(),
            n,
            method: method.into(),
            subprocess: CaseMeasurement {
                secs: stats.elapsed.as_secs_f64(),
                max_nodes: stats.max_nodes,
                cont_hit_rate: stats.cont_hit_rate(),
                live_nodes: stats.live_nodes,
                allocated_nodes: stats.allocated_nodes,
                reclaimed_nodes: stats.reclaimed_nodes,
            },
            gc,
            auto_selected: auto_selected(family, n),
            reorder,
        }];
        // A tiny pool measurement keeps this test fast; the real CI case
        // is CI_POOL_CASE.
        let pool = run_pool_throughput("ghz", 4, "contraction", 2, 4);
        assert_eq!(pool.jobs_failed, 0);
        assert!(pool.serial_secs > 0.0 && pool.pool_secs > 0.0);
        // A miniature serve soak keeps this test fast; CI runs the full
        // 2000-job deck through the serve-soak job.
        let serve = run_serve_soak(SoakConfig {
            workers: 2,
            jobs: 100,
            memo_capacity: 256,
        });
        assert!(serve.sound(), "soak books must balance: {serve:?}");
        let store = run_store_measurement(&test_dir("ci-serialise"));
        assert!(store.snapshot_bytes > 0);
        assert!(store.resumed_converged, "resumed fixpoint must converge");
        assert!(
            store.warm_hit_rate > 0.0,
            "a warm-started pool must answer the duplicate from the \
             restored memo: {store:?}"
        );
        let json = ci_report_json(&rows, &pool, &serve, &store);
        assert!(json.contains("\"schema\": \"qits-bench-ci/8\""));
        assert!(json.contains("\"pool\": {\"family\": \"ghz\""));
        assert!(json.contains("\"serve\": {\"workers\": 2, \"jobs\": 100"));
        assert!(json.contains("\"store\": {\"snapshot_bytes\""));
        assert!(json.contains("\"warm_hit_rate\""));
        assert!(json.contains("\"p99_ms\""));
        assert!(json.contains("\"memo_hit_rate\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"worker_sift_passes\": ["));
        assert!(json.contains("\"reorder\": {\"order\": \"position-major\""));
        assert!(json.contains("\"live_off\""));
        assert!(json.contains("\"sift_passes\""));
        assert!(json.contains("\"unique_table\": {\"probe_p50\""));
        assert!(json.contains("\"tombstone_ratio\""));
        assert!(json.contains("\"gc_pause_ms\""));
        let health = UniqueTableHealth::from_rows(&rows);
        assert!(
            health.generation_bumps > 0,
            "an aggressive-GC run must bump generations: {health:?}"
        );
        assert!(health.tombstone_ratio <= 1.0);
        assert!(json.contains("\"safepoint_collections\""));
        assert!(json.contains("\"auto_selected\""));
        assert!(json.contains(&format!("\"family\": \"{family}\"")));
        // Balanced braces: crude structural sanity for the hand-rolled JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn reachability_with_gc_matches_without() {
        let spec = spec_for("qrw", 3);
        let strategy = Strategy::Contraction { k1: 2, k2: 2 };
        let (plain, e_plain) = run_reachability(&spec, strategy, 20, None);
        let (gc, e_gc) = run_reachability(&spec, strategy, 20, Some(GcPolicy::aggressive()));
        assert_eq!(plain.space.dim(), gc.space.dim());
        assert!(gc.reclaimed_nodes > 0);
        assert!(e_gc.manager().arena_len() < e_plain.manager().arena_len());
    }

    #[test]
    fn auto_selected_matches_the_table_one_crossover() {
        // Wide-shallow families sit on the addition side, deep ones on
        // the contraction side.
        assert!(auto_selected("ghz", 50).starts_with("addition"));
        assert!(auto_selected("bv", 50).starts_with("addition"));
        assert!(auto_selected("qft", 9).starts_with("contraction"));
        assert!(auto_selected("grover-elem", 9).starts_with("contraction"));
    }

    #[test]
    fn image_stats_report_node_accounting() {
        let stats = run_image(&spec_for("ghz", 5), strategy_for("contraction"));
        assert!(stats.live_nodes > 0);
        assert!(stats.allocated_nodes >= stats.live_nodes);
        assert!(
            stats.reclaimed_nodes > 0,
            "the end-of-run sweep must reclaim the run's garbage"
        );
    }
}
