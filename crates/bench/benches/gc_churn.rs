//! Node-churn microbench: how fast the generational store turns over
//! slots when a workload allocates, sweeps, and reuses in a tight loop.
//!
//! The backed Robin Hood table frees a swept slot in place (tombstone +
//! generation bump) and hands it back to the next insertion, so a
//! steady-state churn loop should neither grow the store nor pay a
//! per-collection index rebuild. This bench pins that cost on the two
//! paper families whose fixpoints churn hardest — Grover (deep circuit,
//! large per-iteration garbage) and the noisy quantum walk (many Kraus
//! branches) — plus a pure manager-level build/collect/rebuild loop with
//! no image machinery on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qits::{mc, Strategy};
use qits_bench::{spec_for, QRW_NOISE};
use qits_circuit::generators;
use qits_tdd::{GcPolicy, TddManager};
use qits_tensornet::{contract_network, TensorNetwork};

/// One churn round: compute an image, join it into the running space,
/// collect everything else. Under `GcPolicy::aggressive()` every round
/// sweeps the previous round's intermediates and the next round rebuilds
/// into the freed slots.
fn churn_fixpoint(spec_family: &str, n: u32, strategy: Strategy, policy: Option<GcPolicy>) {
    let mut m = TddManager::new();
    m.set_gc_policy(policy);
    let spec = spec_for(spec_family, n);
    let qts = qits::QuantumTransitionSystem::from_spec(&mut m, &spec);
    let r = mc::try_reachable_space(&mut m, &qts, strategy, 10).expect("churn fixpoint");
    assert!(r.space.dim() > 0);
}

fn gc_churn_fixpoints(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_churn/fixpoint");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let cases: [(&str, u32, Strategy); 2] = [
        ("grover", 4, Strategy::Basic),
        ("qrw", 3, Strategy::Contraction { k1: 2, k2: 2 }),
    ];
    let policies: [(&str, Option<GcPolicy>); 3] = [
        ("off", None),
        ("aggressive", Some(GcPolicy::aggressive())),
        (
            // Bounded sweeps: the same collection work spread over
            // safepoint polls, the shape a latency-sensitive caller picks.
            "incremental",
            Some(GcPolicy {
                sweep_budget: 256,
                ..GcPolicy::aggressive()
            }),
        ),
    ];
    for (family, n, strategy) in cases {
        for (label, policy) in policies {
            group.bench_with_input(
                BenchmarkId::new(format!("{family}{n}"), label),
                &policy,
                |b, p| b.iter(|| churn_fixpoint(family, n, strategy, *p)),
            );
        }
    }
    group.finish();
}

fn gc_churn_slot_recycling(c: &mut Criterion) {
    // The store-level loop with no image machinery: contract a circuit,
    // collect with nothing rooted, contract again into the freed slots.
    // This is the narrowest measurement of tombstone/free-list overhead —
    // the arena must not grow after the first round.
    let mut group = c.benchmark_group("gc_churn/slot_recycling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (family, n) in [("grover", 5u32), ("qrw", 3)] {
        let spec = if family == "qrw" {
            generators::qrw(n, QRW_NOISE)
        } else {
            generators::grover(n)
        };
        let circuit = spec.operations[0].kraus_branches().remove(0);
        group.bench_with_input(
            BenchmarkId::new("rebuild_collect", format!("{family}{n}")),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut m = TddManager::new();
                    let mut floor = 0;
                    for round in 0..8 {
                        let net = TensorNetwork::from_circuit(&mut m, circuit);
                        let whole = contract_network(&mut m, net.tensors(), &net.external_vars());
                        assert!(!whole.edge.is_zero());
                        m.collect();
                        if round == 0 {
                            floor = m.arena_len();
                        } else {
                            assert_eq!(
                                m.arena_len(),
                                floor,
                                "steady-state churn must reuse freed slots"
                            );
                        }
                    }
                    m.arena_len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, gc_churn_fixpoints, gc_churn_slot_recycling);
criterion_main!(benches);
