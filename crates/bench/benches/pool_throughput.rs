//! Pool serving throughput: a batch of independent image jobs through an
//! `EnginePool` at several worker widths, against the pre-pool serving
//! model (one fresh serial `Engine` per job).
//!
//! Each pool sample includes pool construction and shutdown, so the
//! measured number is honest end-to-end batch latency — thread spawn,
//! queue, compute, join. The pool's edge comes from parallelism across
//! workers *and* warm per-worker operation caches across the jobs each
//! worker serves; the serial baseline pays a cold session per job.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qits::{EnginePool, EngineSpec, Job, Strategy};
use qits_bench::spec_for;

const JOBS: usize = 32;

fn spec() -> EngineSpec {
    // The CI pool case: the elementarised Grover circuit under the basic
    // (monolithic-operator) method — heavy enough per job that compute
    // dwarfs queue overhead, and cache-friendly enough that a worker's
    // warm repeats are several times cheaper than a cold session. GC off
    // for maximal cache retention (see `run_pool_throughput`).
    EngineSpec::new(spec_for("grover-elem", 9))
        .strategy(Strategy::Basic)
        .gc_policy(None)
}

fn run_pool(workers: usize) {
    let pool = EnginePool::builder(spec())
        .workers(workers)
        .build()
        .expect("benchmark spec must build");
    for h in pool.submit_batch(vec![Job::image(); JOBS]) {
        h.join().expect("pool image job must compute");
    }
    pool.shutdown();
}

fn run_serial() {
    for _ in 0..JOBS {
        let mut engine = spec().build().expect("benchmark spec must build");
        engine.image().expect("image must compute");
    }
}

fn pool_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function(BenchmarkId::new("serial_fresh_engines", JOBS), |b| {
        b.iter(run_serial)
    });
    for workers in [1, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("pool_{workers}w"), JOBS),
            &workers,
            |b, &w| b.iter(|| run_pool(w)),
        );
    }
    group.finish();
}

criterion_group!(benches, pool_throughput);
criterion_main!(benches);
