//! Micro-benchmarks of the TDD substrate: the primitive operations whose
//! cost the image-computation methods are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qits_circuit::tensorize::{gate_tdd, standalone_legs};
use qits_circuit::Gate;
use qits_tdd::TddManager;
use qits_tensor::Var;
use qits_tensornet::{contract_network, TensorNetwork};

fn bench_mcx_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdd/mcx_construction");
    for n_controls in [8u32, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_controls),
            &n_controls,
            |b, &k| {
                let controls: Vec<u32> = (0..k).collect();
                let gate = Gate::mcx(&controls, k);
                let legs = standalone_legs(&gate);
                b.iter(|| {
                    let mut m = TddManager::new();
                    gate_tdd(&mut m, &gate, &legs)
                });
            },
        );
    }
    group.finish();
}

fn bench_ghz_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdd/ghz_operator");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [16u32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let spec = qits_circuit::generators::ghz(n);
            let circuit = spec.operations[0].kraus_branches().remove(0);
            b.iter(|| {
                let mut m = TddManager::new();
                let net = TensorNetwork::from_circuit(&mut m, &circuit);
                contract_network(&mut m, net.tensors(), &net.external_vars())
            });
        });
    }
    group.finish();
}

fn bench_add_random(c: &mut Criterion) {
    c.bench_function("tdd/add_product_states", |b| {
        let mut m = TddManager::new();
        let vars: Vec<Var> = (0..20).map(Var::ket).collect();
        let bits_a: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let bits_b: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect();
        let a = m.basis_ket(&vars, &bits_a);
        let bb = m.basis_ket(&vars, &bits_b);
        b.iter(|| {
            m.clear_caches();
            m.add(a, bb)
        });
    });
}

criterion_group!(
    benches,
    bench_mcx_construction,
    bench_ghz_operator,
    bench_add_random
);
criterion_main!(benches);
