//! GC-cost ablation: the same reachability fixpoints with the collector
//! off versus a watermark policy.
//!
//! The collector trades sweep time for a bounded arena: between fixpoint
//! iterations the driver protects the live subspaces, compacts the arena,
//! and invalidates the (epoch-tagged) operation caches — so a GC'd run
//! pays both the sweep and the lost memoisation. This bench tracks that
//! overhead on Table-I circuit families small enough for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qits::Strategy;
use qits_bench::{run_reachability, spec_for};
use qits_tdd::GcPolicy;

fn gc_overhead_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_overhead/reachability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let strategy = Strategy::Contraction { k1: 2, k2: 2 };
    let policies: [(&str, Option<GcPolicy>); 3] = [
        ("off", None),
        (
            "watermark",
            Some(GcPolicy {
                watermark: 1.5,
                min_interval: 1 << 10,
                sweep_budget: usize::MAX,
                ..GcPolicy::default()
            }),
        ),
        ("aggressive", Some(GcPolicy::aggressive())),
    ];
    for (family, n, iters) in [("qrw", 3u32, 20usize), ("ghz", 4, 10), ("bitflip", 0, 10)] {
        let spec = if family == "bitflip" {
            qits_circuit::generators::bitflip_code()
        } else {
            spec_for(family, n)
        };
        for (label, policy) in policies {
            group.bench_with_input(
                BenchmarkId::new(format!("{}{}", family, n), label),
                &policy,
                |b, p| b.iter(|| run_reachability(&spec, strategy, iters, *p)),
            );
        }
    }
    group.finish();
}

fn gc_overhead_parallel_workers(c: &mut Criterion) {
    // The parallel addition partition collects inside each worker between
    // basis-state applications; measure the policy's cost there too.
    // Grover's dimension-2 initial subspace gives each worker a
    // between-state collection point.
    let mut group = c.benchmark_group("gc_overhead/addition_parallel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let spec = spec_for("grover", 8);
    for (label, policy) in [("off", None), ("aggressive", Some(GcPolicy::aggressive()))] {
        group.bench_with_input(BenchmarkId::new("grover8", label), &policy, |b, p| {
            b.iter(|| {
                use qits::EngineBuilder;
                let mut engine = EngineBuilder::new()
                    .gc_policy(*p)
                    .strategy(Strategy::AdditionParallel { k: 2 })
                    .build_from_spec(&spec)
                    .expect("benchmark spec must form a valid system");
                engine.image().expect("bench image must compute")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    gc_overhead_reachability,
    gc_overhead_parallel_workers
);
criterion_main!(benches);
