//! Criterion benchmark behind Table II: contraction-partition time as a
//! function of (k1, k2) on a Grover instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qits::Strategy;
use qits_bench::{run_image, spec_for};

fn table2_bench(c: &mut Criterion) {
    let spec = spec_for("grover", 9);
    let mut group = c.benchmark_group("table2/grover9");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for k1 in [1u32, 2, 4, 8] {
        for k2 in [1u32, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("k1={k1}/k2={k2}")),
                &(k1, k2),
                |b, &(k1, k2)| b.iter(|| run_image(&spec, Strategy::Contraction { k1, k2 })),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, table2_bench);
criterion_main!(benches);
