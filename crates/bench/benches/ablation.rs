//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//!
//! 1. **Primitive multi-controlled tensors vs elementary gates** — `qits`
//!    keeps `C^k(X)` as one linear-size tensor; compiling it away
//!    (Toffoli ladders, Clifford+T) multiplies the gate count and changes
//!    which partition wins.
//! 2. **Serial vs parallel addition partition** — the paper notes the
//!    slices contract independently; measure what the threading buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qits::Strategy;
use qits_bench::{run_image, spec_for};

fn ablation_gate_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/gate_lowering");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for family in ["grover", "grover-elem", "grover-ct"] {
        let spec = spec_for(family, 6);
        group.bench_with_input(BenchmarkId::new(family, "contraction"), &spec, |b, spec| {
            b.iter(|| run_image(spec, Strategy::Contraction { k1: 4, k2: 4 }))
        });
        group.bench_with_input(BenchmarkId::new(family, "basic"), &spec, |b, spec| {
            b.iter(|| run_image(spec, Strategy::Basic))
        });
    }
    group.finish();
}

fn ablation_parallel_addition(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/parallel_addition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let spec = spec_for("qft", 10);
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("serial", k), &spec, |b, spec| {
            b.iter(|| run_image(spec, Strategy::Addition { k }))
        });
        group.bench_with_input(BenchmarkId::new("parallel", k), &spec, |b, spec| {
            b.iter(|| run_image(spec, Strategy::AdditionParallel { k }))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_gate_lowering, ablation_parallel_addition);
criterion_main!(benches);
