//! Criterion benchmark behind Table I: image-computation time of the
//! three methods on each benchmark family, at sizes that run in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qits_bench::{run_image, spec_for, strategy_for, METHODS};

fn bench_family(c: &mut Criterion, family: &'static str, sizes: &[u32]) {
    let mut group = c.benchmark_group(format!("table1/{family}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for &n in sizes {
        let spec = spec_for(family, n);
        for method in METHODS {
            let strategy = strategy_for(method);
            group.bench_with_input(BenchmarkId::new(method, n), &spec, |b, spec| {
                b.iter(|| run_image(spec, strategy))
            });
        }
    }
    group.finish();
}

fn table1_benches(c: &mut Criterion) {
    bench_family(c, "grover", &[7, 9]);
    bench_family(c, "qft", &[8, 10]);
    bench_family(c, "bv", &[24, 48]);
    bench_family(c, "ghz", &[24, 48]);
    bench_family(c, "qrw", &[7, 9]);
}

criterion_group!(benches, table1_benches);
criterion_main!(benches);
