//! Property tests for the circuit layer: random circuits through the
//! decomposer, the renderer, and the Kraus branch enumeration.

use proptest::prelude::*;

use qits_circuit::decompose::{elementarize, ElementarizeOptions};
use qits_circuit::{render, sim, Circuit, Element, Gate, Operation};
use qits_num::{Cplx, Mat};

fn arb_gate(n: u32) -> BoxedStrategy<Gate> {
    let q = 0..n;
    let mut arms: Vec<BoxedStrategy<Gate>> = vec![
        q.clone().prop_map(Gate::h).boxed(),
        q.clone().prop_map(Gate::x).boxed(),
        q.clone().prop_map(Gate::z).boxed(),
        (q.clone(), 0.0..std::f64::consts::TAU)
            .prop_map(|(q, t)| Gate::phase(q, t))
            .boxed(),
    ];
    if n >= 2 {
        arms.push(
            (q.clone(), q.clone())
                .prop_filter_map("distinct", |(a, b)| (a != b).then(|| Gate::cx(a, b)))
                .boxed(),
        );
    }
    if n >= 3 {
        arms.push(
            (q.clone(), q.clone(), q.clone(), any::<bool>())
                .prop_filter_map("distinct", |(a, b, c, pol)| {
                    (a != b && b != c && a != c)
                        .then(|| Gate::mcx_polarity(&[(a, pol), (b, true)], c))
                })
                .boxed(),
        );
    }
    if n >= 4 {
        arms.push(
            (q.clone(), q.clone(), q.clone(), q.clone())
                .prop_filter_map("distinct", |(a, b, c, d)| {
                    (a != b && a != c && a != d && b != c && b != d && c != d)
                        .then(|| Gate::mcx(&[a, b, c], d))
                })
                .boxed(),
        );
    }
    proptest::strategy::Union::new(arms).boxed()
}

fn arb_circuit(n: u32, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Elementarisation preserves circuit semantics on the original wires
    /// (ancillas restored to |0>), for both lowering levels.
    #[test]
    fn elementarize_preserves_semantics(circuit in arb_circuit(4, 6)) {
        let n0 = circuit.n_qubits();
        let orig = sim::circuit_matrix(&circuit);
        for opts in [
            ElementarizeOptions { clifford_t: false },
            ElementarizeOptions { clifford_t: true },
        ] {
            let elem = elementarize(&circuit, opts);
            let pad = elem.n_qubits() - n0;
            for col in 0..(1usize << n0) {
                let out = sim::run(&elem, &sim::basis_state(elem.n_qubits(), col << pad));
                for (j, amp) in out.iter().enumerate() {
                    let (row, anc) = (j >> pad, j & ((1usize << pad) - 1));
                    let want = if anc == 0 { orig[(row, col)] } else { Cplx::ZERO };
                    prop_assert!(
                        amp.approx_eq_with(want, 1e-8),
                        "clifford_t={}: entry ({j},{col}): {amp} vs {want}",
                        opts.clifford_t
                    );
                }
            }
        }
    }

    /// The renderer emits one line per wire and never panics.
    #[test]
    fn render_shape(circuit in arb_circuit(5, 12)) {
        let art = render::ascii(&circuit);
        prop_assert_eq!(art.lines().count(), 5);
        for line in art.lines() {
            prop_assert!(line.starts_with('q'));
        }
    }

    /// Kraus branch enumeration: branch count is the product of channel
    /// arities, and for trace-preserving channels the branch operators
    /// satisfy completeness (sum E†E = I).
    #[test]
    fn kraus_completeness(
        p1 in 0.05f64..0.95,
        p2 in 0.05f64..0.95,
        circuit in arb_circuit(2, 4),
    ) {
        let channel = |q: u32, p: f64| Element::Channel {
            qubit: q,
            kraus: vec![
                Mat::identity(2).scale(Cplx::real((1.0 - p).sqrt())),
                qits_circuit::GateKind::X.matrix().scale(Cplx::real(p.sqrt())),
            ],
            label: "flip".into(),
        };
        let mut op = Operation::from_circuit("noisy", &circuit);
        op = op.then(channel(0, p1)).then(channel(1, p2));
        prop_assert_eq!(op.branch_count(), 4);
        let ks = sim::operation_kraus_matrices(&op);
        let dim = 1usize << circuit.n_qubits();
        let sum = ks
            .iter()
            .map(|k| k.adjoint().matmul(k))
            .fold(Mat::zeros(dim), |a, b| a.add(&b));
        prop_assert!(sum.approx_eq(&Mat::identity(dim)));
    }

    /// The dense simulator agrees with the circuit matrix applied as a
    /// matrix-vector product (internal consistency of the oracle itself).
    #[test]
    fn sim_consistent_with_matrix(circuit in arb_circuit(3, 8), idx in 0usize..8) {
        let matrix = sim::circuit_matrix(&circuit);
        let by_run = sim::run(&circuit, &sim::basis_state(3, idx));
        let by_matrix = matrix.matvec(&sim::basis_state(3, idx));
        for (a, b) in by_run.iter().zip(by_matrix.iter()) {
            prop_assert!(a.approx_eq(*b));
        }
    }
}
