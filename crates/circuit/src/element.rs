//! Transition-system operations: sequences of unitary, projective, and
//! noisy elements, and their expansion into pure Kraus-operator circuits.

use qits_num::Mat;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// One step of an [`Operation`]'s element sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A (possibly controlled, possibly non-unitary) gate.
    Gate(Gate),
    /// A projection onto the computational-basis outcome `bits` of the
    /// listed qubits — how dynamic circuits (Section III-A.2) record a
    /// measurement result. Expands to one single-qubit projector per qubit.
    Projector {
        /// Measured qubits.
        qubits: Vec<u32>,
        /// Observed outcome, one bit per qubit.
        bits: Vec<bool>,
    },
    /// A noise channel in Kraus form acting on one qubit (Section III-A.3).
    /// Each branch of the operation picks one Kraus operator.
    Channel {
        /// The qubit the channel acts on.
        qubit: u32,
        /// Kraus operators (2x2 each); their `E†E` should sum to at most I.
        kraus: Vec<Mat>,
        /// Human-readable channel name for diagnostics.
        label: String,
    },
}

/// A labelled quantum operation `T_sigma` of a quantum transition system:
/// a sequence of [`Element`]s applied left to right.
///
/// An operation with `k` channels of arities `a_1..a_k` has
/// `a_1 * ... * a_k` Kraus operators, enumerated by
/// [`Operation::kraus_branches`]; each branch is an ordinary [`Circuit`]
/// whose gates may be non-unitary (projectors, scaled Kraus matrices).
///
/// # Example
///
/// ```
/// use qits_circuit::{Element, Gate, Operation};
/// use qits_num::{Cplx, Mat};
///
/// let p = 0.1f64;
/// let flip = Operation::new("noisy-h", 1)
///     .then_gate(Gate::h(0))
///     .then(Element::Channel {
///         qubit: 0,
///         kraus: vec![
///             Mat::identity(2).scale(Cplx::real((1.0 - p).sqrt())),
///             qits_circuit::GateKind::X.matrix().scale(Cplx::real(p.sqrt())),
///         ],
///         label: "bit-flip".into(),
///     });
/// assert_eq!(flip.kraus_branches().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    label: String,
    n_qubits: u32,
    elements: Vec<Element>,
}

impl Operation {
    /// An empty operation on `n_qubits` wires.
    pub fn new(label: impl Into<String>, n_qubits: u32) -> Operation {
        Operation {
            label: label.into(),
            n_qubits,
            elements: Vec::new(),
        }
    }

    /// Wraps a whole combinational circuit as a single unitary operation.
    pub fn from_circuit(label: impl Into<String>, circuit: &Circuit) -> Operation {
        let mut op = Operation::new(label, circuit.n_qubits());
        for g in circuit.gates() {
            op.elements.push(Element::Gate(g.clone()));
        }
        op
    }

    /// The operation's label (the symbol `sigma`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The element sequence.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Appends an element (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the element touches qubits outside the register or is
    /// malformed (projector length mismatch, empty channel).
    pub fn then(mut self, e: Element) -> Operation {
        match &e {
            Element::Gate(g) => assert!(g.max_qubit() < self.n_qubits, "gate {g} exceeds register"),
            Element::Projector { qubits, bits } => {
                assert_eq!(qubits.len(), bits.len(), "one bit per projected qubit");
                assert!(
                    qubits.iter().all(|q| *q < self.n_qubits),
                    "projector exceeds register"
                );
            }
            Element::Channel { qubit, kraus, .. } => {
                assert!(*qubit < self.n_qubits, "channel exceeds register");
                assert!(
                    !kraus.is_empty(),
                    "channel needs at least one Kraus operator"
                );
                assert!(
                    kraus.iter().all(|m| m.dim() == 2),
                    "single-qubit channel Kraus operators must be 2x2"
                );
            }
        }
        self.elements.push(e);
        self
    }

    /// Appends a gate element (builder style).
    pub fn then_gate(self, g: Gate) -> Operation {
        self.then(Element::Gate(g))
    }

    /// Number of Kraus operators (product of channel arities).
    pub fn branch_count(&self) -> usize {
        self.elements
            .iter()
            .map(|e| match e {
                Element::Channel { kraus, .. } => kraus.len(),
                _ => 1,
            })
            .product()
    }

    /// Enumerates the pure Kraus-operator circuits of this operation.
    ///
    /// Branch `i` selects, for each channel element in sequence order, the
    /// Kraus operator indexed by the mixed-radix digits of `i` (first
    /// channel varies slowest). Projectors expand to one single-qubit
    /// projector gate per measured qubit.
    pub fn kraus_branches(&self) -> Vec<Circuit> {
        let arities: Vec<usize> = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Channel { kraus, .. } => Some(kraus.len()),
                _ => None,
            })
            .collect();
        let total: usize = arities.iter().product::<usize>().max(1);
        let mut out = Vec::with_capacity(total);
        for branch in 0..total {
            // Mixed-radix digits of `branch`, first channel slowest.
            let mut digits = Vec::with_capacity(arities.len());
            let mut rem = branch;
            for &a in arities.iter().rev() {
                digits.push(rem % a);
                rem /= a;
            }
            digits.reverse();

            let mut circuit = Circuit::new(self.n_qubits);
            let mut ch = 0usize;
            for e in &self.elements {
                match e {
                    Element::Gate(g) => circuit.push(g.clone()),
                    Element::Projector { qubits, bits } => {
                        for (&q, &b) in qubits.iter().zip(bits.iter()) {
                            circuit.push(Gate::projector(q, b));
                        }
                    }
                    Element::Channel { qubit, kraus, .. } => {
                        let m = kraus[digits[ch]].clone();
                        ch += 1;
                        circuit.push(Gate::custom1(*qubit, m));
                    }
                }
            }
            out.push(circuit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Cplx;

    fn bitflip(p: f64) -> Element {
        Element::Channel {
            qubit: 0,
            kraus: vec![
                Mat::identity(2).scale(Cplx::real((1.0 - p).sqrt())),
                crate::GateKind::X.matrix().scale(Cplx::real(p.sqrt())),
            ],
            label: "bit-flip".into(),
        }
    }

    #[test]
    fn unitary_operation_has_one_branch() {
        let op = Operation::new("u", 2)
            .then_gate(Gate::h(0))
            .then_gate(Gate::cx(0, 1));
        assert_eq!(op.branch_count(), 1);
        let branches = op.kraus_branches();
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].len(), 2);
    }

    #[test]
    fn channels_multiply_branches() {
        let op = Operation::new("nn", 1)
            .then(bitflip(0.1))
            .then(bitflip(0.2));
        assert_eq!(op.branch_count(), 4);
        assert_eq!(op.kraus_branches().len(), 4);
    }

    #[test]
    fn projector_expands_per_qubit() {
        let op = Operation::new("m", 3).then(Element::Projector {
            qubits: vec![1, 2],
            bits: vec![true, false],
        });
        let branches = op.kraus_branches();
        assert_eq!(branches[0].len(), 2);
        assert!(branches[0].gates().iter().all(|g| g.is_diagonal()));
    }

    #[test]
    fn branch_digit_order_first_channel_slowest() {
        let op = Operation::new("nn", 1)
            .then(bitflip(0.1))
            .then(bitflip(0.2));
        let branches = op.kraus_branches();
        // Branch 1 = digits (0,1): first channel I-scaled, second X-scaled.
        let b1 = &branches[1];
        let g0 = &b1.gates()[0];
        let g1 = &b1.gates()[1];
        match (&g0.kind, &g1.kind) {
            (crate::GateKind::Custom1(m0), crate::GateKind::Custom1(m1)) => {
                assert!(m0.is_diagonal()); // scaled identity
                assert!(!m1.is_diagonal()); // scaled X
            }
            _ => panic!("expected custom gates"),
        }
    }

    #[test]
    #[should_panic(expected = "exceeds register")]
    fn rejects_out_of_register_elements() {
        let _ = Operation::new("bad", 1).then_gate(Gate::h(3));
    }

    #[test]
    fn from_circuit_preserves_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let op = Operation::from_circuit("c", &c);
        assert_eq!(op.elements().len(), 2);
        assert_eq!(op.branch_count(), 1);
    }
}
