//! Circuits: ordered gate lists on a fixed register.

use std::fmt;

use crate::gate::Gate;

/// A combinational quantum circuit: gates applied left to right on
/// `n_qubits` wires.
///
/// # Example
///
/// ```
/// use qits_circuit::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::h(0));
/// bell.push(Gate::cx(0, 1));
/// assert_eq!(bell.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` wires.
    pub fn new(n_qubits: u32) -> Circuit {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of wires.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds register of {} qubits",
            self.n_qubits
        );
        self.gates.push(gate);
    }

    /// Appends every gate of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if register sizes differ.
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot concatenate circuits on different registers"
        );
        self.gates.extend(other.gates.iter().cloned());
    }

    /// The gates in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of multi-qubit gates (the quantity counted by the
    /// contraction-partition cut rule).
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_multi_qubit()).count()
    }
}

impl FromIterator<Gate> for Circuit {
    /// Collects gates into a circuit sized by the largest qubit used.
    fn from_iter<I: IntoIterator<Item = Gate>>(iter: I) -> Circuit {
        let gates: Vec<Gate> = iter.into_iter().collect();
        let n_qubits = gates.iter().map(|g| g.max_qubit() + 1).max().unwrap_or(0);
        Circuit { n_qubits, gates }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n_qubits)?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn push_checks_register() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds register")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(2));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push(Gate::h(0));
        let mut b = Circuit::new(2);
        b.push(Gate::cx(0, 1));
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_iter_sizes_register() {
        let c: Circuit = [Gate::h(0), Gate::cx(0, 3)].into_iter().collect();
        assert_eq!(c.n_qubits(), 4);
    }

    #[test]
    fn multi_qubit_count() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::ccx(0, 1, 2));
        assert_eq!(c.multi_qubit_gate_count(), 2);
    }
}
