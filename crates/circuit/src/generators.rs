//! Benchmark circuit generators: the workloads of the paper's evaluation
//! (Table I) and the worked examples of Section III-A.
//!
//! Every generator returns a [`QtsSpec`]: the operations of a quantum
//! transition system plus the product states spanning the initial subspace
//! ("the commonly used input states" of Section VI-A).

use qits_num::{Cplx, Mat};

use crate::circuit::Circuit;
use crate::element::{Element, Operation};
use crate::gate::{Gate, GateKind};
use crate::tensorize::states;

/// A quantum transition system specification: operations plus initial
/// product states. The `qits` core crate turns this into symbolic
/// subspaces and runs image computation on it.
#[derive(Debug, Clone)]
pub struct QtsSpec {
    /// Benchmark name, e.g. `"Grover15"`.
    pub name: String,
    /// Register width.
    pub n_qubits: u32,
    /// The operations `T_sigma`.
    pub operations: Vec<Operation>,
    /// Product states spanning the initial subspace: one `(alpha, beta)`
    /// amplitude pair per qubit per state.
    pub initial_states: Vec<Vec<(Cplx, Cplx)>>,
}

impl QtsSpec {
    fn named(name: impl Into<String>, n_qubits: u32) -> QtsSpec {
        QtsSpec {
            name: name.into(),
            n_qubits,
            operations: Vec::new(),
            initial_states: Vec::new(),
        }
    }
}

/// GHZ-state preparation: `H` on qubit 0 followed by a CX chain.
/// Initial subspace `span{|0...0>}`.
pub fn ghz(n: u32) -> QtsSpec {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    for q in 0..n - 1 {
        c.push(Gate::cx(q, q + 1));
    }
    let mut spec = QtsSpec::named(format!("GHZ{n}"), n);
    spec.operations.push(Operation::from_circuit("ghz", &c));
    spec.initial_states.push(vec![states::ZERO; n as usize]);
    spec
}

/// One Grover iteration on `n` qubits (`n-1` search qubits plus one oracle
/// ancilla), generalising the paper's Fig. 2. The oracle marks the all-ones
/// input (`f(x) = x_1 AND ... AND x_{n-1}`); the diffusion operator is the
/// standard reflection `2|psi><psi| - I` on the search qubits.
///
/// Initial subspace `span{|+...+->, |1...1->}` — the invariant subspace `S`
/// of Section III-A.1, for which `T(S) = S`.
pub fn grover(n: u32) -> QtsSpec {
    assert!(n >= 3, "Grover needs at least 2 search qubits + 1 ancilla");
    let search: Vec<u32> = (0..n - 1).collect();
    let ancilla = n - 1;
    let mut c = Circuit::new(n);
    // Oracle: |x>|y> -> |x>|y ^ f(x)>, f = AND.
    c.push(Gate::mcx(&search, ancilla));
    // Diffusion on the search qubits.
    for &q in &search {
        c.push(Gate::h(q));
    }
    for &q in &search {
        c.push(Gate::x(q));
    }
    // Multi-controlled Z via H-MCX-H on the last search qubit.
    let (z_target, z_controls) = search.split_last().expect("n >= 3");
    c.push(Gate::h(*z_target));
    c.push(Gate::mcx(z_controls, *z_target));
    c.push(Gate::h(*z_target));
    for &q in &search {
        c.push(Gate::x(q));
    }
    for &q in &search {
        c.push(Gate::h(q));
    }

    let mut spec = QtsSpec::named(format!("Grover{n}"), n);
    spec.operations.push(Operation::from_circuit("grover", &c));
    let mut plus_minus = vec![states::PLUS; (n - 1) as usize];
    plus_minus.push(states::MINUS);
    let mut ones_minus = vec![states::ONE; (n - 1) as usize];
    ones_minus.push(states::MINUS);
    spec.initial_states.push(plus_minus);
    spec.initial_states.push(ones_minus);
    spec
}

/// Bernstein–Vazirani on `n` qubits (`n-1` data + 1 ancilla) with the given
/// secret string (length `n-1`). Initial subspace `span{|0...0,1>}`.
///
/// # Panics
///
/// Panics if `secret.len() != n-1`.
pub fn bernstein_vazirani(n: u32, secret: &[bool]) -> QtsSpec {
    assert!(n >= 2, "BV needs at least 1 data qubit + 1 ancilla");
    assert_eq!(secret.len(), (n - 1) as usize, "secret length must be n-1");
    let ancilla = n - 1;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::h(q));
    }
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.push(Gate::cx(q as u32, ancilla));
        }
    }
    for q in 0..n - 1 {
        c.push(Gate::h(q));
    }

    let mut spec = QtsSpec::named(format!("BV{n}"), n);
    spec.operations.push(Operation::from_circuit("bv", &c));
    let mut init = vec![states::ZERO; (n - 1) as usize];
    init.push(states::ONE);
    spec.initial_states.push(init);
    spec
}

/// A deterministic pseudo-random secret for [`bernstein_vazirani`],
/// seeded by `n` (splitmix64) so experiments are reproducible.
pub fn bv_secret(n: u32) -> Vec<bool> {
    let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(u64::from(n) + 1);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n.saturating_sub(1)).map(|_| next() & 1 == 1).collect()
}

/// Quantum Fourier transform on `n` qubits (without the final swap
/// network, the usual benchmark convention; see [`qft_with_swaps`]).
/// Initial subspace `span{|0...0>}`.
pub fn qft(n: u32) -> QtsSpec {
    qft_impl(n, false)
}

/// QFT including the final swap network.
pub fn qft_with_swaps(n: u32) -> QtsSpec {
    qft_impl(n, true)
}

fn qft_impl(n: u32, swaps: bool) -> QtsSpec {
    assert!(n >= 1, "QFT needs at least 1 qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::h(i));
        for j in i + 1..n {
            let theta = std::f64::consts::PI / f64::from(1u32 << (j - i));
            c.push(Gate::cp(j, i, theta));
        }
    }
    if swaps {
        for q in 0..n / 2 {
            c.push(Gate::swap(q, n - 1 - q));
        }
    }
    let mut spec = QtsSpec::named(format!("QFT{n}"), n);
    spec.operations.push(Operation::from_circuit("qft", &c));
    spec.initial_states.push(vec![states::ZERO; n as usize]);
    spec
}

/// The bit-flip channel `{sqrt(1-p) I, sqrt(p) X}` on `qubit`.
pub fn bit_flip_channel(qubit: u32, p: f64) -> Element {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    Element::Channel {
        qubit,
        kraus: vec![
            Mat::identity(2).scale(Cplx::real((1.0 - p).sqrt())),
            GateKind::X.matrix().scale(Cplx::real(p.sqrt())),
        ],
        label: format!("bit-flip({p})"),
    }
}

/// The phase-flip channel `{sqrt(1-p) I, sqrt(p) Z}` on `qubit`.
pub fn phase_flip_channel(qubit: u32, p: f64) -> Element {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    Element::Channel {
        qubit,
        kraus: vec![
            Mat::identity(2).scale(Cplx::real((1.0 - p).sqrt())),
            GateKind::Z.matrix().scale(Cplx::real(p.sqrt())),
        ],
        label: format!("phase-flip({p})"),
    }
}

/// The single-qubit depolarizing channel with parameter `p` on `qubit`:
/// `{sqrt(1-3p/4) I, sqrt(p/4) X, sqrt(p/4) Y, sqrt(p/4) Z}`.
pub fn depolarizing_channel(qubit: u32, p: f64) -> Element {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    Element::Channel {
        qubit,
        kraus: vec![
            Mat::identity(2).scale(Cplx::real((1.0 - 0.75 * p).sqrt())),
            GateKind::X.matrix().scale(Cplx::real((0.25 * p).sqrt())),
            GateKind::Y.matrix().scale(Cplx::real((0.25 * p).sqrt())),
            GateKind::Z.matrix().scale(Cplx::real((0.25 * p).sqrt())),
        ],
        label: format!("depolarize({p})"),
    }
}

/// A ripple-carry incrementer `|x> -> |x+1 mod 2^n>` (qubit 0 is the most
/// significant bit): the multi-controlled-X cascade. The reference
/// implementation the QFT adder is verified against — not itself
/// DSL-expressible for `n > 3` (controls beyond Toffoli).
pub fn ripple_increment(n: u32) -> Circuit {
    assert!(n >= 1, "incrementer needs at least 1 qubit");
    let mut c = Circuit::new(n);
    // MSB first: bit j flips while the lower bits still hold their
    // original values, exactly when all of them are 1.
    for j in 0..n {
        let controls: Vec<u32> = (j + 1..n).collect();
        if controls.is_empty() {
            c.push(Gate::x(j));
        } else {
            c.push(Gate::mcx(&controls, j));
        }
    }
    c
}

/// Draper's QFT adder: `|x> -> |x + a mod 2^n>` on `n` qubits (qubit 0 is
/// the most significant bit), as QFT, per-qubit phase kicks encoding `a`,
/// inverse QFT. Uses only `h` / `cp` / `phase` — fully DSL-expressible,
/// unlike the ripple-carry cascade it is tested against.
///
/// Initial subspace `span{|0...0>}`; iterating the addition walks the
/// whole `2^n`-element cycle, so the reachable subspace is the full space
/// when `a` is odd.
pub fn qft_adder(n: u32, a: u64) -> QtsSpec {
    assert!((1..=63).contains(&n), "adder supports 1..=63 qubits");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::h(i));
        for j in i + 1..n {
            let theta = std::f64::consts::PI / f64::from(1u32 << (j - i));
            c.push(Gate::cp(j, i, theta));
        }
    }
    // In the Fourier basis qubit i carries e^{2 pi i x / 2^(n-i)}; adding
    // `a` is a plain phase on each qubit.
    for i in 0..n {
        let modulus = 1u64 << (n - i);
        let theta = 2.0 * std::f64::consts::PI * (a % modulus) as f64 / modulus as f64;
        c.push(Gate::phase(i, theta));
    }
    for i in (0..n).rev() {
        for j in (i + 1..n).rev() {
            let theta = -std::f64::consts::PI / f64::from(1u32 << (j - i));
            c.push(Gate::cp(j, i, theta));
        }
        c.push(Gate::h(i));
    }
    let mut spec = QtsSpec::named(format!("Adder{n}"), n);
    spec.operations.push(Operation::from_circuit("add", &c));
    spec.initial_states.push(vec![states::ZERO; n as usize]);
    spec
}

/// The minimum-weight error pattern (bit `i` = flip on data qubit `i`)
/// whose repetition-code syndrome (`s_i = e_i xor e_{i+1}`) is `s`.
fn repetition_decode(s: u32, d: u32) -> u32 {
    let mut best = 0u32;
    let mut best_weight = u32::MAX;
    for e in 0..(1u32 << d) {
        let mut syn = 0u32;
        for i in 0..d - 1 {
            syn |= (((e >> i) & 1) ^ ((e >> (i + 1)) & 1)) << i;
        }
        if syn == s && e.count_ones() < best_weight {
            best = e;
            best_weight = e.count_ones();
        }
    }
    best
}

/// The distance-`d` repetition code as a dynamic circuit: `d` data qubits
/// (0..d-1) and `d-1` syndrome ancillas (d..2d-2) measuring the
/// stabilizers `Z_i Z_{i+1}`. One operation `T_s` per syndrome `s`:
/// CX syndrome extraction, projection of the ancillas onto `|s>`,
/// minimum-weight X corrections on the data, and X resets returning the
/// ancillas to `|0>`. `repetition_code(5)` is the 5-qubit instance the
/// evaluation uses — it corrects every weight-(d-1)/2 error.
///
/// Initial subspace: the `d` single-error states
/// `span{|10...0>, |010...0>, ...} (x) |0...0>`; every image collapses to
/// the all-zeros codeword.
pub fn repetition_code(d: u32) -> QtsSpec {
    assert!(
        (2..=16).contains(&d),
        "repetition code supports 2..=16 data qubits"
    );
    let n = 2 * d - 1;
    let mut spec = QtsSpec::named(format!("RepCode{d}"), n);
    for s in 0..(1u32 << (d - 1)) {
        let mut c = Circuit::new(n);
        for i in 0..d - 1 {
            c.push(Gate::cx(i, d + i));
            c.push(Gate::cx(i + 1, d + i));
        }
        let bits: Vec<bool> = (0..d - 1).map(|i| (s >> i) & 1 == 1).collect();
        let mut op = Operation::from_circuit(format!("T{s:0w$b}", w = (d - 1) as usize), &c).then(
            Element::Projector {
                qubits: (d..n).collect(),
                bits: bits.clone(),
            },
        );
        let fix = repetition_decode(s, d);
        for i in 0..d {
            if (fix >> i) & 1 == 1 {
                op = op.then_gate(Gate::x(i));
            }
        }
        // Reset the measured ancillas so every outcome ends at |0...0>.
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                op = op.then_gate(Gate::x(d + i as u32));
            }
        }
        spec.operations.push(op);
    }
    for e in 0..d as usize {
        let mut state = vec![states::ZERO; n as usize];
        state[e] = states::ONE;
        spec.initial_states.push(state);
    }
    spec
}

/// A reproducible random Clifford+T workload: `depth` gates drawn from
/// `{H, S, T, CX}` by a splitmix64 stream seeded with `seed`, followed —
/// when `p > 0` — by a bit-flip channel with probability `p` on a
/// stream-chosen qubit. Uses only DSL-expressible gates. Initial subspace
/// `span{|0...0>}`.
pub fn random_clifford_t(n: u32, depth: u32, p: f64, seed: u64) -> QtsSpec {
    assert!(n >= 2, "Clifford+T sampler needs at least 2 qubits");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(seed.wrapping_add(1));
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut pick = move |m: u32| (next() % u64::from(m)) as u32;
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        match pick(4) {
            0 => c.push(Gate::h(pick(n))),
            1 => c.push(Gate::single(GateKind::S, pick(n))),
            2 => c.push(Gate::single(GateKind::T, pick(n))),
            _ => {
                let a = pick(n);
                let mut b = pick(n - 1);
                if b >= a {
                    b += 1;
                }
                c.push(Gate::cx(a, b));
            }
        }
    }
    let mut op = Operation::from_circuit("ct", &c);
    if p > 0.0 {
        op = op.then(bit_flip_channel(pick(n), p));
    }
    let mut spec = QtsSpec::named(format!("CliffordT{n}"), n);
    spec.operations.push(op);
    spec.initial_states.push(vec![states::ZERO; n as usize]);
    spec
}

/// The shift stage of the quantum walk: decrement the position register
/// when the coin (qubit 0) is `|0>`, increment when it is `|1>` —
/// `S = S_0 (+) S_1` of Section III-A.3, realised as two multi-controlled-X
/// cascades (Fig. 4).
fn walk_shift(c: &mut Circuit, n: u32) {
    let k = n - 1; // position bits, qubit 1 (MSB) .. qubit n-1 (LSB)
    let pos = |j: u32| 1 + j;
    // Decrement, negatively controlled on the coin. A decrementer is the
    // inverse of the incrementer below: LSB first.
    for j in (0..k).rev() {
        let mut controls: Vec<(u32, bool)> = vec![(0, false)];
        controls.extend((j + 1..k).map(|b| (pos(b), true)));
        c.push(Gate::mcx_polarity(&controls, pos(j)));
    }
    // Increment, positively controlled on the coin: MSB first, each bit
    // flips when all lower bits are 1.
    for j in 0..k {
        let mut controls: Vec<(u32, bool)> = vec![(0, true)];
        controls.extend((j + 1..k).map(|b| (pos(b), true)));
        c.push(Gate::mcx_polarity(&controls, pos(j)));
    }
}

/// Quantum random walk on a cycle of length `2^(n-1)` with a Hadamard coin
/// on qubit 0 (Fig. 4). Two operations, as in Section III-A.3:
///
/// * `T1 = S . (E_c (x) I)` — coin then shift, noiseless;
/// * `T2 = S . (E_b (x) I) . (E_c (x) I)` — a bit-flip error with
///   probability `p` strikes the coin after the coin toss (two Kraus
///   operators).
///
/// Initial subspace `span{|0>|0...0>}`.
pub fn qrw(n: u32, p: f64) -> QtsSpec {
    assert!(n >= 2, "QRW needs a coin and at least 1 position qubit");
    let mut noiseless = Circuit::new(n);
    noiseless.push(Gate::h(0));
    walk_shift(&mut noiseless, n);
    let t1 = Operation::from_circuit("walk", &noiseless);

    let mut t2 = Operation::new("walk-noisy", n).then_gate(Gate::h(0));
    t2 = t2.then(bit_flip_channel(0, p));
    let mut shift_only = Circuit::new(n);
    walk_shift(&mut shift_only, n);
    for g in shift_only.gates() {
        t2 = t2.then_gate(g.clone());
    }

    let mut spec = QtsSpec::named(format!("QRW{n}"), n);
    spec.operations.push(t1);
    spec.operations.push(t2);
    spec.initial_states.push(vec![states::ZERO; n as usize]);
    spec
}

/// The dynamic bit-flip-code correction circuit of Fig. 3: 3 data qubits
/// (0..2), 3 syndrome ancillas (3..5). Four operations `T_s`, one per
/// measurement outcome `s` in `{000, 101, 110, 011}`, each of the form
/// `(correction (x) |s><s|) U` with `U` the 6-CX syndrome extraction.
///
/// Initial subspace `span{|100>, |010>, |001>} (x) |000>`: one bit-flip
/// error somewhere; the image collapses the data to `|000>`.
pub fn bitflip_code() -> QtsSpec {
    let n = 6u32;
    let syndrome = |c: &mut Circuit| {
        // a0 (qubit 3) checks Z0 Z1; a1 (4) checks Z1 Z2; a2 (5) checks Z0 Z2.
        c.push(Gate::cx(0, 3));
        c.push(Gate::cx(1, 3));
        c.push(Gate::cx(1, 4));
        c.push(Gate::cx(2, 4));
        c.push(Gate::cx(0, 5));
        c.push(Gate::cx(2, 5));
    };
    // outcome bits (a0,a1,a2) -> corrected data qubit (None = no error)
    let cases: [([bool; 3], Option<u32>); 4] = [
        ([false, false, false], None),
        ([true, false, true], Some(0)),
        ([true, true, false], Some(1)),
        ([false, true, true], Some(2)),
    ];
    let mut spec = QtsSpec::named("BitFlipCode", n);
    for (bits, fix) in cases {
        let mut c = Circuit::new(n);
        syndrome(&mut c);
        let label = format!(
            "T{}{}{}",
            u8::from(bits[0]),
            u8::from(bits[1]),
            u8::from(bits[2])
        );
        let mut op = Operation::from_circuit(label, &c).then(Element::Projector {
            qubits: vec![3, 4, 5],
            bits: bits.to_vec(),
        });
        if let Some(q) = fix {
            op = op.then_gate(Gate::x(q));
        }
        spec.operations.push(op);
    }
    for flipped in 0..3usize {
        let mut state = vec![states::ZERO; n as usize];
        state[flipped] = states::ONE;
        spec.initial_states.push(state);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn ghz_prepares_ghz_state() {
        let spec = ghz(3);
        let branches = spec.operations[0].kraus_branches();
        let s = sim::run(&branches[0], &sim::basis_state(3, 0));
        assert!(s[0].approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(s[7].approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!((1..7).all(|i| s[i].is_zero()));
    }

    #[test]
    fn grover3_matches_paper_example() {
        // For S = span{|++->, |11->}: applying the iteration to |++-> must
        // stay inside S (T(S) = S, Section III-A.1).
        let spec = grover(3);
        let branch = &spec.operations[0].kraus_branches()[0];
        let input = sim::product_state(&[states::PLUS, states::PLUS, states::MINUS]);
        let out = sim::run(branch, &input);
        // The Grover iterate of |++-> is  (1/2)(|00>+|01>+|10>)|-> - (1/2)|11>|->
        // which lies in span{|++->, |11->}.
        let b1 = sim::product_state(&[states::PLUS, states::PLUS, states::MINUS]);
        let b2 = sim::product_state(&[states::ONE, states::ONE, states::MINUS]);
        let basis = qits_num::linalg::gram_schmidt(&[b1, b2]);
        assert!(qits_num::linalg::in_span(&basis, &out));
    }

    #[test]
    fn grover3_amplifies_marked_state() {
        // One iteration on 2 search qubits finds |11> exactly.
        let spec = grover(3);
        let branch = &spec.operations[0].kraus_branches()[0];
        let input = sim::product_state(&[states::PLUS, states::PLUS, states::MINUS]);
        let out = sim::run(branch, &input);
        // |11>|-> = (|110> - |111>)/sqrt(2) at indices 6, 7.
        assert!((out[6].norm_sqr() - 0.5).abs() < 1e-10);
        assert!((out[7].norm_sqr() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn bv_recovers_secret() {
        let secret = [true, false, true];
        let spec = bernstein_vazirani(4, &secret);
        let branch = &spec.operations[0].kraus_branches()[0];
        let mut init = vec![states::ZERO; 3];
        init.push(states::ONE);
        let out = sim::run(branch, &sim::product_state(&init));
        // Data register should read the secret |101>, ancilla |->.
        // |101>|-> = (|1010> - |1011>)/sqrt(2): indices 10 and 11.
        assert!((out[10].norm_sqr() - 0.5).abs() < 1e-10);
        assert!((out[11].norm_sqr() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn bv_secret_deterministic() {
        assert_eq!(bv_secret(10), bv_secret(10));
        assert_eq!(bv_secret(10).len(), 9);
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let spec = qft(3);
        let branch = &spec.operations[0].kraus_branches()[0];
        let out = sim::run(branch, &sim::basis_state(3, 0));
        for amp in &out {
            assert!((amp.norm_sqr() - 0.125).abs() < 1e-10);
        }
    }

    #[test]
    fn qft_with_swaps_matches_dft_matrix() {
        let n = 3u32;
        let spec = qft_with_swaps(n);
        let m = sim::circuit_matrix(&spec.operations[0].kraus_branches()[0]);
        let dim = 1usize << n;
        let omega = 2.0 * std::f64::consts::PI / dim as f64;
        let scale = 1.0 / (dim as f64).sqrt();
        for r in 0..dim {
            for c in 0..dim {
                let expect = Cplx::from_polar(scale, omega * (r * c) as f64);
                assert!(
                    m[(r, c)].approx_eq_with(expect, 1e-9),
                    "DFT mismatch at ({r},{c}): {} vs {expect}",
                    m[(r, c)]
                );
            }
        }
    }

    #[test]
    fn walk_shift_moves_position() {
        // Coin |0>: position decrements mod 8; coin |1>: increments.
        let spec = qrw(4, 0.1);
        let mut shift = Circuit::new(4);
        walk_shift(&mut shift, 4);
        for posn in 0..8usize {
            let dn = sim::run(&shift, &sim::basis_state(4, posn));
            let down = (posn + 7) % 8;
            assert!(dn[down].approx_eq(Cplx::ONE), "decrement of {posn}");
            let up_in = 8 + posn; // coin = 1
            let upv = sim::run(&shift, &sim::basis_state(4, up_in));
            let up = 8 + (posn + 1) % 8;
            assert!(upv[up].approx_eq(Cplx::ONE), "increment of {posn}");
        }
        assert_eq!(spec.operations.len(), 2);
    }

    #[test]
    fn qrw_t2_has_two_kraus_branches() {
        let spec = qrw(4, 0.25);
        assert_eq!(spec.operations[1].branch_count(), 2);
        // Completeness: sum E†E = I over the noisy operation.
        let ks = sim::operation_kraus_matrices(&spec.operations[1]);
        let sum = ks
            .iter()
            .map(|k| k.adjoint().matmul(k))
            .fold(Mat::zeros(16), |a, b| a.add(&b));
        assert!(sum.approx_eq(&Mat::identity(16)));
    }

    #[test]
    fn bitflip_code_corrects_each_single_error() {
        let spec = bitflip_code();
        // For data error on qubit e, exactly one T_s fires and corrects it.
        for e in 0..3u32 {
            let idx = 1usize << (5 - e); // |e flipped> (x) |000>
            let mut total_norm = 0.0;
            for op in &spec.operations {
                let branch = &op.kraus_branches()[0];
                let out = sim::run(branch, &sim::basis_state(6, idx));
                let norm: f64 = out.iter().map(|a| a.norm_sqr()).sum();
                if norm > 1e-9 {
                    // The surviving branch must have data |000>.
                    for (j, amp) in out.iter().enumerate() {
                        if !amp.is_zero() {
                            assert_eq!(j >> 3, 0, "data not corrected for error {e}");
                        }
                    }
                }
                total_norm += norm;
            }
            assert!((total_norm - 1.0).abs() < 1e-9, "outcomes must partition");
        }
    }

    #[test]
    fn spec_names_include_size() {
        assert_eq!(ghz(100).name, "GHZ100");
        assert_eq!(qrw(20, 0.1).name, "QRW20");
        assert_eq!(qft_adder(5, 3).name, "Adder5");
        assert_eq!(repetition_code(5).name, "RepCode5");
        assert_eq!(random_clifford_t(4, 12, 0.1, 7).name, "CliffordT4");
    }

    #[test]
    fn qft_adder_matches_ripple_carry_increment() {
        for n in 1..=4u32 {
            let adder = sim::circuit_matrix(&qft_adder(n, 1).operations[0].kraus_branches()[0]);
            let ripple = sim::circuit_matrix(&ripple_increment(n));
            assert!(adder.approx_eq(&ripple), "n = {n}");
        }
    }

    #[test]
    fn qft_adder_adds_mod_2n() {
        let n = 3u32;
        let a = 5u64;
        let m = sim::circuit_matrix(&qft_adder(n, a).operations[0].kraus_branches()[0]);
        let dim = 1usize << n;
        for x in 0..dim {
            let want = (x + a as usize) % dim;
            for r in 0..dim {
                let expect = if r == want { 1.0 } else { 0.0 };
                assert!(
                    (m[(r, x)].norm_sqr() - expect).abs() < 1e-9,
                    "column {x}, row {r}"
                );
            }
        }
    }

    #[test]
    fn repetition_code_corrects_up_to_two_errors() {
        let d = 5u32;
        let spec = repetition_code(d);
        assert_eq!(spec.operations.len(), 16);
        let n = 2 * d - 1;
        // Every error of weight <= 2 on the data register: exactly one T_s
        // fires and restores |0...0>.
        let mut patterns: Vec<u32> = vec![0];
        patterns.extend((0..d).map(|i| 1u32 << i));
        for i in 0..d {
            for j in i + 1..d {
                patterns.push((1 << i) | (1 << j));
            }
        }
        for e in patterns {
            // Data qubit i is bit (n-1-i) of the basis index (qubit 0 MSB).
            let idx: usize = (0..d)
                .filter(|i| (e >> i) & 1 == 1)
                .map(|i| 1usize << (n - 1 - i))
                .sum();
            let mut survivors = 0;
            for op in &spec.operations {
                let out = sim::run(&op.kraus_branches()[0], &sim::basis_state(n, idx));
                let norm: f64 = out.iter().map(|a| a.norm_sqr()).sum();
                if norm > 1e-9 {
                    survivors += 1;
                    assert!(out[0].approx_eq(Cplx::ONE), "error {e:05b} not corrected");
                }
            }
            assert_eq!(survivors, 1, "error {e:05b}");
        }
    }

    #[test]
    fn random_clifford_t_is_deterministic_and_trace_preserving() {
        let a = random_clifford_t(4, 12, 0.125, 42);
        let b = random_clifford_t(4, 12, 0.125, 42);
        assert_eq!(a.operations[0].elements(), b.operations[0].elements());
        let c = random_clifford_t(4, 12, 0.125, 43);
        assert_ne!(a.operations[0].elements(), c.operations[0].elements());
        // With noise: two Kraus branches, completeness sum E†E = I.
        assert_eq!(a.operations[0].branch_count(), 2);
        let ks = sim::operation_kraus_matrices(&a.operations[0]);
        let sum = ks
            .iter()
            .map(|k| k.adjoint().matmul(k))
            .fold(Mat::zeros(16), |acc, m| acc.add(&m));
        assert!(sum.approx_eq(&Mat::identity(16)));
        // Noiseless: a single unitary branch.
        assert_eq!(
            random_clifford_t(3, 9, 0.0, 1).operations[0].branch_count(),
            1
        );
    }

    #[test]
    fn new_channels_are_trace_preserving() {
        for e in [
            phase_flip_channel(0, 0.25),
            depolarizing_channel(0, 0.3),
            bit_flip_channel(0, 0.125),
        ] {
            let Element::Channel { kraus, .. } = &e else {
                panic!("not a channel")
            };
            let sum = kraus
                .iter()
                .map(|k| k.adjoint().matmul(k))
                .fold(Mat::zeros(2), |acc, m| acc.add(&m));
            assert!(sum.approx_eq(&Mat::identity(2)));
        }
    }
}
