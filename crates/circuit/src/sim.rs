//! Dense state-vector reference semantics.
//!
//! Exponential in qubit count by construction; used as an independent
//! oracle for the symbolic pipeline on small registers, and to realise
//! gate matrices for the tensorizer's 1–2 qubit bases.
//!
//! Convention: qubit 0 is the **most significant bit** of a basis index,
//! matching the variable order of `qits-tensor`.

use qits_num::{Cplx, Mat};

use crate::circuit::Circuit;
use crate::element::Operation;
use crate::gate::Gate;

/// The computational basis state `|index>` on `n` qubits.
///
/// # Panics
///
/// Panics if `index >= 2^n`.
pub fn basis_state(n: u32, index: usize) -> Vec<Cplx> {
    let dim = 1usize << n;
    assert!(index < dim, "basis index out of range");
    let mut v = vec![Cplx::ZERO; dim];
    v[index] = Cplx::ONE;
    v
}

/// The product state with qubit `i` in `amps[i].0 |0> + amps[i].1 |1>`.
pub fn product_state(amps: &[(Cplx, Cplx)]) -> Vec<Cplx> {
    let n = amps.len();
    let mut v = vec![Cplx::ONE; 1];
    for &(a, b) in amps {
        let mut next = Vec::with_capacity(v.len() * 2);
        for x in &v {
            next.push(*x * a);
        }
        for x in &v {
            next.push(*x * b);
        }
        // The loop above appends the |1> half after the |0> half for the
        // *new* qubit as least significant; rebuild in MSB-first order
        // instead by interleaving.
        let mut inter = vec![Cplx::ZERO; next.len()];
        let half = v.len();
        for i in 0..half {
            inter[2 * i] = next[i]; // bit 0 of new qubit
            inter[2 * i + 1] = next[half + i];
        }
        v = inter;
    }
    debug_assert_eq!(v.len(), 1 << n);
    v
}

#[inline]
fn bit_of(index: usize, n: u32, qubit: u32) -> usize {
    (index >> (n - 1 - qubit)) & 1
}

/// Applies `gate` to `state` (length `2^n`), returning the new state.
///
/// Handles arbitrary controls and non-unitary bases.
///
/// # Panics
///
/// Panics if the state length is not `2^n` or the gate exceeds the
/// register.
pub fn apply_gate(state: &[Cplx], n: u32, gate: &Gate) -> Vec<Cplx> {
    let dim = 1usize << n;
    assert_eq!(state.len(), dim, "state length must be 2^n");
    assert!(gate.max_qubit() < n, "gate exceeds register");
    let base = gate.kind.matrix();
    let k = gate.targets.len();
    let mut out = vec![Cplx::ZERO; dim];
    for (i, &amp) in state.iter().enumerate() {
        if amp.is_zero() {
            continue;
        }
        let active = gate
            .controls
            .iter()
            .all(|c| (bit_of(i, n, c.qubit) == 1) == c.value);
        if !active {
            out[i] += amp;
            continue;
        }
        // Column index of the base matrix from the target bits.
        let mut col = 0usize;
        for (b, &t) in gate.targets.iter().enumerate() {
            col |= bit_of(i, n, t) << (k - 1 - b);
        }
        for row in 0..base.dim() {
            let w = base[(row, col)];
            if w.is_zero() {
                continue;
            }
            // Scatter into the index with target bits replaced by `row`.
            let mut j = i;
            for (b, &t) in gate.targets.iter().enumerate() {
                let bit = (row >> (k - 1 - b)) & 1;
                let mask = 1usize << (n - 1 - t);
                if bit == 1 {
                    j |= mask;
                } else {
                    j &= !mask;
                }
            }
            out[j] += w * amp;
        }
    }
    out
}

/// Runs a circuit on a state.
pub fn run(circuit: &Circuit, state: &[Cplx]) -> Vec<Cplx> {
    let mut s = state.to_vec();
    for g in circuit.gates() {
        s = apply_gate(&s, circuit.n_qubits(), g);
    }
    s
}

/// The full `2^n x 2^n` matrix of a circuit (exponential; small `n` only).
pub fn circuit_matrix(circuit: &Circuit) -> Mat {
    let n = circuit.n_qubits();
    let dim = 1usize << n;
    let mut m = Mat::zeros(dim);
    for col in 0..dim {
        let out = run(circuit, &basis_state(n, col));
        for (row, v) in out.iter().enumerate() {
            m[(row, col)] = *v;
        }
    }
    m
}

/// The dense Kraus operators of an operation (small `n` only).
pub fn operation_kraus_matrices(op: &Operation) -> Vec<Mat> {
    op.kraus_branches().iter().map(circuit_matrix).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn c(x: f64) -> Cplx {
        Cplx::real(x)
    }

    #[test]
    fn x_flips_msb_qubit() {
        // Qubit 0 is the MSB: X on qubit 0 of |00> gives |10> = index 2.
        let s = apply_gate(&basis_state(2, 0), 2, &Gate::x(0));
        assert!(s[2].approx_eq(Cplx::ONE));
    }

    #[test]
    fn cx_respects_control() {
        let s = apply_gate(&basis_state(2, 0), 2, &Gate::cx(0, 1));
        assert!(s[0].approx_eq(Cplx::ONE)); // control 0: no-op
        let s = apply_gate(&basis_state(2, 2), 2, &Gate::cx(0, 1));
        assert!(s[3].approx_eq(Cplx::ONE)); // |10> -> |11>
    }

    #[test]
    fn negative_control_fires_on_zero() {
        let g = Gate::mcx_polarity(&[(0, false)], 1);
        let s = apply_gate(&basis_state(2, 0), 2, &g);
        assert!(s[1].approx_eq(Cplx::ONE)); // |00> -> |01>
        let s = apply_gate(&basis_state(2, 2), 2, &g);
        assert!(s[2].approx_eq(Cplx::ONE)); // |10> unchanged
    }

    #[test]
    fn bell_circuit() {
        let mut cct = Circuit::new(2);
        cct.push(Gate::h(0));
        cct.push(Gate::cx(0, 1));
        let s = run(&cct, &basis_state(2, 0));
        assert!(s[0].approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(s[3].approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(s[1].is_zero() && s[2].is_zero());
    }

    #[test]
    fn swap_exchanges_qubits() {
        let s = apply_gate(&basis_state(2, 1), 2, &Gate::swap(0, 1));
        assert!(s[2].approx_eq(Cplx::ONE)); // |01> -> |10>
    }

    #[test]
    fn product_state_layout() {
        // Qubit 0 = |1>, qubit 1 = |+>: amplitudes on |10> and |11>.
        let s = product_state(&[
            (Cplx::ZERO, Cplx::ONE),
            (Cplx::FRAC_1_SQRT_2, Cplx::FRAC_1_SQRT_2),
        ]);
        assert!(s[0].is_zero() && s[1].is_zero());
        assert!(s[2].approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(s[3].approx_eq(Cplx::FRAC_1_SQRT_2));
    }

    #[test]
    fn circuit_matrix_of_h_is_h() {
        let mut cct = Circuit::new(1);
        cct.push(Gate::h(0));
        assert!(circuit_matrix(&cct).approx_eq(&GateKind::H.matrix()));
    }

    #[test]
    fn ccx_truth_table() {
        let g = Gate::ccx(0, 1, 2);
        for i in 0..8usize {
            let s = apply_gate(&basis_state(3, i), 3, &g);
            let expect = if i >> 1 == 0b11 { i ^ 1 } else { i };
            assert!(s[expect].approx_eq(Cplx::ONE), "input {i}");
        }
    }

    #[test]
    fn projector_zeroes_other_branch() {
        let s = product_state(&[(c(0.6), c(0.8))]);
        let p1 = apply_gate(&s, 1, &Gate::projector(0, true));
        assert!(p1[0].is_zero());
        assert!(p1[1].approx_eq(c(0.8)));
    }

    #[test]
    fn kraus_matrices_of_noise_op_are_complete() {
        use crate::element::Element;
        let p: f64 = 0.25;
        let op = Operation::new("n", 1).then(Element::Channel {
            qubit: 0,
            kraus: vec![
                Mat::identity(2).scale(c((1.0 - p).sqrt())),
                GateKind::X.matrix().scale(c(p.sqrt())),
            ],
            label: "flip".into(),
        });
        let ks = operation_kraus_matrices(&op);
        // Sum E†E = I (trace preserving).
        let sum = ks
            .iter()
            .map(|k| k.adjoint().matmul(k))
            .fold(Mat::zeros(2), |a, b| a.add(&b));
        assert!(sum.approx_eq(&Mat::identity(2)));
    }
}
