//! ASCII circuit rendering, for the figure-reproduction examples
//! (Figs. 2–4 of the paper show circuit diagrams).

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Renders a circuit as ASCII art, one column per gate.
///
/// Conventions: `●` positive control, `○` negative control, `│` connector,
/// boxed mnemonic on targets; diagonal gates are marked with `*` after the
/// mnemonic (they share one tensor index per wire).
///
/// # Example
///
/// ```
/// use qits_circuit::{Circuit, Gate, render};
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(0));
/// c.push(Gate::cx(0, 1));
/// let art = render::ascii(&c);
/// assert!(art.contains('●'));
/// ```
pub fn ascii(circuit: &Circuit) -> String {
    let n = circuit.n_qubits() as usize;
    // Each wire is a row of cell strings; each gate contributes one column.
    let mut rows: Vec<String> = (0..n).map(|q| format!("q{q:<3}")).collect();
    for g in circuit.gates() {
        let mnem = {
            let m = g.kind.mnemonic();
            if g.is_diagonal() && !matches!(g.kind, GateKind::Custom1(_)) {
                format!("{m}*")
            } else {
                m
            }
        };
        let width = mnem.chars().count().max(1) + 2;
        let touched_min = g.qubits().min().expect("gates touch a qubit") as usize;
        let touched_max = g.max_qubit() as usize;
        for (q, row) in rows.iter_mut().enumerate() {
            let q32 = q as u32;
            let cell: String = if g.targets.contains(&q32) {
                center(&mnem, width)
            } else if let Some(c) = g.controls.iter().find(|c| c.qubit == q32) {
                center(if c.value { "●" } else { "○" }, width)
            } else if q > touched_min && q < touched_max {
                center("│", width)
            } else {
                "─".repeat(width)
            };
            row.push('─');
            row.push_str(&cell);
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push_str(&row);
        out.push_str("─\n");
    }
    out
}

fn center(s: &str, width: usize) -> String {
    let len = s.chars().count();
    if len >= width {
        return s.to_string();
    }
    let left = (width - len) / 2;
    let right = width - len - left;
    format!("{}{}{}", "─".repeat(left), s, "─".repeat(right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn renders_all_wires() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::ccx(0, 2, 1));
        let art = ascii(&c);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('H'));
        assert!(art.contains('●'));
    }

    #[test]
    fn connector_spans_gap() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 2));
        let art = ascii(&c);
        let middle = art.lines().nth(1).unwrap();
        assert!(middle.contains('│'));
    }

    #[test]
    fn negative_control_open_dot() {
        let mut c = Circuit::new(2);
        c.push(Gate::mcx_polarity(&[(0, false)], 1));
        assert!(ascii(&c).contains('○'));
    }

    #[test]
    fn diagonal_marked() {
        let mut c = Circuit::new(2);
        c.push(Gate::cp(0, 1, 0.5));
        assert!(ascii(&c).contains('*'));
    }
}
