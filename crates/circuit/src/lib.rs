//! Quantum circuits for the `qits` workspace.
//!
//! This crate provides everything between "a quantum algorithm" and "a
//! tensor network": the gate and circuit IR, the three circuit classes the
//! paper models as quantum transition systems (combinational, dynamic, and
//! noisy circuits — Section III-A), the benchmark generators of the
//! evaluation section, and a dense simulator used as an independent oracle
//! in tests.
//!
//! * [`Gate`] / [`GateKind`] — gates with arbitrary positive/negative
//!   controls; diagonal gates are detected so the tensor-network layer can
//!   give them hyper-edge (shared-index) legs.
//! * [`Circuit`] — a gate list on `n` qubits, with an ASCII renderer.
//! * [`Element`] / [`Operation`] — transition-system operations: unitary
//!   gates, projective elements (measurement outcomes of dynamic circuits),
//!   and Kraus noise channels. [`Operation::kraus_branches`] enumerates the
//!   pure Kraus-operator circuits the image computation iterates over.
//! * [`generators`] — GHZ, Grover, Bernstein–Vazirani, QFT, QFT adder,
//!   quantum random walk, the bit-flip code of Fig. 3, the distance-d
//!   repetition code, and random Clifford+T workloads.
//! * [`parse`] — the textual frontends: the gate DSL shared with
//!   `qits-serve` and the scenario file format the `qits` CLI reads; every
//!   malformed input is a typed [`parse::ParseError`], never a panic.
//! * [`tensorize`] — gate → TDD construction, folding controls
//!   symbolically so a 99-control Toffoli never materialises a matrix.
//! * [`sim`] — dense state-vector/operator reference semantics.
//!
//! # Example
//!
//! ```
//! use qits_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::h(0));
//! c.push(Gate::cx(0, 1));
//! let state = qits_circuit::sim::run(&c, &qits_circuit::sim::basis_state(2, 0));
//! assert!((state[0].norm_sqr() - 0.5).abs() < 1e-12); // Bell state
//! ```

mod circuit;
pub mod decompose;
mod element;
mod gate;
pub mod generators;
pub mod parse;
pub mod render;
pub mod sim;
pub mod tensorize;

pub use circuit::Circuit;
pub use element::{Element, Operation};
pub use gate::{Control, Gate, GateKind};
pub use generators::QtsSpec;
