//! Gates: base operations plus positive/negative controls.

use std::fmt;

use qits_num::{Cplx, Mat};

/// A control condition on a qubit.
///
/// `value = true` is the usual "filled dot" control (active on |1>);
/// `value = false` is a negative control (active on |0>), drawn as an open
/// dot — the quantum-walk shift circuits of Fig. 4 use both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Control {
    /// Controlled qubit.
    pub qubit: u32,
    /// Activation value of the control.
    pub value: bool,
}

/// The base (uncontrolled) operation of a gate.
///
/// Bases act on one or two *target* qubits; any number of controls can be
/// folded around a base via [`Gate`]. Non-unitary bases are deliberately
/// allowed: projective elements of dynamic circuits and individual Kraus
/// operators of noise channels flow through the same representation.
#[derive(Debug, Clone, PartialEq)]
pub enum GateKind {
    /// Single-qubit identity (useful in tests and padding).
    I,
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate `diag(1, e^{i pi/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// `diag(1, e^{i theta})`.
    Phase(f64),
    /// Rotation about X by `theta`.
    Rx(f64),
    /// Rotation about Y by `theta`.
    Ry(f64),
    /// Rotation about Z by `theta` (diagonal, up to global phase convention
    /// `diag(e^{-i theta/2}, e^{i theta/2})`).
    Rz(f64),
    /// Two-qubit swap.
    Swap,
    /// Arbitrary single-qubit matrix (need not be unitary).
    Custom1(Mat),
    /// Arbitrary two-qubit matrix (need not be unitary).
    Custom2(Mat),
}

impl GateKind {
    /// Number of target qubits the base acts on.
    pub fn n_targets(&self) -> usize {
        match self {
            GateKind::Swap | GateKind::Custom2(_) => 2,
            _ => 1,
        }
    }

    /// The dense matrix of the base operation.
    pub fn matrix(&self) -> Mat {
        use GateKind::*;
        let h = Cplx::FRAC_1_SQRT_2;
        match self {
            I => Mat::identity(2),
            H => Mat::from_rows(&[&[h, h], &[h, -h]]),
            X => Mat::from_rows(&[&[Cplx::ZERO, Cplx::ONE], &[Cplx::ONE, Cplx::ZERO]]),
            Y => Mat::from_rows(&[&[Cplx::ZERO, -Cplx::I], &[Cplx::I, Cplx::ZERO]]),
            Z => Mat::diagonal(&[Cplx::ONE, Cplx::NEG_ONE]),
            S => Mat::diagonal(&[Cplx::ONE, Cplx::I]),
            Sdg => Mat::diagonal(&[Cplx::ONE, -Cplx::I]),
            T => Mat::diagonal(&[
                Cplx::ONE,
                Cplx::from_polar(1.0, std::f64::consts::FRAC_PI_4),
            ]),
            Tdg => Mat::diagonal(&[
                Cplx::ONE,
                Cplx::from_polar(1.0, -std::f64::consts::FRAC_PI_4),
            ]),
            Phase(theta) => Mat::diagonal(&[Cplx::ONE, Cplx::from_polar(1.0, *theta)]),
            Rx(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Mat::from_rows(&[
                    &[Cplx::real(c), Cplx::new(0.0, -s)],
                    &[Cplx::new(0.0, -s), Cplx::real(c)],
                ])
            }
            Ry(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Mat::from_rows(&[
                    &[Cplx::real(c), Cplx::real(-s)],
                    &[Cplx::real(s), Cplx::real(c)],
                ])
            }
            Rz(theta) => Mat::diagonal(&[
                Cplx::from_polar(1.0, -theta / 2.0),
                Cplx::from_polar(1.0, theta / 2.0),
            ]),
            Swap => {
                let mut m = Mat::zeros(4);
                m[(0, 0)] = Cplx::ONE;
                m[(1, 2)] = Cplx::ONE;
                m[(2, 1)] = Cplx::ONE;
                m[(3, 3)] = Cplx::ONE;
                m
            }
            Custom1(m) | Custom2(m) => m.clone(),
        }
    }

    /// Whether the base matrix is diagonal.
    ///
    /// Diagonal bases get a *single* tensor-network index per wire (input
    /// and output identified), the hyper-edge convention of Section V-A.
    pub fn is_diagonal(&self) -> bool {
        use GateKind::*;
        match self {
            Z | S | Sdg | T | Tdg | Phase(_) | Rz(_) => true,
            I | H | X | Y | Rx(_) | Ry(_) | Swap => false,
            Custom1(m) | Custom2(m) => m.is_diagonal(),
        }
    }

    /// A short mnemonic for rendering.
    pub fn mnemonic(&self) -> String {
        use GateKind::*;
        match self {
            I => "I".into(),
            H => "H".into(),
            X => "X".into(),
            Y => "Y".into(),
            Z => "Z".into(),
            S => "S".into(),
            Sdg => "S†".into(),
            T => "T".into(),
            Tdg => "T†".into(),
            Phase(t) => format!("P({t:.2})"),
            Rx(t) => format!("Rx({t:.2})"),
            Ry(t) => format!("Ry({t:.2})"),
            Rz(t) => format!("Rz({t:.2})"),
            Swap => "SW".into(),
            Custom1(_) => "U1".into(),
            Custom2(_) => "U2".into(),
        }
    }
}

/// A gate: a base operation on target qubits plus controls.
///
/// # Example
///
/// ```
/// use qits_circuit::Gate;
///
/// let toffoli = Gate::mcx(&[0, 1], 2);
/// assert_eq!(toffoli.controls.len(), 2);
/// assert!(toffoli.qubits().eq([2, 0, 1])); // targets first, then controls
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// The base operation.
    pub kind: GateKind,
    /// Target qubits, in the base matrix's qubit order (first = most
    /// significant bit of the matrix index).
    pub targets: Vec<u32>,
    /// Control conditions; all must hold for the base to apply.
    pub controls: Vec<Control>,
}

impl Gate {
    /// Creates a gate, validating qubit disjointness.
    ///
    /// # Panics
    ///
    /// Panics if target count does not match the base, or any qubit is
    /// repeated among targets and controls.
    pub fn new(kind: GateKind, targets: Vec<u32>, controls: Vec<Control>) -> Gate {
        assert_eq!(
            targets.len(),
            kind.n_targets(),
            "base {} expects {} target(s)",
            kind.mnemonic(),
            kind.n_targets()
        );
        let mut all: Vec<u32> = targets
            .iter()
            .copied()
            .chain(controls.iter().map(|c| c.qubit))
            .collect();
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "gate qubits must be distinct");
        Gate {
            kind,
            targets,
            controls,
        }
    }

    /// Uncontrolled single-qubit gate helper.
    pub fn single(kind: GateKind, q: u32) -> Gate {
        Gate::new(kind, vec![q], vec![])
    }

    /// Hadamard on `q`.
    pub fn h(q: u32) -> Gate {
        Gate::single(GateKind::H, q)
    }

    /// Pauli X on `q`.
    pub fn x(q: u32) -> Gate {
        Gate::single(GateKind::X, q)
    }

    /// Pauli Y on `q`.
    pub fn y(q: u32) -> Gate {
        Gate::single(GateKind::Y, q)
    }

    /// Pauli Z on `q`.
    pub fn z(q: u32) -> Gate {
        Gate::single(GateKind::Z, q)
    }

    /// Phase `diag(1, e^{i theta})` on `q`.
    pub fn phase(q: u32, theta: f64) -> Gate {
        Gate::single(GateKind::Phase(theta), q)
    }

    /// Controlled-X with control `c` and target `t`.
    pub fn cx(c: u32, t: u32) -> Gate {
        Gate::new(
            GateKind::X,
            vec![t],
            vec![Control {
                qubit: c,
                value: true,
            }],
        )
    }

    /// Controlled-Z between `c` and `t`.
    pub fn cz(c: u32, t: u32) -> Gate {
        Gate::new(
            GateKind::Z,
            vec![t],
            vec![Control {
                qubit: c,
                value: true,
            }],
        )
    }

    /// Controlled phase (the QFT workhorse).
    pub fn cp(c: u32, t: u32, theta: f64) -> Gate {
        Gate::new(
            GateKind::Phase(theta),
            vec![t],
            vec![Control {
                qubit: c,
                value: true,
            }],
        )
    }

    /// Toffoli with controls `c1`, `c2` and target `t`.
    pub fn ccx(c1: u32, c2: u32, t: u32) -> Gate {
        Gate::mcx(&[c1, c2], t)
    }

    /// Multi-controlled X (all controls positive).
    pub fn mcx(controls: &[u32], t: u32) -> Gate {
        Gate::new(
            GateKind::X,
            vec![t],
            controls
                .iter()
                .map(|&qubit| Control { qubit, value: true })
                .collect(),
        )
    }

    /// Multi-controlled X with explicit control polarities.
    pub fn mcx_polarity(controls: &[(u32, bool)], t: u32) -> Gate {
        Gate::new(
            GateKind::X,
            vec![t],
            controls
                .iter()
                .map(|&(qubit, value)| Control { qubit, value })
                .collect(),
        )
    }

    /// Swap of two qubits.
    pub fn swap(a: u32, b: u32) -> Gate {
        Gate::new(GateKind::Swap, vec![a, b], vec![])
    }

    /// An arbitrary single-qubit matrix on `q` (need not be unitary).
    pub fn custom1(q: u32, m: Mat) -> Gate {
        assert_eq!(m.dim(), 2, "custom1 requires a 2x2 matrix");
        Gate::single(GateKind::Custom1(m), q)
    }

    /// The single-qubit projector `|b><b|` on `q` — a diagonal, non-unitary
    /// gate used to encode measurement outcomes of dynamic circuits.
    pub fn projector(q: u32, b: bool) -> Gate {
        let diag = if b {
            [Cplx::ZERO, Cplx::ONE]
        } else {
            [Cplx::ONE, Cplx::ZERO]
        };
        Gate::custom1(q, Mat::diagonal(&diag))
    }

    /// All qubits the gate touches (targets then controls).
    pub fn qubits(&self) -> impl Iterator<Item = u32> + '_ {
        self.targets
            .iter()
            .copied()
            .chain(self.controls.iter().map(|c| c.qubit))
    }

    /// The largest qubit index the gate touches.
    pub fn max_qubit(&self) -> u32 {
        self.qubits().max().expect("gates touch at least one qubit")
    }

    /// Whether the base is diagonal (see [`GateKind::is_diagonal`]).
    pub fn is_diagonal(&self) -> bool {
        self.kind.is_diagonal()
    }

    /// Whether the gate acts on more than one qubit (controls included) —
    /// the "multi-qubit gate" notion used by the contraction-partition cut
    /// rule.
    pub fn is_multi_qubit(&self) -> bool {
        self.targets.len() + self.controls.len() > 1
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.mnemonic())?;
        write!(f, " t[")?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")?;
        if !self.controls.is_empty() {
            write!(f, " c[")?;
            for (i, c) in self.controls.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}{}", if c.value { "" } else { "!" }, c.qubit)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gates_are_unitary() {
        use GateKind::*;
        for k in [
            I,
            H,
            X,
            Y,
            Z,
            S,
            Sdg,
            T,
            Tdg,
            Phase(0.3),
            Rx(0.7),
            Ry(1.1),
            Rz(2.3),
            Swap,
        ] {
            assert!(k.matrix().is_unitary(), "{} not unitary", k.mnemonic());
        }
    }

    #[test]
    fn diagonal_detection() {
        assert!(GateKind::Z.is_diagonal());
        assert!(GateKind::Phase(0.5).is_diagonal());
        assert!(GateKind::Rz(0.5).is_diagonal());
        assert!(!GateKind::H.is_diagonal());
        assert!(!GateKind::Swap.is_diagonal());
    }

    #[test]
    fn projector_is_diagonal_not_unitary() {
        let p = Gate::projector(0, true);
        assert!(p.is_diagonal());
        assert!(!p.kind.matrix().is_unitary());
    }

    #[test]
    fn mcx_collects_controls() {
        let g = Gate::mcx(&[0, 1, 2], 3);
        assert_eq!(g.controls.len(), 3);
        assert!(g.is_multi_qubit());
        assert_eq!(g.max_qubit(), 3);
    }

    #[test]
    fn negative_controls() {
        let g = Gate::mcx_polarity(&[(0, false), (1, true)], 2);
        assert!(!g.controls[0].value);
        assert!(g.controls[1].value);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_overlapping_qubits() {
        let _ = Gate::cx(1, 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::cx(0, 1).to_string(), "X t[1] c[0]");
        assert_eq!(
            Gate::mcx_polarity(&[(2, false)], 0).to_string(),
            "X t[0] c[!2]"
        );
    }

    #[test]
    fn s_squared_is_z() {
        let s = GateKind::S.matrix();
        assert!(s.matmul(&s).approx_eq(&GateKind::Z.matrix()));
    }
}
