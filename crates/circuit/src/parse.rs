//! Textual frontends: the gate DSL and the QTS scenario format.
//!
//! This module is the **single** parse layer for every textual surface of
//! the workspace — the `qits-serve` protocol's circuit strings and the
//! `qits` CLI's scenario files both come through here. Every malformed
//! input is a typed [`ParseError`], never a panic: wires are validated
//! (arity, duplicates, register bounds) *before* any [`Gate`] constructor
//! runs, so a client line like `"cx 0 0"` can no longer unwind a serving
//! thread through `Gate::new`'s distinctness assertion.
//!
//! # The gate DSL
//!
//! A circuit is a sequence of gate statements separated by `;` or
//! newlines. Each statement is a gate name followed by whitespace-
//! separated arguments — wires are non-negative integers, angles are
//! radians:
//!
//! | statement | gate |
//! |---|---|
//! | `i q`, `h q`, `x q`, `y q`, `z q` | identity / Hadamard / Paulis |
//! | `s q`, `sdg q`, `t q`, `tdg q` | phase and T gates (and adjoints) |
//! | `phase q theta` | `diag(1, e^{i theta})` |
//! | `rx q theta`, `ry q theta`, `rz q theta` | axis rotations |
//! | `cx c t`, `cz c t`, `cp c t theta` | controlled X / Z / phase |
//! | `ccx c1 c2 t` | Toffoli |
//! | `swap a b` | swap |
//! | `proj q b` | projector `\|b><b\|` (b is 0 or 1) |
//!
//! Multi-wire statements must name distinct wires; extra arguments are
//! refused (a near-miss like `h 0 1` is an error, not a silently dropped
//! wire). [`parse_circuit`] infers the register as one past the highest
//! wire; [`parse_circuit_onto`] pins an explicit width;
//! [`parse_circuit_pair`] puts two circuits on one shared register (the
//! equivalence-job convention).
//!
//! # The scenario format
//!
//! A scenario file declares a whole quantum transition system plus the
//! properties to check, line-oriented with `#` comments:
//!
//! ```text
//! scenario three-qubit-demo
//! qubits 3
//!
//! # A transition: gate lines, noise channels, and projections.
//! op step {
//!   h 0
//!   cx 0 1; cx 1 2
//!   channel bitflip 2 0.125
//!   project 1:0 2:0
//! }
//!
//! # A named pure circuit, usable in equivalence properties.
//! circuit cz_via_h {
//!   h 1; cx 0 1; h 1
//! }
//! circuit cz_direct {
//!   cz 0 1
//! }
//!
//! init 0 0 0          # product state: one token per qubit
//! init + (0.6,0;0.8,0) 1
//!
//! reach 16            # reachability with an iteration bound
//! invariant 16 {      # invariant: the subspace spanned by these states
//!   0 0 0
//!   1 1 1
//! }
//! equivalent cz_via_h cz_direct
//! equivalent cz_via_h cz_direct up_to_phase
//! ```
//!
//! Declarations:
//!
//! | line | meaning |
//! |---|---|
//! | `scenario <name>` | optional display name (rest of line) |
//! | `qubits <n>` | register width; required before any declaration that uses wires |
//! | `op <name> { ... }` | a transition operation: gate statements, `channel <kind> <q> <p>`, `project <q>:<b> ...` |
//! | `circuit <name> { ... }` | a named pure circuit (gate statements only) for `equivalent` |
//! | `init <tok> ...` | an initial product state: `0`, `1`, `+`, `-`, or `(re,im;re,im)` per qubit |
//! | `reach <k>` | a reachability property, iteration bound `k` |
//! | `invariant <k> { ... }` | an invariant property: one product state per block line |
//! | `equivalent <a> <b> [up_to_phase]` | equivalence of two named circuits/pure ops |
//!
//! Channel kinds: `bitflip` (`{sqrt(1-p) I, sqrt(p) X}`), `phaseflip`
//! (`{sqrt(1-p) I, sqrt(p) Z}`), and `depolarize` (the single-qubit
//! depolarizing channel with parameter `p`).
//!
//! [`render_scenario`] writes a [`QtsSpec`] back out in this format (for
//! the generator families built from DSL-expressible gates), so generated
//! workloads round-trip through the parser.

use std::fmt;

use qits_num::Cplx;

use crate::circuit::Circuit;
use crate::element::{Element, Operation};
use crate::gate::{Control, Gate, GateKind};
use crate::generators::{self, QtsSpec};
use crate::tensorize::states;

// ----------------------------------------------------------------------
// Errors.
// ----------------------------------------------------------------------

/// A parse failure, positioned on a 1-based source line when the input
/// was a scenario file (`line == 0` for inline DSL strings).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending input, or 0 when the input was a
    /// single inline DSL string.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The reason a textual input was refused.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A statement named a gate the DSL does not know.
    UnknownGate {
        /// The unrecognised gate name.
        name: String,
    },
    /// A gate statement ended before all its arguments.
    MissingArgument {
        /// The gate name.
        gate: String,
        /// 0-based index of the missing argument.
        index: usize,
    },
    /// A wire argument was not a non-negative integer.
    BadWire {
        /// The gate name.
        gate: String,
        /// The offending token.
        token: String,
    },
    /// An angle argument was not a number.
    BadAngle {
        /// The gate name.
        gate: String,
        /// The offending token.
        token: String,
    },
    /// A projector basis bit was neither 0 nor 1.
    BadBasisBit {
        /// The gate name.
        gate: String,
        /// The offending value.
        bit: u32,
    },
    /// A multi-wire gate named the same wire twice (`cx 0 0`) — the
    /// input that used to unwind through `Gate::new`'s distinctness
    /// assertion.
    DuplicateWire {
        /// The gate name.
        gate: String,
        /// The repeated wire.
        wire: u32,
    },
    /// A gate statement carried more arguments than the gate takes.
    TrailingArgument {
        /// The gate name.
        gate: String,
        /// The first extra token.
        token: String,
    },
    /// A wire fell outside the declared register.
    WireOutOfRange {
        /// The offending wire.
        wire: u32,
        /// The register width it had to fit in.
        width: u32,
    },
    /// The circuit text contained no statements.
    EmptyCircuit,
    /// A scenario-level syntax problem (unknown directive, unterminated
    /// block, missing section, ...).
    Syntax {
        /// Human-readable description.
        detail: String,
    },
    /// A count or size token did not parse as the expected integer.
    BadNumber {
        /// What the number was for (`"qubits"`, `"max iterations"`, ...).
        what: &'static str,
        /// The offending token.
        token: String,
    },
    /// A channel probability fell outside `[0, 1]`.
    BadProbability {
        /// The channel kind.
        channel: String,
        /// The offending value.
        p: f64,
    },
    /// A channel declaration named an unknown kind.
    UnknownChannel {
        /// The unrecognised channel name.
        name: String,
    },
    /// An `init` or invariant state token was unreadable.
    BadStateToken {
        /// The offending token.
        token: String,
    },
    /// A product state had the wrong number of qubit tokens.
    StateWidth {
        /// Tokens found.
        got: usize,
        /// Register width expected.
        want: u32,
    },
    /// An `equivalent` property referenced an undeclared name.
    UnknownOp {
        /// The unresolved name.
        name: String,
    },
    /// Two declarations share a name.
    DuplicateOp {
        /// The repeated name.
        name: String,
    },
    /// An `equivalent` property referenced an op with noise channels,
    /// which has no single-circuit semantics.
    NotACircuit {
        /// The op name.
        op: String,
    },
    /// A declaration that uses wires appeared before `qubits <n>`.
    MissingQubits,
    /// A spec element has no DSL spelling (multi-controlled gates beyond
    /// Toffoli, custom matrices, unrecognised channels) — rendering only.
    Unrenderable {
        /// What could not be rendered.
        detail: String,
    },
}

impl ParseError {
    fn inline(kind: ParseErrorKind) -> ParseError {
        ParseError { line: 0, kind }
    }

    fn at(line: usize, kind: ParseErrorKind) -> ParseError {
        ParseError { line, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.kind)
        } else {
            write!(f, "{}", self.kind)
        }
    }
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ParseErrorKind::*;
        match self {
            UnknownGate { name } => write!(f, "unknown gate '{name}'"),
            MissingArgument { gate, index } => {
                write!(f, "'{gate}' is missing argument {index}")
            }
            BadWire { gate, token } => write!(f, "'{gate}': bad wire '{token}'"),
            BadAngle { gate, token } => write!(f, "'{gate}': bad angle '{token}'"),
            BadBasisBit { gate, bit } => {
                write!(f, "'{gate}': basis bit must be 0 or 1, got {bit}")
            }
            DuplicateWire { gate, wire } => {
                write!(
                    f,
                    "'{gate}': duplicate wire {wire} (wires must be distinct)"
                )
            }
            TrailingArgument { gate, token } => {
                write!(f, "'{gate}': unexpected extra argument '{token}'")
            }
            WireOutOfRange { wire, width } => {
                write!(f, "wire {wire} outside the {width}-qubit register")
            }
            EmptyCircuit => write!(f, "empty circuit"),
            Syntax { detail } => write!(f, "{detail}"),
            BadNumber { what, token } => write!(f, "bad {what} '{token}'"),
            BadProbability { channel, p } => {
                write!(f, "'{channel}': probability {p} outside [0, 1]")
            }
            UnknownChannel { name } => write!(f, "unknown channel '{name}'"),
            BadStateToken { token } => write!(
                f,
                "bad state token '{token}' (expected 0, 1, +, -, or (re,im;re,im))"
            ),
            StateWidth { got, want } => {
                write!(f, "state has {got} qubit token(s), register has {want}")
            }
            UnknownOp { name } => write!(f, "no op or circuit named '{name}'"),
            DuplicateOp { name } => write!(f, "duplicate declaration of '{name}'"),
            NotACircuit { op } => write!(
                f,
                "op '{op}' has noise channels and cannot be compared as a circuit"
            ),
            MissingQubits => write!(f, "'qubits <n>' must be declared first"),
            Unrenderable { detail } => write!(f, "not expressible in the DSL: {detail}"),
        }
    }
}

impl std::error::Error for ParseError {}

// ----------------------------------------------------------------------
// The gate DSL.
// ----------------------------------------------------------------------

/// One validated gate statement: the gate plus the highest wire it names.
struct ParsedGate {
    gate: Gate,
    max_wire: u32,
}

/// Parses a single gate statement (already split on `;`/newlines).
fn parse_statement(stmt: &str) -> Result<ParsedGate, ParseErrorKind> {
    let mut parts = stmt.split_whitespace();
    let name = parts.next().expect("caller skips blank statements");
    let args: Vec<&str> = parts.collect();

    let wire = |i: usize| -> Result<u32, ParseErrorKind> {
        let token = args.get(i).ok_or(ParseErrorKind::MissingArgument {
            gate: name.to_string(),
            index: i,
        })?;
        token.parse::<u32>().map_err(|_| ParseErrorKind::BadWire {
            gate: name.to_string(),
            token: (*token).to_string(),
        })
    };
    let angle = |i: usize| -> Result<f64, ParseErrorKind> {
        let token = args.get(i).ok_or(ParseErrorKind::MissingArgument {
            gate: name.to_string(),
            index: i,
        })?;
        token.parse::<f64>().map_err(|_| ParseErrorKind::BadAngle {
            gate: name.to_string(),
            token: (*token).to_string(),
        })
    };
    let distinct = |wires: &[u32]| -> Result<(), ParseErrorKind> {
        for (i, &w) in wires.iter().enumerate() {
            if wires[..i].contains(&w) {
                return Err(ParseErrorKind::DuplicateWire {
                    gate: name.to_string(),
                    wire: w,
                });
            }
        }
        Ok(())
    };
    let arity = |n: usize| -> Result<(), ParseErrorKind> {
        match args.get(n) {
            Some(extra) => Err(ParseErrorKind::TrailingArgument {
                gate: name.to_string(),
                token: (*extra).to_string(),
            }),
            None => Ok(()),
        }
    };

    let single = |kind: GateKind| -> Result<(Gate, u32), ParseErrorKind> {
        let q = wire(0)?;
        arity(1)?;
        Ok((Gate::single(kind, q), q))
    };
    let rotation = |kind: fn(f64) -> GateKind| -> Result<(Gate, u32), ParseErrorKind> {
        let q = wire(0)?;
        let theta = angle(1)?;
        arity(2)?;
        Ok((Gate::single(kind(theta), q), q))
    };

    let (gate, max_wire) = match name {
        "i" => single(GateKind::I)?,
        "h" => single(GateKind::H)?,
        "x" => single(GateKind::X)?,
        "y" => single(GateKind::Y)?,
        "z" => single(GateKind::Z)?,
        "s" => single(GateKind::S)?,
        "sdg" => single(GateKind::Sdg)?,
        "t" => single(GateKind::T)?,
        "tdg" => single(GateKind::Tdg)?,
        "phase" => rotation(GateKind::Phase)?,
        "rx" => rotation(GateKind::Rx)?,
        "ry" => rotation(GateKind::Ry)?,
        "rz" => rotation(GateKind::Rz)?,
        "cx" | "cz" => {
            let (c, t) = (wire(0)?, wire(1)?);
            arity(2)?;
            distinct(&[c, t])?;
            let gate = if name == "cx" {
                Gate::cx(c, t)
            } else {
                Gate::cz(c, t)
            };
            (gate, c.max(t))
        }
        "cp" => {
            let (c, t) = (wire(0)?, wire(1)?);
            let theta = angle(2)?;
            arity(3)?;
            distinct(&[c, t])?;
            (Gate::cp(c, t, theta), c.max(t))
        }
        "ccx" => {
            let (c1, c2, t) = (wire(0)?, wire(1)?, wire(2)?);
            arity(3)?;
            distinct(&[c1, c2, t])?;
            (Gate::ccx(c1, c2, t), c1.max(c2).max(t))
        }
        "swap" => {
            let (a, b) = (wire(0)?, wire(1)?);
            arity(2)?;
            distinct(&[a, b])?;
            (Gate::swap(a, b), a.max(b))
        }
        "proj" => {
            let q = wire(0)?;
            let b = wire(1)?;
            arity(2)?;
            if b > 1 {
                return Err(ParseErrorKind::BadBasisBit {
                    gate: name.to_string(),
                    bit: b,
                });
            }
            (Gate::projector(q, b == 1), q)
        }
        other => {
            return Err(ParseErrorKind::UnknownGate {
                name: other.to_string(),
            })
        }
    };
    Ok(ParsedGate { gate, max_wire })
}

/// Parses `;`/newline-separated gate statements, with no register bound.
fn parse_statements(text: &str) -> Result<Vec<ParsedGate>, ParseError> {
    let mut gates = Vec::new();
    for stmt in text.split([';', '\n']) {
        if stmt.trim().is_empty() {
            continue;
        }
        gates.push(parse_statement(stmt).map_err(ParseError::inline)?);
    }
    Ok(gates)
}

/// Parses the gate DSL into a [`Circuit`] whose register is one past the
/// highest wire mentioned. Empty input is [`ParseErrorKind::EmptyCircuit`].
pub fn parse_circuit(text: &str) -> Result<Circuit, ParseError> {
    let gates = parse_statements(text)?;
    let width = gates.iter().map(|g| g.max_wire).max().map(|w| w + 1);
    let width = width.ok_or_else(|| ParseError::inline(ParseErrorKind::EmptyCircuit))?;
    let mut circuit = Circuit::new(width);
    for g in gates {
        circuit.push(g.gate);
    }
    Ok(circuit)
}

/// Parses the gate DSL onto an explicit `width`-qubit register; a wire at
/// or past `width` is [`ParseErrorKind::WireOutOfRange`].
pub fn parse_circuit_onto(text: &str, width: u32) -> Result<Circuit, ParseError> {
    let gates = parse_statements(text)?;
    if gates.is_empty() {
        return Err(ParseError::inline(ParseErrorKind::EmptyCircuit));
    }
    let mut circuit = Circuit::new(width);
    for g in gates {
        if g.max_wire >= width {
            return Err(ParseError::inline(ParseErrorKind::WireOutOfRange {
                wire: g.max_wire,
                width,
            }));
        }
        circuit.push(g.gate);
    }
    Ok(circuit)
}

/// Parses two circuits onto one shared register — the wider of the two —
/// so an equivalence query like `"h 0"` vs `"h 0; z 1"` compares the
/// operators on the register the user clearly meant, instead of failing
/// with a width mismatch.
pub fn parse_circuit_pair(a: &str, b: &str) -> Result<(Circuit, Circuit), ParseError> {
    let ga = parse_statements(a)?;
    let gb = parse_statements(b)?;
    let widest = ga
        .iter()
        .chain(gb.iter())
        .map(|g| g.max_wire)
        .max()
        .map(|w| w + 1);
    let width = widest.ok_or_else(|| ParseError::inline(ParseErrorKind::EmptyCircuit))?;
    if ga.is_empty() || gb.is_empty() {
        return Err(ParseError::inline(ParseErrorKind::EmptyCircuit));
    }
    let build = |gates: Vec<ParsedGate>| {
        let mut c = Circuit::new(width);
        for g in gates {
            c.push(g.gate);
        }
        c
    };
    Ok((build(ga), build(gb)))
}

// ----------------------------------------------------------------------
// Scenarios.
// ----------------------------------------------------------------------

/// A property declaration of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// `reach <k>`: compute the reachable subspace with iteration bound
    /// `k` and report its dimension and convergence.
    Reachability {
        /// Iteration bound.
        max_iterations: usize,
    },
    /// `invariant <k> { ... }`: does every reachable state stay inside
    /// the subspace spanned by these product states?
    Invariant {
        /// Product states spanning the invariant, one `(alpha, beta)`
        /// pair per qubit per state.
        states: Vec<Vec<(Cplx, Cplx)>>,
        /// Iteration bound of the underlying reachability run.
        max_iterations: usize,
    },
    /// `equivalent <a> <b> [up_to_phase]`: do two named circuits (or
    /// channel-free ops) implement the same operator?
    Equivalence {
        /// First circuit/op name.
        a: String,
        /// Second circuit/op name.
        b: String,
        /// Compare up to global phase.
        up_to_phase: bool,
    },
}

/// A parsed scenario: a full [`QtsSpec`]'s worth of system, named pure
/// circuits for equivalence queries, and the declared properties.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (`scenario <name>`, or `"scenario"` if omitted).
    pub name: String,
    /// Register width.
    pub n_qubits: u32,
    /// The transition operations, in declaration order.
    pub operations: Vec<Operation>,
    /// Named pure circuits (`circuit <name> { ... }`), all on the
    /// scenario register.
    pub circuits: Vec<(String, Circuit)>,
    /// Initial product states (`init` lines).
    pub initial_states: Vec<Vec<(Cplx, Cplx)>>,
    /// The properties to check, in declaration order.
    pub properties: Vec<Property>,
}

impl Scenario {
    /// The transition system this scenario declares.
    pub fn to_spec(&self) -> QtsSpec {
        QtsSpec {
            name: self.name.clone(),
            n_qubits: self.n_qubits,
            operations: self.operations.clone(),
            initial_states: self.initial_states.clone(),
        }
    }

    /// Resolves a name from an `equivalent` property to a circuit on the
    /// scenario register: named circuits first, then channel-free ops
    /// (projector elements expand to projector gates).
    pub fn circuit(&self, name: &str) -> Result<Circuit, ParseError> {
        if let Some((_, c)) = self.circuits.iter().find(|(n, _)| n == name) {
            return Ok(c.clone());
        }
        let Some(op) = self.operations.iter().find(|o| o.label() == name) else {
            return Err(ParseError::inline(ParseErrorKind::UnknownOp {
                name: name.to_string(),
            }));
        };
        if op.branch_count() != 1 {
            return Err(ParseError::inline(ParseErrorKind::NotACircuit {
                op: name.to_string(),
            }));
        }
        Ok(op.kraus_branches().remove(0))
    }
}

/// Parses a channel declaration body (`<kind> <q> <p>`) into an element.
fn parse_channel(args: &[&str], width: u32) -> Result<Element, ParseErrorKind> {
    let [kind, q, p] = args else {
        return Err(ParseErrorKind::Syntax {
            detail: format!(
                "'channel' takes <kind> <qubit> <p>, got {} argument(s)",
                args.len()
            ),
        });
    };
    let qubit: u32 = q.parse().map_err(|_| ParseErrorKind::BadWire {
        gate: "channel".to_string(),
        token: (*q).to_string(),
    })?;
    if qubit >= width {
        return Err(ParseErrorKind::WireOutOfRange { wire: qubit, width });
    }
    let p: f64 = p.parse().map_err(|_| ParseErrorKind::BadNumber {
        what: "channel probability",
        token: (*p).to_string(),
    })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(ParseErrorKind::BadProbability {
            channel: (*kind).to_string(),
            p,
        });
    }
    match *kind {
        "bitflip" => Ok(generators::bit_flip_channel(qubit, p)),
        "phaseflip" => Ok(generators::phase_flip_channel(qubit, p)),
        "depolarize" => Ok(generators::depolarizing_channel(qubit, p)),
        other => Err(ParseErrorKind::UnknownChannel {
            name: other.to_string(),
        }),
    }
}

/// Parses a projection declaration body (`<q>:<b> ...`) into an element.
fn parse_project(args: &[&str], width: u32) -> Result<Element, ParseErrorKind> {
    if args.is_empty() {
        return Err(ParseErrorKind::Syntax {
            detail: "'project' takes at least one <qubit>:<bit> pair".to_string(),
        });
    }
    let mut qubits = Vec::with_capacity(args.len());
    let mut bits = Vec::with_capacity(args.len());
    for pair in args {
        let parsed = pair.split_once(':').and_then(|(q, b)| {
            let q: u32 = q.parse().ok()?;
            let b: u32 = b.parse().ok()?;
            (b <= 1).then_some((q, b == 1))
        });
        let Some((q, b)) = parsed else {
            return Err(ParseErrorKind::Syntax {
                detail: format!("bad projection '{pair}' (expected <qubit>:<0|1>)"),
            });
        };
        if q >= width {
            return Err(ParseErrorKind::WireOutOfRange { wire: q, width });
        }
        if qubits.contains(&q) {
            return Err(ParseErrorKind::DuplicateWire {
                gate: "project".to_string(),
                wire: q,
            });
        }
        qubits.push(q);
        bits.push(b);
    }
    Ok(Element::Projector { qubits, bits })
}

/// Parses one product-state token: `0`, `1`, `+`, `-`, or
/// `(re,im;re,im)`.
fn parse_state_token(token: &str) -> Result<(Cplx, Cplx), ParseErrorKind> {
    match token {
        "0" => return Ok(states::ZERO),
        "1" => return Ok(states::ONE),
        "+" => return Ok(states::PLUS),
        "-" => return Ok(states::MINUS),
        _ => {}
    }
    let bad = || ParseErrorKind::BadStateToken {
        token: token.to_string(),
    };
    let inner = token
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(bad)?;
    let (alpha, beta) = inner.split_once(';').ok_or_else(bad)?;
    let amp = |s: &str| -> Result<Cplx, ParseErrorKind> {
        let (re, im) = s.split_once(',').ok_or_else(bad)?;
        let re: f64 = re.trim().parse().map_err(|_| bad())?;
        let im: f64 = im.trim().parse().map_err(|_| bad())?;
        Ok(Cplx::new(re, im))
    };
    Ok((amp(alpha)?, amp(beta)?))
}

/// Parses a whitespace-separated product state of exactly `width` tokens.
fn parse_state(tokens: &[&str], width: u32) -> Result<Vec<(Cplx, Cplx)>, ParseErrorKind> {
    if tokens.len() != width as usize {
        return Err(ParseErrorKind::StateWidth {
            got: tokens.len(),
            want: width,
        });
    }
    tokens.iter().map(|t| parse_state_token(t)).collect()
}

/// A declaration name: one token, no comment or block characters.
fn parse_decl_name(token: &str) -> Result<String, ParseErrorKind> {
    if token.is_empty() || token.contains(['{', '}', '#']) || token.contains(char::is_whitespace) {
        return Err(ParseErrorKind::Syntax {
            detail: format!("bad declaration name '{token}'"),
        });
    }
    Ok(token.to_string())
}

/// Parses a scenario file. Every failure is a typed [`ParseError`]
/// positioned on its source line.
pub fn parse_scenario(text: &str) -> Result<Scenario, ParseError> {
    let mut name: Option<String> = None;
    let mut n_qubits: Option<u32> = None;
    let mut operations: Vec<Operation> = Vec::new();
    let mut circuits: Vec<(String, Circuit)> = Vec::new();
    let mut initial_states: Vec<Vec<(Cplx, Cplx)>> = Vec::new();
    let mut properties: Vec<(usize, Property)> = Vec::new();

    let mut lines = text.lines().enumerate().map(|(i, l)| {
        // 1-based lines; comments stripped before tokenising.
        (i + 1, l.split('#').next().unwrap_or("").trim())
    });

    // Collects the lines of a `{ ... }` block opened on `open_line`.
    let collect_block = |lines: &mut dyn Iterator<Item = (usize, &str)>,
                         open_line: usize,
                         what: &str|
     -> Result<Vec<(usize, String)>, ParseError> {
        let mut body = Vec::new();
        for (ln, line) in &mut *lines {
            if line == "}" {
                return Ok(body);
            }
            if !line.is_empty() {
                body.push((ln, line.to_string()));
            }
        }
        Err(ParseError::at(
            open_line,
            ParseErrorKind::Syntax {
                detail: format!("unterminated '{what}' block (missing closing '}}')"),
            },
        ))
    };

    let taken = |name: &str, ops: &[Operation], circs: &[(String, Circuit)]| {
        ops.iter().any(|o| o.label() == name) || circs.iter().any(|(n, _)| n == name)
    };

    while let Some((ln, line)) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = tokens.collect();
        match head {
            "scenario" => {
                let n = line["scenario".len()..].trim();
                if n.is_empty() {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::Syntax {
                            detail: "'scenario' needs a name".to_string(),
                        },
                    ));
                }
                name = Some(n.to_string());
            }
            "qubits" => {
                let [tok] = rest.as_slice() else {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::Syntax {
                            detail: "'qubits' takes exactly one count".to_string(),
                        },
                    ));
                };
                let n: u32 = tok.parse().map_err(|_| {
                    ParseError::at(
                        ln,
                        ParseErrorKind::BadNumber {
                            what: "qubit count",
                            token: (*tok).to_string(),
                        },
                    )
                })?;
                if n == 0 {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::BadNumber {
                            what: "qubit count",
                            token: (*tok).to_string(),
                        },
                    ));
                }
                n_qubits = Some(n);
            }
            "op" | "circuit" => {
                let width =
                    n_qubits.ok_or_else(|| ParseError::at(ln, ParseErrorKind::MissingQubits))?;
                let bad_header = || {
                    ParseError::at(
                        ln,
                        ParseErrorKind::Syntax {
                            detail: format!("expected '{head} <name> {{'"),
                        },
                    )
                };
                let brace = line.find('{').ok_or_else(bad_header)?;
                let decl_name = parse_decl_name(line[head.len()..brace].trim())
                    .map_err(|k| ParseError::at(ln, k))?;
                if taken(&decl_name, &operations, &circuits) {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::DuplicateOp { name: decl_name },
                    ));
                }
                // Block body: either inline (`op a { h 0 }`) or the lines
                // up to a closing `}` on its own line.
                let after = line[brace + 1..].trim();
                let body: Vec<(usize, String)> = if after.is_empty() {
                    collect_block(&mut lines, ln, head)?
                } else {
                    let inner = after.strip_suffix('}').ok_or_else(bad_header)?.trim();
                    if inner.is_empty() {
                        Vec::new()
                    } else {
                        vec![(ln, inner.to_string())]
                    }
                };
                if head == "op" {
                    let mut op = Operation::new(decl_name, width);
                    for (bln, bline) in &body {
                        let mut btokens = bline.split_whitespace();
                        let bhead = btokens.next().expect("block keeps non-empty lines");
                        let bargs: Vec<&str> = btokens.collect();
                        let element =
                            match bhead {
                                "channel" => parse_channel(&bargs, width)
                                    .map_err(|k| ParseError::at(*bln, k))?,
                                "project" => parse_project(&bargs, width)
                                    .map_err(|k| ParseError::at(*bln, k))?,
                                _ => {
                                    for g in parse_statements(bline)
                                        .map_err(|e| ParseError::at(*bln, e.kind))?
                                    {
                                        if g.max_wire >= width {
                                            return Err(ParseError::at(
                                                *bln,
                                                ParseErrorKind::WireOutOfRange {
                                                    wire: g.max_wire,
                                                    width,
                                                },
                                            ));
                                        }
                                        op = op.then_gate(g.gate);
                                    }
                                    continue;
                                }
                            };
                        op = op.then(element);
                    }
                    if op.elements().is_empty() {
                        return Err(ParseError::at(
                            ln,
                            ParseErrorKind::Syntax {
                                detail: format!("op '{}' declares no elements", op.label()),
                            },
                        ));
                    }
                    operations.push(op);
                } else {
                    let mut circuit = Circuit::new(width);
                    let mut empty = true;
                    for (bln, bline) in &body {
                        for g in
                            parse_statements(bline).map_err(|e| ParseError::at(*bln, e.kind))?
                        {
                            if g.max_wire >= width {
                                return Err(ParseError::at(
                                    *bln,
                                    ParseErrorKind::WireOutOfRange {
                                        wire: g.max_wire,
                                        width,
                                    },
                                ));
                            }
                            circuit.push(g.gate);
                            empty = false;
                        }
                    }
                    if empty {
                        return Err(ParseError::at(ln, ParseErrorKind::EmptyCircuit));
                    }
                    circuits.push((decl_name, circuit));
                }
            }
            "init" => {
                let width =
                    n_qubits.ok_or_else(|| ParseError::at(ln, ParseErrorKind::MissingQubits))?;
                let state = parse_state(&rest, width).map_err(|k| ParseError::at(ln, k))?;
                initial_states.push(state);
            }
            "reach" => {
                let [tok] = rest.as_slice() else {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::Syntax {
                            detail: "'reach' takes exactly one iteration bound".to_string(),
                        },
                    ));
                };
                let max_iterations: usize = tok.parse().map_err(|_| {
                    ParseError::at(
                        ln,
                        ParseErrorKind::BadNumber {
                            what: "iteration bound",
                            token: (*tok).to_string(),
                        },
                    )
                })?;
                properties.push((ln, Property::Reachability { max_iterations }));
            }
            "invariant" => {
                let width =
                    n_qubits.ok_or_else(|| ParseError::at(ln, ParseErrorKind::MissingQubits))?;
                let [tok, "{"] = rest.as_slice() else {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::Syntax {
                            detail: "expected 'invariant <k> {'".to_string(),
                        },
                    ));
                };
                let max_iterations: usize = tok.parse().map_err(|_| {
                    ParseError::at(
                        ln,
                        ParseErrorKind::BadNumber {
                            what: "iteration bound",
                            token: (*tok).to_string(),
                        },
                    )
                })?;
                let body = collect_block(&mut lines, ln, "invariant")?;
                let mut invariant_states = Vec::with_capacity(body.len());
                for (bln, bline) in &body {
                    let tokens: Vec<&str> = bline.split_whitespace().collect();
                    invariant_states
                        .push(parse_state(&tokens, width).map_err(|k| ParseError::at(*bln, k))?);
                }
                if invariant_states.is_empty() {
                    return Err(ParseError::at(
                        ln,
                        ParseErrorKind::Syntax {
                            detail: "'invariant' block declares no states".to_string(),
                        },
                    ));
                }
                properties.push((
                    ln,
                    Property::Invariant {
                        states: invariant_states,
                        max_iterations,
                    },
                ));
            }
            "equivalent" => {
                let (a, b, up_to_phase) = match rest.as_slice() {
                    [a, b] => (a, b, false),
                    [a, b, "up_to_phase"] => (a, b, true),
                    _ => {
                        return Err(ParseError::at(
                            ln,
                            ParseErrorKind::Syntax {
                                detail: "expected 'equivalent <a> <b> [up_to_phase]'".to_string(),
                            },
                        ))
                    }
                };
                properties.push((
                    ln,
                    Property::Equivalence {
                        a: (*a).to_string(),
                        b: (*b).to_string(),
                        up_to_phase,
                    },
                ));
            }
            other => {
                return Err(ParseError::at(
                    ln,
                    ParseErrorKind::Syntax {
                        detail: format!("unknown directive '{other}'"),
                    },
                ))
            }
        }
    }

    let n_qubits = n_qubits.ok_or_else(|| ParseError::at(0, ParseErrorKind::MissingQubits))?;
    let missing = |what: &str| {
        ParseError::at(
            0,
            ParseErrorKind::Syntax {
                detail: format!("scenario declares no {what}"),
            },
        )
    };
    if operations.is_empty() {
        return Err(missing("op"));
    }
    if initial_states.is_empty() {
        return Err(missing("init state"));
    }

    let scenario = Scenario {
        name: name.unwrap_or_else(|| "scenario".to_string()),
        n_qubits,
        operations,
        circuits,
        initial_states,
        properties: properties.iter().map(|(_, p)| p.clone()).collect(),
    };
    // Equivalence references must resolve to pure circuits; checking here
    // positions the error on the property's line instead of at run time.
    for (ln, p) in &properties {
        if let Property::Equivalence { a, b, .. } = p {
            for side in [a, b] {
                scenario
                    .circuit(side)
                    .map_err(|e| ParseError::at(*ln, e.kind))?;
            }
        }
    }
    Ok(scenario)
}

// ----------------------------------------------------------------------
// Rendering (spec -> scenario text).
// ----------------------------------------------------------------------

/// The DSL spelling of a gate, if it has one.
fn gate_statement(g: &Gate) -> Result<String, ParseErrorKind> {
    let unrenderable = || ParseErrorKind::Unrenderable {
        detail: format!("gate {g}"),
    };
    if g.controls.iter().any(|c: &Control| !c.value) {
        return Err(unrenderable());
    }
    let controls: Vec<u32> = g.controls.iter().map(|c| c.qubit).collect();
    match (&g.kind, controls.as_slice()) {
        (GateKind::I, []) => Ok(format!("i {}", g.targets[0])),
        (GateKind::H, []) => Ok(format!("h {}", g.targets[0])),
        (GateKind::X, []) => Ok(format!("x {}", g.targets[0])),
        (GateKind::Y, []) => Ok(format!("y {}", g.targets[0])),
        (GateKind::Z, []) => Ok(format!("z {}", g.targets[0])),
        (GateKind::S, []) => Ok(format!("s {}", g.targets[0])),
        (GateKind::Sdg, []) => Ok(format!("sdg {}", g.targets[0])),
        (GateKind::T, []) => Ok(format!("t {}", g.targets[0])),
        (GateKind::Tdg, []) => Ok(format!("tdg {}", g.targets[0])),
        (GateKind::Phase(theta), []) => Ok(format!("phase {} {theta}", g.targets[0])),
        (GateKind::Rx(theta), []) => Ok(format!("rx {} {theta}", g.targets[0])),
        (GateKind::Ry(theta), []) => Ok(format!("ry {} {theta}", g.targets[0])),
        (GateKind::Rz(theta), []) => Ok(format!("rz {} {theta}", g.targets[0])),
        (GateKind::Swap, []) => Ok(format!("swap {} {}", g.targets[0], g.targets[1])),
        (GateKind::X, [c]) => Ok(format!("cx {c} {}", g.targets[0])),
        (GateKind::Z, [c]) => Ok(format!("cz {c} {}", g.targets[0])),
        (GateKind::Phase(theta), [c]) => Ok(format!("cp {c} {} {theta}", g.targets[0])),
        (GateKind::X, [c1, c2]) => Ok(format!("ccx {c1} {c2} {}", g.targets[0])),
        (GateKind::Custom1(m), []) => {
            // Recognise the two projector matrices `proj` produces.
            for (b, gate) in [
                (false, Gate::projector(0, false)),
                (true, Gate::projector(0, true)),
            ] {
                if let GateKind::Custom1(p) = &gate.kind {
                    if m == p {
                        return Ok(format!("proj {} {}", g.targets[0], u8::from(b)));
                    }
                }
            }
            Err(unrenderable())
        }
        _ => Err(unrenderable()),
    }
}

/// The `channel` spelling of a Kraus element, recognised by the canonical
/// labels the [`generators`] channel constructors stamp.
fn channel_statement(
    qubit: u32,
    kraus: &[qits_num::Mat],
    label: &str,
) -> Result<String, ParseErrorKind> {
    let unrenderable = || ParseErrorKind::Unrenderable {
        detail: format!("channel '{label}'"),
    };
    for (dsl_name, label_prefix, make) in [
        (
            "bitflip",
            "bit-flip(",
            generators::bit_flip_channel as fn(u32, f64) -> Element,
        ),
        ("phaseflip", "phase-flip(", generators::phase_flip_channel),
        (
            "depolarize",
            "depolarize(",
            generators::depolarizing_channel,
        ),
    ] {
        let Some(p) = label
            .strip_prefix(label_prefix)
            .and_then(|r| r.strip_suffix(')'))
            .and_then(|p| p.parse::<f64>().ok())
        else {
            continue;
        };
        // The label names the channel; verify the Kraus family actually
        // is that channel before claiming so in the output.
        let Element::Channel {
            kraus: canonical, ..
        } = make(qubit, p)
        else {
            unreachable!("channel constructors build channels")
        };
        if canonical.len() == kraus.len()
            && canonical.iter().zip(kraus).all(|(a, b)| a.approx_eq(b))
        {
            return Ok(format!("channel {dsl_name} {qubit} {p}"));
        }
        return Err(unrenderable());
    }
    Err(unrenderable())
}

/// The token spelling of one qubit's `(alpha, beta)` amplitudes.
fn state_token(amp: &(Cplx, Cplx)) -> String {
    if *amp == states::ZERO {
        "0".to_string()
    } else if *amp == states::ONE {
        "1".to_string()
    } else if *amp == states::PLUS {
        "+".to_string()
    } else if *amp == states::MINUS {
        "-".to_string()
    } else {
        format!("({},{};{},{})", amp.0.re, amp.0.im, amp.1.re, amp.1.im)
    }
}

fn render_state_line(out: &mut String, indent: &str, state: &[(Cplx, Cplx)]) {
    out.push_str(indent);
    for (i, amp) in state.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&state_token(amp));
    }
    out.push('\n');
}

/// Renders a [`QtsSpec`] (plus named circuits and properties) as scenario
/// text that [`parse_scenario`] accepts — the round trip behind
/// `qits export`. Fails with [`ParseErrorKind::Unrenderable`] when the
/// spec uses constructs outside the DSL (multi-controlled gates beyond
/// Toffoli, custom matrices, non-canonical channels).
pub fn render_scenario(
    spec: &QtsSpec,
    circuits: &[(String, Circuit)],
    properties: &[Property],
) -> Result<String, ParseError> {
    let err = |kind: ParseErrorKind| ParseError::inline(kind);
    let check_name = |n: &str| -> Result<(), ParseError> {
        if n.split_whitespace().count() != 1 || n.contains(['{', '}', '#']) {
            return Err(err(ParseErrorKind::Unrenderable {
                detail: format!("declaration name '{n}'"),
            }));
        }
        Ok(())
    };

    let mut out = String::new();
    out.push_str(&format!("scenario {}\n", spec.name.trim()));
    out.push_str(&format!("qubits {}\n", spec.n_qubits));
    for op in &spec.operations {
        check_name(op.label())?;
        out.push_str(&format!("\nop {} {{\n", op.label()));
        for e in op.elements() {
            match e {
                Element::Gate(g) => {
                    out.push_str("  ");
                    out.push_str(&gate_statement(g).map_err(err)?);
                    out.push('\n');
                }
                Element::Projector { qubits, bits } => {
                    out.push_str("  project");
                    for (q, b) in qubits.iter().zip(bits) {
                        out.push_str(&format!(" {q}:{}", u8::from(*b)));
                    }
                    out.push('\n');
                }
                Element::Channel {
                    qubit,
                    kraus,
                    label,
                } => {
                    out.push_str("  ");
                    out.push_str(&channel_statement(*qubit, kraus, label).map_err(err)?);
                    out.push('\n');
                }
            }
        }
        out.push_str("}\n");
    }
    for (cname, circuit) in circuits {
        check_name(cname)?;
        if circuit.n_qubits() != spec.n_qubits {
            return Err(err(ParseErrorKind::Unrenderable {
                detail: format!(
                    "circuit '{cname}' is on {} qubits, the scenario register has {}",
                    circuit.n_qubits(),
                    spec.n_qubits
                ),
            }));
        }
        out.push_str(&format!("\ncircuit {cname} {{\n"));
        for g in circuit.gates() {
            out.push_str("  ");
            out.push_str(&gate_statement(g).map_err(err)?);
            out.push('\n');
        }
        out.push_str("}\n");
    }
    out.push('\n');
    for state in &spec.initial_states {
        out.push_str("init");
        for amp in state {
            out.push(' ');
            out.push_str(&state_token(amp));
        }
        out.push('\n');
    }
    for p in properties {
        match p {
            Property::Reachability { max_iterations } => {
                out.push_str(&format!("\nreach {max_iterations}\n"));
            }
            Property::Invariant {
                states,
                max_iterations,
            } => {
                out.push_str(&format!("\ninvariant {max_iterations} {{\n"));
                for state in states {
                    render_state_line(&mut out, "  ", state);
                }
                out.push_str("}\n");
            }
            Property::Equivalence { a, b, up_to_phase } => {
                check_name(a)?;
                check_name(b)?;
                out.push_str(&format!(
                    "\nequivalent {a} {b}{}\n",
                    if *up_to_phase { " up_to_phase" } else { "" }
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn dsl_builds_real_circuits() {
        let c = parse_circuit("h 0; cx 0 1; phase 1 0.25").unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.gates().len(), 3);
        let c = parse_circuit("s 0\ntdg 1; rx 2 0.5; ry 0 1.0; rz 1 -0.5; i 2").unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gates().len(), 6);
    }

    #[test]
    fn duplicate_wires_are_typed_errors_not_panics() {
        // The exact inputs that used to unwind through Gate::new's
        // distinctness assertion — one regression per multi-wire gate.
        for text in [
            "cx 0 0",
            "cz 1 1",
            "swap 2 2",
            "ccx 0 1 0",
            "ccx 0 0 1",
            "cp 3 3 0.5",
        ] {
            let err = parse_circuit(text).unwrap_err();
            assert!(
                matches!(err.kind, ParseErrorKind::DuplicateWire { .. }),
                "{text}: {err:?}"
            );
        }
    }

    #[test]
    fn dsl_arity_and_token_errors() {
        assert!(matches!(
            parse_circuit("bogus 0").unwrap_err().kind,
            ParseErrorKind::UnknownGate { .. }
        ));
        assert!(matches!(
            parse_circuit("cx 0").unwrap_err().kind,
            ParseErrorKind::MissingArgument { .. }
        ));
        assert!(matches!(
            parse_circuit("h 0 1").unwrap_err().kind,
            ParseErrorKind::TrailingArgument { .. }
        ));
        assert!(matches!(
            parse_circuit("h x").unwrap_err().kind,
            ParseErrorKind::BadWire { .. }
        ));
        assert!(matches!(
            parse_circuit("phase 0 nope").unwrap_err().kind,
            ParseErrorKind::BadAngle { .. }
        ));
        assert!(matches!(
            parse_circuit("proj 0 2").unwrap_err().kind,
            ParseErrorKind::BadBasisBit { .. }
        ));
        assert!(matches!(
            parse_circuit("").unwrap_err().kind,
            ParseErrorKind::EmptyCircuit
        ));
    }

    #[test]
    fn explicit_width_bounds_wires() {
        let c = parse_circuit_onto("h 0; cx 0 1", 4).unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert!(matches!(
            parse_circuit_onto("h 5", 4).unwrap_err().kind,
            ParseErrorKind::WireOutOfRange { wire: 5, width: 4 }
        ));
    }

    #[test]
    fn circuit_pair_shares_the_wider_register() {
        let (a, b) = parse_circuit_pair("h 0", "h 0; z 1").unwrap();
        assert_eq!(a.n_qubits(), 2);
        assert_eq!(b.n_qubits(), 2);
        assert!(parse_circuit_pair("h 0", "").is_err());
    }

    #[test]
    fn scenario_parses_system_and_properties() {
        let text = "\
scenario bell pair demo
qubits 2

# prepare a Bell state, then collapse qubit 1
op bell {
  h 0
  cx 0 1
  channel bitflip 1 0.25
  project 1:0
}

circuit cz_a { h 1; cx 0 1; h 1 }
circuit cz_b { cz 0 1 }

init 0 0
init + -

reach 8
invariant 4 {
  0 0
  1 1
}
equivalent cz_a cz_b
equivalent cz_a cz_b up_to_phase
";
        let s = parse_scenario(text).unwrap();
        assert_eq!(s.name, "bell pair demo");
        assert_eq!(s.n_qubits, 2);
        assert_eq!(s.operations.len(), 1);
        assert_eq!(s.operations[0].branch_count(), 2);
        assert_eq!(s.circuits.len(), 2);
        assert_eq!(s.initial_states.len(), 2);
        assert_eq!(s.properties.len(), 4);
        assert_eq!(
            s.properties[0],
            Property::Reachability { max_iterations: 8 }
        );
        let spec = s.to_spec();
        assert_eq!(spec.name, "bell pair demo");
        assert_eq!(spec.operations.len(), 1);
        // The two CZ spellings really are the same operator.
        let a = sim::circuit_matrix(&s.circuit("cz_a").unwrap());
        let b = sim::circuit_matrix(&s.circuit("cz_b").unwrap());
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn scenario_errors_carry_line_numbers() {
        let err = parse_scenario("qubits 2\nop bad {\n  cx 0 0\n}\ninit 0 0").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, ParseErrorKind::DuplicateWire { .. }));

        let err = parse_scenario("qubits 2\nop t1 {\n  h 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::Syntax { .. }));

        let err = parse_scenario("op early { h 0 }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MissingQubits));

        let err = parse_scenario("qubits 2\nop t1 {\n  h 5\n}\ninit 0 0").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(
            err.kind,
            ParseErrorKind::WireOutOfRange { wire: 5, width: 2 }
        ));

        let err =
            parse_scenario("qubits 1\nop t1 {\n  h 0\n}\ninit 0\nequivalent t1 ghost").unwrap_err();
        assert_eq!(err.line, 6);
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp { .. }));
    }

    #[test]
    fn scenario_rejects_noisy_ops_in_equivalence() {
        let text = "\
qubits 1
op noisy {
  h 0
  channel bitflip 0 0.5
}
init 0
equivalent noisy noisy
";
        let err = parse_scenario(text).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NotACircuit { .. }));
    }

    #[test]
    fn scenario_channel_and_state_validation() {
        let bad_p = "qubits 1\nop t1 {\n  channel bitflip 0 1.5\n}\ninit 0";
        assert!(matches!(
            parse_scenario(bad_p).unwrap_err().kind,
            ParseErrorKind::BadProbability { .. }
        ));
        let bad_ch = "qubits 1\nop t1 {\n  channel gamma 0 0.5\n}\ninit 0";
        assert!(matches!(
            parse_scenario(bad_ch).unwrap_err().kind,
            ParseErrorKind::UnknownChannel { .. }
        ));
        let bad_state = "qubits 2\nop t1 {\n  h 0\n}\ninit 0 2";
        assert!(matches!(
            parse_scenario(bad_state).unwrap_err().kind,
            ParseErrorKind::BadStateToken { .. }
        ));
        let short_state = "qubits 2\nop t1 {\n  h 0\n}\ninit 0";
        assert!(matches!(
            parse_scenario(short_state).unwrap_err().kind,
            ParseErrorKind::StateWidth { got: 1, want: 2 }
        ));
        let dup = "qubits 1\nop t1 {\n  h 0\n}\nop t1 {\n  x 0\n}\ninit 0";
        assert!(matches!(
            parse_scenario(dup).unwrap_err().kind,
            ParseErrorKind::DuplicateOp { .. }
        ));
    }

    #[test]
    fn state_tokens_round_trip() {
        for tok in ["0", "1", "+", "-"] {
            let amp = parse_state_token(tok).unwrap();
            assert_eq!(state_token(&amp), tok);
        }
        let amp = parse_state_token("(0.6,0;0,0.8)").unwrap();
        assert_eq!(amp.0, Cplx::new(0.6, 0.0));
        assert_eq!(amp.1, Cplx::new(0.0, 0.8));
        let rendered = state_token(&amp);
        assert_eq!(parse_state_token(&rendered).unwrap(), amp);
    }

    #[test]
    fn render_round_trips_a_generated_spec() {
        let spec = generators::qrw(3, 0.125);
        let props = vec![
            Property::Reachability { max_iterations: 8 },
            Property::Invariant {
                states: vec![vec![states::ZERO; 3], vec![states::ONE; 3]],
                max_iterations: 4,
            },
        ];
        // QRW's shift uses negative controls — not DSL-expressible.
        assert!(render_scenario(&spec, &[], &props).is_err());

        let spec = generators::ghz(3);
        let text = render_scenario(&spec, &[], &props).unwrap();
        let back = parse_scenario(&text).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.n_qubits, spec.n_qubits);
        assert_eq!(back.operations.len(), spec.operations.len());
        assert_eq!(back.initial_states, spec.initial_states);
        assert_eq!(back.properties, props);
        // Same unitary after the round trip.
        let before = sim::circuit_matrix(&spec.operations[0].kraus_branches()[0]);
        let after = sim::circuit_matrix(&back.operations[0].kraus_branches()[0]);
        assert!(before.approx_eq(&after));
    }

    #[test]
    fn render_round_trips_channels_and_projectors() {
        let mut spec = generators::ghz(2);
        spec.operations[0] = Operation::new("noisy", 2)
            .then_gate(Gate::h(0))
            .then(generators::bit_flip_channel(1, 0.125))
            .then(generators::phase_flip_channel(0, 0.25))
            .then(generators::depolarizing_channel(1, 0.0625))
            .then(Element::Projector {
                qubits: vec![0, 1],
                bits: vec![false, true],
            });
        let text = render_scenario(&spec, &[], &[]).unwrap();
        let back = parse_scenario(&text).unwrap();
        assert_eq!(back.operations[0].branch_count(), 2 * 2 * 4);
        assert_eq!(back.operations[0].elements(), spec.operations[0].elements());
    }

    #[test]
    fn no_dsl_or_scenario_input_panics() {
        // A grab-bag of adversarial near-misses: all must be Err, none
        // may panic (the proptest suite generalises this).
        for text in [
            "cx 0 0; h 1",
            "ccx 1 1 1",
            "swap 0 0",
            "h 4294967296",
            "phase 0",
            "proj 0 1 2",
            "h",
            ";;",
            "\u{0}",
            "h -1",
        ] {
            assert!(parse_circuit(text).is_err(), "{text:?}");
        }
        for text in [
            "",
            "qubits",
            "qubits 0",
            "qubits x",
            "op {",
            "qubits 1\nop a {",
            "qubits 1\nop a { }",
            "qubits 1\ninit (",
            "qubits 1\ninit (1,0;0)",
            "qubits 1\nreach",
            "qubits 1\ninvariant 4 {",
            "scenario",
            "}",
        ] {
            assert!(parse_scenario(text).is_err(), "{text:?}");
        }
    }
}
