//! Gate decomposition into elementary gates.
//!
//! `qits` keeps multi-controlled gates as *primitive tensors* (their TDDs
//! are linear in the control count), which keeps the benchmark operators
//! compact. Real hardware — and many benchmark suites — express the same
//! circuits over elementary one- and two-qubit gates plus Toffolis. This
//! module rewrites circuits into that form, which is useful both as a
//! compilation step and as an *ablation*: it lets the benchmark harness
//! measure how much of the contraction partition's advantage survives when
//! the network consists of many small tensors instead of few wide ones.
//!
//! Provided rewrites:
//!
//! * [`ccx_to_clifford_t`] — the textbook 15-gate `{H, T, T†, CX}`
//!   realisation of the Toffoli gate;
//! * [`mcx_with_ancillas`] — the Toffoli-ladder ("V-chain") realisation of
//!   `C^k(X)` using `k-1` clean ancillas, with uncomputation;
//! * [`elementarize`] — whole-circuit rewrite: every gate with more than
//!   two qubits becomes a ladder (ancillas appended to the register);
//!   optionally Toffolis are further lowered to Clifford+T.

use crate::circuit::Circuit;
use crate::gate::{Control, Gate, GateKind};

/// The 15-gate Clifford+T realisation of `CCX(c1, c2, t)`.
///
/// # Example
///
/// ```
/// use qits_circuit::decompose::ccx_to_clifford_t;
/// assert_eq!(ccx_to_clifford_t(0, 1, 2).len(), 15);
/// ```
pub fn ccx_to_clifford_t(c1: u32, c2: u32, t: u32) -> Vec<Gate> {
    use GateKind::{Tdg, T};
    vec![
        Gate::h(t),
        Gate::cx(c2, t),
        Gate::single(Tdg, t),
        Gate::cx(c1, t),
        Gate::single(T, t),
        Gate::cx(c2, t),
        Gate::single(Tdg, t),
        Gate::cx(c1, t),
        Gate::single(T, c2),
        Gate::single(T, t),
        Gate::h(t),
        Gate::cx(c1, c2),
        Gate::single(T, c1),
        Gate::single(Tdg, c2),
        Gate::cx(c1, c2),
    ]
}

/// Realises `C^k(X)` over positive/negative controls with a ladder of
/// Toffolis through `k - 1` clean ancillas (uncomputed afterwards).
///
/// Negative controls are handled by conjugating the control with `X`.
/// For `k <= 2` no ancillas are consumed.
///
/// # Panics
///
/// Panics if fewer than `controls.len() - 1` ancillas are supplied (extra
/// ancillas are ignored), or if ancillas collide with gate qubits.
pub fn mcx_with_ancillas(controls: &[(u32, bool)], target: u32, ancillas: &[u32]) -> Vec<Gate> {
    let k = controls.len();
    let mut gates = Vec::new();
    // Flip negative controls to positive.
    for &(c, pol) in controls {
        assert_ne!(c, target, "control collides with target");
        if !pol {
            gates.push(Gate::x(c));
        }
    }
    match k {
        0 => gates.push(Gate::x(target)),
        1 => gates.push(Gate::cx(controls[0].0, target)),
        2 => gates.push(Gate::ccx(controls[0].0, controls[1].0, target)),
        _ => {
            assert!(
                ancillas.len() >= k - 1,
                "C^{k}(X) ladder needs {} ancillas, got {}",
                k - 1,
                ancillas.len()
            );
            for &a in &ancillas[..k - 1] {
                assert!(
                    !controls.iter().any(|&(c, _)| c == a) && a != target,
                    "ancilla {a} collides with gate qubits"
                );
            }
            // Compute the AND ladder.
            gates.push(Gate::ccx(controls[0].0, controls[1].0, ancillas[0]));
            for i in 2..k {
                gates.push(Gate::ccx(controls[i].0, ancillas[i - 2], ancillas[i - 1]));
            }
            gates.push(Gate::cx(ancillas[k - 2], target));
            // Uncompute.
            for i in (2..k).rev() {
                gates.push(Gate::ccx(controls[i].0, ancillas[i - 2], ancillas[i - 1]));
            }
            gates.push(Gate::ccx(controls[0].0, controls[1].0, ancillas[0]));
        }
    }
    // Restore negative controls.
    for &(c, pol) in controls {
        if !pol {
            gates.push(Gate::x(c));
        }
    }
    gates
}

/// Options for [`elementarize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElementarizeOptions {
    /// Also lower Toffoli gates to the 15-gate Clifford+T sequence.
    pub clifford_t: bool,
}

/// Rewrites `circuit` so every gate touches at most
/// `max(2, 3 - clifford_t)` qubits, appending the ancilla wires the
/// ladders need to the end of the register.
///
/// Gates that already fit (single-qubit, controlled single-target with one
/// control, CCX unless `clifford_t`) pass through unchanged. Controlled
/// gates whose base is not `X` keep at most one control; extra controls
/// are collected onto an ancilla via an X-ladder first, leaving a
/// single-controlled base gate.
///
/// The rewritten circuit computes `U (x) |0...0><0...0|`-preserving
/// behaviour on the original wires: ancillas start and end in `|0>`.
pub fn elementarize(circuit: &Circuit, opts: ElementarizeOptions) -> Circuit {
    // Worst-case ancilla need: max over gates of (#controls - 1), plus one
    // ancilla to collect controls for non-X bases.
    let mut anc_needed = 0usize;
    for g in circuit.gates() {
        let k = g.controls.len();
        let is_x = matches!(g.kind, GateKind::X);
        if k > 2 || (!is_x && k > 1) {
            anc_needed = anc_needed.max(k.saturating_sub(1).max(1) + usize::from(!is_x));
        }
    }
    let n0 = circuit.n_qubits();
    let mut out = Circuit::new(n0 + anc_needed as u32);
    let ancillas: Vec<u32> = (n0..n0 + anc_needed as u32).collect();

    let push_ccx = |out: &mut Circuit, c1: u32, c2: u32, t: u32| {
        if opts.clifford_t {
            for g in ccx_to_clifford_t(c1, c2, t) {
                out.push(g);
            }
        } else {
            out.push(Gate::ccx(c1, c2, t));
        }
    };

    for g in circuit.gates() {
        let k = g.controls.len();
        let is_x = matches!(g.kind, GateKind::X) && g.targets.len() == 1;
        let ctl_pairs: Vec<(u32, bool)> = g.controls.iter().map(|c| (c.qubit, c.value)).collect();
        if is_x && k > 1 {
            // Multi-controlled X: Toffoli ladder (or direct CCX for k = 2).
            for gg in mcx_with_ancillas(&ctl_pairs, g.targets[0], &ancillas) {
                if matches!(gg.kind, GateKind::X) && gg.controls.len() == 2 {
                    push_ccx(
                        &mut out,
                        gg.controls[0].qubit,
                        gg.controls[1].qubit,
                        gg.targets[0],
                    );
                } else {
                    out.push(gg);
                }
            }
        } else if !is_x && k > 1 {
            // Collect the controls into the last ancilla, then apply the
            // singly-controlled base, then uncompute.
            let collect = *ancillas.last().expect("ancilla reserved");
            let ladder_anc = &ancillas[..ancillas.len() - 1];
            let compute = mcx_with_ancillas(&ctl_pairs, collect, ladder_anc);
            for gg in &compute {
                if matches!(gg.kind, GateKind::X) && gg.controls.len() == 2 {
                    push_ccx(
                        &mut out,
                        gg.controls[0].qubit,
                        gg.controls[1].qubit,
                        gg.targets[0],
                    );
                } else {
                    out.push(gg.clone());
                }
            }
            out.push(Gate::new(
                g.kind.clone(),
                g.targets.clone(),
                vec![Control {
                    qubit: collect,
                    value: true,
                }],
            ));
            for gg in compute.iter().rev() {
                if matches!(gg.kind, GateKind::X) && gg.controls.len() == 2 {
                    push_ccx(
                        &mut out,
                        gg.controls[0].qubit,
                        gg.controls[1].qubit,
                        gg.targets[0],
                    );
                } else {
                    out.push(gg.clone());
                }
            }
        } else if is_x && k == 2 {
            push_ccx(
                &mut out,
                g.controls[0].qubit,
                g.controls[1].qubit,
                g.targets[0],
            );
        } else {
            out.push(g.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;
    use qits_num::Cplx;

    /// Check a decomposition against the primitive gate on all basis
    /// states (ancillas in |0>, and must return to |0>).
    fn check_equiv(primitive: &Gate, n_orig: u32, decomposed: &Circuit) {
        let n = decomposed.n_qubits();
        let pad = n - n_orig;
        for idx in 0..(1usize << n_orig) {
            let full_idx = idx << pad; // ancillas |0..0>
            let got = sim::run(decomposed, &sim::basis_state(n, full_idx));
            let want = sim::apply_gate(&sim::basis_state(n_orig, idx), n_orig, primitive);
            for (j, amp) in got.iter().enumerate() {
                let (orig, anc) = (j >> pad, j & ((1 << pad) - 1));
                if anc != 0 {
                    assert!(amp.is_zero(), "ancilla not returned to |0>");
                } else {
                    assert!(
                        amp.approx_eq(want[orig]),
                        "mismatch at in {idx} out {orig}: {amp} vs {}",
                        want[orig]
                    );
                }
            }
        }
    }

    #[test]
    fn clifford_t_toffoli_is_exact() {
        let seq: Circuit = ccx_to_clifford_t(0, 1, 2).into_iter().collect();
        let dense = sim::circuit_matrix(&seq);
        let mut ccx = Circuit::new(3);
        ccx.push(Gate::ccx(0, 1, 2));
        assert!(dense.approx_eq(&sim::circuit_matrix(&ccx)));
    }

    #[test]
    fn ladder_matches_mcx_3_controls() {
        let gate = Gate::mcx(&[0, 1, 2], 3);
        let mut c = Circuit::new(6);
        for g in mcx_with_ancillas(&[(0, true), (1, true), (2, true)], 3, &[4, 5]) {
            c.push(g);
        }
        check_equiv(&gate, 4, &c);
    }

    #[test]
    fn ladder_with_negative_controls() {
        let gate = Gate::mcx_polarity(&[(0, false), (1, true), (2, false)], 3);
        let mut c = Circuit::new(6);
        for g in mcx_with_ancillas(&[(0, false), (1, true), (2, false)], 3, &[4, 5]) {
            c.push(g);
        }
        check_equiv(&gate, 4, &c);
    }

    #[test]
    fn elementarize_grover_preserves_semantics() {
        let spec = crate::generators::grover(4);
        let circuit = spec.operations[0].kraus_branches().remove(0);
        let elem = elementarize(&circuit, ElementarizeOptions::default());
        // All gates now touch <= 3 qubits.
        assert!(elem
            .gates()
            .iter()
            .all(|g| g.targets.len() + g.controls.len() <= 3));
        // Semantics preserved on the original 4 wires.
        let n0 = 4u32;
        let pad = elem.n_qubits() - n0;
        let orig = sim::circuit_matrix(&circuit);
        for idx in 0..(1usize << n0) {
            let got = sim::run(&elem, &sim::basis_state(elem.n_qubits(), idx << pad));
            for (j, amp) in got.iter().enumerate() {
                let (o, anc) = (j >> pad, j & ((1 << pad) - 1));
                let want = if anc == 0 { orig[(o, idx)] } else { Cplx::ZERO };
                assert!(amp.approx_eq(want), "entry ({j},{idx})");
            }
        }
    }

    #[test]
    fn elementarize_clifford_t_has_no_toffolis() {
        let spec = crate::generators::grover(4);
        let circuit = spec.operations[0].kraus_branches().remove(0);
        let elem = elementarize(&circuit, ElementarizeOptions { clifford_t: true });
        assert!(elem
            .gates()
            .iter()
            .all(|g| g.targets.len() + g.controls.len() <= 2));
    }

    #[test]
    fn elementarize_passthrough_for_simple_circuits() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let e = elementarize(&c, ElementarizeOptions::default());
        assert_eq!(e.n_qubits(), 2);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn controlled_phase_with_many_controls() {
        // A doubly-controlled phase: controls collected onto an ancilla.
        let g = Gate::new(
            GateKind::Phase(0.7),
            vec![2],
            vec![
                Control {
                    qubit: 0,
                    value: true,
                },
                Control {
                    qubit: 1,
                    value: true,
                },
            ],
        );
        let mut c = Circuit::new(3);
        c.push(g.clone());
        let e = elementarize(&c, ElementarizeOptions::default());
        check_equiv(&g, 3, &e);
    }
}
