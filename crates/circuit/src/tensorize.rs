//! Gate → TDD construction.
//!
//! The tensor of a gate is built *symbolically*: a dense base matrix (at
//! most two targets, so at most 4x4) is converted to a small TDD over the
//! target legs, and control legs are folded around it one at a time:
//!
//! ```text
//! G' = <c = active> (x) G  +  <c = inactive> (x) Id(targets)
//! ```
//!
//! Each fold adds O(1) nodes, so a 99-control Toffoli — the shift cascades
//! of the quantum-walk benchmark — costs O(#controls) nodes instead of a
//! `2^100` matrix.
//!
//! Leg conventions (see [`GateLegs`]):
//!
//! * every **control** wire carries a single leg (input and output indices
//!   identified — a hyper-edge in the interaction graph of Fig. 5);
//! * a **diagonal** base also uses a single leg per target wire;
//! * a non-diagonal base has distinct input and output legs per target.

use std::collections::{BTreeMap, VecDeque};

use qits_tdd::{Edge, TddManager};
use qits_tensor::{Tensor, Var};

use crate::element::{Element, Operation};
use crate::gate::Gate;

// ----------------------------------------------------------------------
// Static variable-ordering heuristics.
// ----------------------------------------------------------------------

/// A static variable-ordering heuristic, applied at tensorize time: how
/// the engine orders the wire variables of a register **before** any node
/// is interned (see `qits_tdd::TddManager::install_order`).
///
/// TDD size is notoriously order-sensitive — the classic BDD example
/// `(x0 AND x3) OR (x1 AND x4) OR ...` is linear under an interleaved
/// order and exponential under a separated one — so a good static order
/// is the cheap first line of defence before dynamic reordering (sifting)
/// has to earn its keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaticOrder {
    /// The natural [`Var`] order: qubit-major, ket before row on each
    /// wire. The manager's zero-cost default (no level map materialised).
    #[default]
    Natural,
    /// Qubits ordered by breadth-first traversal of the circuit's
    /// qubit-interaction graph, in gate order — qubits that share gates
    /// land on adjacent levels, which keeps the gate tensors' dependence
    /// local. Ket and row variables of a qubit stay interleaved.
    GateLocality,
    /// All ket variables (wire position 0) before all row variables
    /// (position 1) — the separated order that splits every gate tensor's
    /// input from its output. Deliberately poor on operator diagrams;
    /// kept as the A/B baseline that makes reordering wins visible.
    PositionMajor,
}

impl std::fmt::Display for StaticOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaticOrder::Natural => write!(f, "natural"),
            StaticOrder::GateLocality => write!(f, "gate-locality"),
            StaticOrder::PositionMajor => write!(f, "position-major"),
        }
    }
}

/// The qubits an element touches, in element order (controls first for
/// gates), deduplicated keeping the first occurrence.
fn element_qubits(e: &Element) -> Vec<u32> {
    let mut qs: Vec<u32> = match e {
        Element::Gate(g) => g
            .controls
            .iter()
            .map(|c| c.qubit)
            .chain(g.targets.iter().copied())
            .collect(),
        Element::Projector { qubits, .. } => qubits.clone(),
        Element::Channel { qubit, .. } => vec![*qubit],
    };
    let mut seen = Vec::new();
    qs.retain(|q| {
        let fresh = !seen.contains(q);
        seen.push(*q);
        fresh
    });
    qs
}

/// Qubit visit order of [`StaticOrder::GateLocality`]: BFS over the
/// qubit-interaction graph (an edge per pair of qubits sharing an
/// element), seeded and tie-broken by first appearance in gate order;
/// qubits no gate touches follow in index order.
fn gate_locality_qubits(n_qubits: u32, operations: &[Operation]) -> Vec<u32> {
    let n = n_qubits as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut seeds: Vec<u32> = Vec::new();
    for op in operations {
        for e in op.elements() {
            let qs = element_qubits(e);
            for &q in &qs {
                if !seeds.contains(&q) {
                    seeds.push(q);
                }
            }
            for (i, &a) in qs.iter().enumerate() {
                for &b in qs.iter().skip(i + 1) {
                    if !adj[a as usize].contains(&b) {
                        adj[a as usize].push(b);
                    }
                    if !adj[b as usize].contains(&a) {
                        adj[b as usize].push(a);
                    }
                }
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    for &s in &seeds {
        if visited[s as usize] {
            continue;
        }
        visited[s as usize] = true;
        queue.push_back(s);
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for &nb in &adj[q as usize] {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    queue.push_back(nb);
                }
            }
        }
    }
    for q in 0..n_qubits {
        if !visited[q as usize] {
            order.push(q);
        }
    }
    order
}

/// Computes the initial variable order of a register under `heuristic`,
/// as a level list (first entry = topmost level) ready for
/// `qits_tdd::TddManager::install_order`.
///
/// The list covers the ket (`Var::wire(q, 0)`) and row (`Var::wire(q, 1)`)
/// variable of every qubit; intermediate wire positions minted later by
/// tensorization register lazily next to their qubit's block, so the
/// qubit-level structure chosen here survives mid-run variable creation.
pub fn static_order(n_qubits: u32, operations: &[Operation], heuristic: StaticOrder) -> Vec<Var> {
    let qubits: Vec<u32> = match heuristic {
        StaticOrder::Natural | StaticOrder::PositionMajor => (0..n_qubits).collect(),
        StaticOrder::GateLocality => gate_locality_qubits(n_qubits, operations),
    };
    match heuristic {
        StaticOrder::PositionMajor => qubits
            .iter()
            .map(|&q| Var::wire(q, 0))
            .chain(qubits.iter().map(|&q| Var::wire(q, 1)))
            .collect(),
        _ => qubits
            .iter()
            .flat_map(|&q| [Var::wire(q, 0), Var::wire(q, 1)])
            .collect(),
    }
}

/// The tensor-network legs assigned to one gate.
///
/// Produced by the tensor-network layer (which owns wire positions) and
/// consumed by [`gate_tdd`]. `target_in[i]`/`target_out[i]` belong to
/// `gate.targets[i]`'s wire; for diagonal gates `target_out` must equal
/// `target_in`. `controls[i]` is the single leg of `gate.controls[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateLegs {
    /// One `(leg, active_value)` pair per control, in gate order.
    pub controls: Vec<(Var, bool)>,
    /// Input leg per target qubit.
    pub target_in: Vec<Var>,
    /// Output leg per target qubit (same as input for diagonal bases).
    pub target_out: Vec<Var>,
}

impl GateLegs {
    /// All distinct legs of the gate.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut v: Vec<Var> = self
            .controls
            .iter()
            .map(|&(l, _)| l)
            .chain(self.target_in.iter().copied())
            .chain(self.target_out.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Builds the TDD of `gate` over the given legs.
///
/// # Panics
///
/// Panics if leg counts do not match the gate shape, or if a diagonal
/// gate's input and output legs differ.
pub fn gate_tdd(m: &mut TddManager, gate: &Gate, legs: &GateLegs) -> Edge {
    assert_eq!(
        legs.controls.len(),
        gate.controls.len(),
        "one control leg per control"
    );
    assert_eq!(
        legs.target_in.len(),
        gate.targets.len(),
        "one input leg per target"
    );
    assert_eq!(
        legs.target_out.len(),
        gate.targets.len(),
        "one output leg per target"
    );
    let diagonal = gate.is_diagonal();
    if diagonal {
        assert_eq!(
            legs.target_in, legs.target_out,
            "diagonal gates use one leg per wire"
        );
    }

    let base = gate.kind.matrix();
    let k = gate.targets.len();

    // 1. Base tensor over the target legs.
    let active = if diagonal {
        // Rank-k tensor: value at target assignment a is diag[a].
        let mut t = Tensor::zeros({
            let mut v = legs.target_in.clone();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), k, "target legs must be distinct");
            v
        });
        for a in 0..(1usize << k) {
            let mut asn = BTreeMap::new();
            for (b, &leg) in legs.target_in.iter().enumerate() {
                asn.insert(leg, (a >> (k - 1 - b)) & 1 == 1);
            }
            t.set(&asn, base[(a, a)]);
        }
        m.from_tensor(&t)
    } else {
        m.from_matrix(&base, &legs.target_in, &legs.target_out)
    };

    // 2. Identity over the target legs (for inactive-control branches).
    //    For diagonal gates the identity on a shared leg is the constant-1
    //    tensor, which reduces to the terminal.
    let idle = if gate.controls.is_empty() {
        Edge::ZERO // unused
    } else if diagonal {
        Edge::ONE
    } else {
        let mut idle = Edge::ONE;
        for (&i, &o) in legs.target_in.iter().zip(legs.target_out.iter()) {
            let id = m.identity(i.min(o), i.max(o));
            idle = m.contract(idle, id, &[]);
        }
        idle
    };

    // 3. Fold the controls.
    let mut d = active;
    for &(leg, active_value) in &legs.controls {
        let sel_a = m.selector(leg, active_value);
        let sel_i = m.selector(leg, !active_value);
        let on = m.contract(sel_a, d, &[]);
        let off = m.contract(sel_i, idle, &[]);
        d = m.add(on, off);
    }
    d
}

/// Convenience: sequential legs for a standalone gate, for tests and
/// examples that tensorize a gate outside a network. Controls get position
/// 0 on their wire; targets get positions 0 (in) and 1 (out), or a single
/// position 0 leg when diagonal.
pub fn standalone_legs(gate: &Gate) -> GateLegs {
    let controls = gate
        .controls
        .iter()
        .map(|c| (Var::wire(c.qubit, 0), c.value))
        .collect();
    let target_in: Vec<Var> = gate.targets.iter().map(|&t| Var::wire(t, 0)).collect();
    let target_out: Vec<Var> = if gate.is_diagonal() {
        target_in.clone()
    } else {
        gate.targets.iter().map(|&t| Var::wire(t, 1)).collect()
    };
    GateLegs {
        controls,
        target_in,
        target_out,
    }
}

/// The scalar 2-amplitude pairs of some common single-qubit states, for
/// building initial subspaces: `|0>`, `|1>`, `|+>`, `|->`.
pub mod states {
    use qits_num::Cplx;

    /// Amplitudes of `|0>`.
    pub const ZERO: (Cplx, Cplx) = (Cplx::ONE, Cplx::ZERO);
    /// Amplitudes of `|1>`.
    pub const ONE: (Cplx, Cplx) = (Cplx::ZERO, Cplx::ONE);
    /// Amplitudes of `|+>`.
    pub const PLUS: (Cplx, Cplx) = (Cplx::FRAC_1_SQRT_2, Cplx::FRAC_1_SQRT_2);
    /// Amplitudes of `|->`.
    pub const MINUS: (Cplx, Cplx) = (
        Cplx::FRAC_1_SQRT_2,
        Cplx {
            re: -std::f64::consts::FRAC_1_SQRT_2,
            im: 0.0,
        },
    );
}

/// Applies a gate TDD to a dense ket for cross-checking in tests: returns
/// the dense output tensor over the gate's output legs.
#[doc(hidden)]
pub fn apply_to_dense(
    m: &mut TddManager,
    gate_edge: Edge,
    ket: &Tensor,
    sum_vars: &[Var],
) -> Tensor {
    let ket_edge = m.from_tensor(ket);
    let out = m.contract(gate_edge, ket_edge, sum_vars);
    let support: Vec<Var> = m.support(out).iter().collect();
    m.to_tensor(out, &support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::sim;
    use qits_num::{Cplx, Mat};

    /// Cross-check a gate TDD against the dense simulator on every basis
    /// state of a small register.
    fn check_gate_against_sim(gate: &Gate, n: u32) {
        let mut m = TddManager::new();
        // Legs: every wire w has input (w,0); non-diagonal targets output
        // at (w,1); controls/diagonal share (w,0).
        let legs = standalone_legs(gate);
        let e = gate_tdd(&mut m, gate, &legs);

        // Variables of input and output for the full register.
        let in_vars: Vec<Var> = (0..n).map(|q| Var::wire(q, 0)).collect();
        let out_var_of = |q: u32| -> Var {
            if gate.targets.contains(&q) && !gate.is_diagonal() {
                Var::wire(q, 1)
            } else {
                Var::wire(q, 0)
            }
        };

        for idx in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|q| (idx >> (n - 1 - q)) & 1 == 1).collect();
            let ket = m.basis_ket(&in_vars, &bits);
            // Sum over the gate's *input* legs only for non-diagonal
            // targets; shared legs stay free and are then read off.
            let sum: Vec<Var> = if gate.is_diagonal() {
                vec![]
            } else {
                gate.targets.iter().map(|&t| Var::wire(t, 0)).collect()
            };
            let out = m.contract(e, ket, &sum);
            let expect = sim::apply_gate(&sim::basis_state(n, idx), n, gate);
            for (jdx, amp) in expect.iter().enumerate() {
                let asn: BTreeMap<Var, bool> = (0..n)
                    .map(|q| (out_var_of(q), (jdx >> (n - 1 - q)) & 1 == 1))
                    .collect();
                // For non-target wires the output must match the input bits
                // (the gate tensor doesn't touch them).
                let input_consistent = (0..n).all(|q| {
                    gate.targets.contains(&q) || ((jdx >> (n - 1 - q)) & 1 == 1) == bits[q as usize]
                });
                if !input_consistent {
                    continue;
                }
                let got = m.eval(out, &asn);
                assert!(
                    got.approx_eq(*amp),
                    "{gate}: in {idx:0w$b} out {jdx:0w$b}: got {got}, want {amp}",
                    w = n as usize
                );
            }
        }
    }

    #[test]
    fn hadamard_tdd_matches_sim() {
        check_gate_against_sim(&Gate::h(0), 1);
    }

    #[test]
    fn cx_tdd_matches_sim() {
        check_gate_against_sim(&Gate::cx(0, 1), 2);
        check_gate_against_sim(&Gate::cx(1, 0), 2);
    }

    #[test]
    fn ccx_tdd_matches_sim() {
        check_gate_against_sim(&Gate::ccx(0, 1, 2), 3);
    }

    #[test]
    fn negative_control_tdd_matches_sim() {
        check_gate_against_sim(&Gate::mcx_polarity(&[(0, false), (2, true)], 1), 3);
    }

    #[test]
    fn diagonal_cp_tdd_matches_sim() {
        check_gate_against_sim(&Gate::cp(0, 1, 0.73), 2);
        check_gate_against_sim(&Gate::z(0), 1);
        check_gate_against_sim(&Gate::phase(0, 1.234), 1);
    }

    #[test]
    fn swap_tdd_matches_sim() {
        check_gate_against_sim(&Gate::swap(0, 1), 2);
    }

    #[test]
    fn projector_tdd_matches_sim() {
        check_gate_against_sim(&Gate::projector(0, true), 1);
        check_gate_against_sim(&Gate::projector(0, false), 1);
    }

    #[test]
    fn static_order_natural_is_the_var_order() {
        let order = static_order(3, &[], StaticOrder::Natural);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], Var::wire(0, 0));
        assert_eq!(order[1], Var::wire(0, 1));
    }

    #[test]
    fn static_order_position_major_separates_kets_from_rows() {
        let order = static_order(3, &[], StaticOrder::PositionMajor);
        assert_eq!(
            order,
            vec![
                Var::wire(0, 0),
                Var::wire(1, 0),
                Var::wire(2, 0),
                Var::wire(0, 1),
                Var::wire(1, 1),
                Var::wire(2, 1),
            ]
        );
    }

    #[test]
    fn gate_locality_follows_the_interaction_graph() {
        // Gates touch (2,0) then (0,3); qubit 1 is untouched. BFS from
        // qubit 2 (first seen) visits 0, then 3 through 0's edge, and
        // appends the untouched qubit 1 last.
        let op = crate::Operation::new("chain", 4)
            .then_gate(Gate::cx(2, 0))
            .then_gate(Gate::cx(0, 3));
        let order = static_order(4, &[op], StaticOrder::GateLocality);
        let qubits: Vec<u32> = order.iter().step_by(2).map(|v| v.qubit()).collect();
        assert_eq!(qubits, vec![2, 0, 3, 1]);
        // Ket and row stay interleaved per qubit.
        assert_eq!(order[0], Var::wire(2, 0));
        assert_eq!(order[1], Var::wire(2, 1));
    }

    #[test]
    fn mcx_node_count_is_linear_in_controls() {
        // The whole point of symbolic folding: no exponential blow-up.
        let mut m = TddManager::new();
        let controls: Vec<u32> = (0..40).collect();
        let gate = Gate::mcx(&controls, 40);
        let legs = standalone_legs(&gate);
        let e = gate_tdd(&mut m, &gate, &legs);
        let nodes = m.node_count(e);
        assert!(nodes <= 3 * 41, "MCX TDD has {nodes} nodes");
    }

    #[test]
    fn controlled_custom_nonunitary() {
        let damp = Mat::from_rows(&[&[Cplx::ONE, Cplx::ZERO], &[Cplx::ZERO, Cplx::real(0.5)]]);
        let g = Gate::new(
            GateKind::Custom1(damp),
            vec![1],
            vec![crate::Control {
                qubit: 0,
                value: true,
            }],
        );
        check_gate_against_sim(&g, 2);
    }
}
