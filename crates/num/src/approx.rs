//! Tolerance-based floating-point comparisons.
//!
//! Decision-diagram canonicity (weight interning in `qits-tdd`) and subspace
//! rank decisions (`qits` Gram–Schmidt) both need a single, shared notion of
//! "numerically equal". Keeping the tolerance here avoids every crate
//! inventing its own epsilon.

/// Default absolute tolerance used across the workspace.
///
/// Chosen so that products of O(hundreds) of gate amplitudes (each exact to
/// ~1e-16) stay well inside it, while genuinely distinct amplitudes produced
/// by the benchmark circuits (multiples of `1/sqrt(2)^k`, `e^{i pi/2^k}`) stay
/// well outside it for the circuit depths the paper evaluates.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Absolute-difference equality test: `|a - b| <= tol`.
///
/// ```
/// use qits_num::approx::approx_eq_f64;
/// assert!(approx_eq_f64(0.1 + 0.2, 0.3, 1e-12));
/// assert!(!approx_eq_f64(1.0, 1.1, 1e-12));
/// ```
#[inline]
pub fn approx_eq_f64(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Rounds `x` to the nearest multiple of `grid`.
///
/// Used by the TDD complex table to derive hash-bucket keys; equality is
/// still decided by [`approx_eq_f64`], buckets only narrow the search.
#[inline]
pub fn snap_to_grid(x: f64, grid: f64) -> f64 {
    (x / grid).round() * grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_symmetric() {
        assert!(approx_eq_f64(1.0, 1.0 + 1e-12, 1e-10));
        assert!(approx_eq_f64(1.0 + 1e-12, 1.0, 1e-10));
    }

    #[test]
    fn approx_eq_boundary() {
        assert!(approx_eq_f64(0.0, 1e-10, 1e-10));
        assert!(!approx_eq_f64(0.0, 2e-10, 1e-10));
    }

    #[test]
    fn snapping() {
        assert_eq!(snap_to_grid(0.1234, 0.01), 0.12);
        // f64::round rounds half away from zero.
        assert_eq!(snap_to_grid(-0.005, 0.01), -0.01);
        assert_eq!(snap_to_grid(7.0, 1.0), 7.0);
    }
}
