//! Complex arithmetic and small dense linear algebra for the `qits` workspace.
//!
//! This crate is the numeric substrate shared by every other `qits` crate:
//!
//! * [`Cplx`] — a plain `f64` complex number with the operator overloads,
//!   conjugation, and polar helpers needed by quantum gate matrices and
//!   tensor decision diagram weights.
//! * [`approx`] — tolerance-based comparison helpers. Decision-diagram
//!   canonicity and subspace ranks hinge on a consistent notion of
//!   "numerically zero", so the tolerance lives here, in one place.
//! * [`matrix`] — dense square complex matrices ([`matrix::Mat`]) used for
//!   gate definitions and for the brute-force oracles the test suites
//!   compare symbolic results against.
//! * [`linalg`] — dense vector routines (inner products, Gram–Schmidt)
//!   mirroring the subspace calculus of the paper, again for use as a
//!   reference implementation.
//!
//! # Example
//!
//! ```
//! use qits_num::Cplx;
//!
//! let h = Cplx::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
//! let amp = h * Cplx::I;
//! assert!((amp.norm_sqr() - 0.5).abs() < 1e-12);
//! ```

pub mod approx;
pub mod linalg;
pub mod matrix;

mod cplx;

pub use approx::{approx_eq_f64, DEFAULT_TOLERANCE};
pub use cplx::Cplx;
pub use matrix::Mat;
