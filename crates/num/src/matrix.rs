//! Dense square complex matrices.
//!
//! [`Mat`] backs two things in the workspace:
//!
//! 1. **Gate definitions** — every base gate in `qits-circuit` is a 2x2 or
//!    4x4 [`Mat`] before controls are folded around it symbolically.
//! 2. **Brute-force oracles** — test suites build the full `2^n x 2^n`
//!    operator of a small circuit with [`Mat::kron`] / [`Mat::matmul`] and
//!    compare against the symbolic TDD pipeline.
//!
//! Dimensions are powers of two throughout `qits`, but nothing here assumes
//! it except [`Mat::qubits`].

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Cplx;

/// A dense, row-major, square complex matrix.
///
/// # Example
///
/// ```
/// use qits_num::{Cplx, Mat};
///
/// let x = Mat::from_rows(&[
///     &[Cplx::ZERO, Cplx::ONE],
///     &[Cplx::ONE, Cplx::ZERO],
/// ]);
/// assert!(x.matmul(&x).approx_eq(&Mat::identity(2)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    dim: usize,
    data: Vec<Cplx>,
}

impl Mat {
    /// Creates a `dim x dim` zero matrix.
    pub fn zeros(dim: usize) -> Self {
        Mat {
            dim,
            data: vec![Cplx::ZERO; dim * dim],
        }
    }

    /// Creates the `dim x dim` identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = Mat::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = Cplx::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all of length `rows.len()` (the matrix must
    /// be square).
    pub fn from_rows(rows: &[&[Cplx]]) -> Self {
        let dim = rows.len();
        let mut m = Mat::zeros(dim);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "matrix must be square");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds a diagonal matrix from its diagonal entries.
    pub fn diagonal(diag: &[Cplx]) -> Self {
        let mut m = Mat::zeros(diag.len());
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// The dimension (number of rows = number of columns).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of qubits this matrix acts on.
    ///
    /// # Panics
    ///
    /// Panics if the dimension is not a power of two.
    pub fn qubits(&self) -> usize {
        assert!(
            self.dim.is_power_of_two(),
            "dimension {} not a power of two",
            self.dim
        );
        self.dim.trailing_zeros() as usize
    }

    /// Row-major access to the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[Cplx] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.dim, rhs.dim, "dimension mismatch in matmul");
        let n = self.dim;
        let mut out = Mat::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn matvec(&self, v: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(v.len(), self.dim, "dimension mismatch in matvec");
        let n = self.dim;
        let mut out = vec![Cplx::ZERO; n];
        for i in 0..n {
            let mut acc = Cplx::ZERO;
            for j in 0..n {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self (x) rhs`.
    pub fn kron(&self, rhs: &Mat) -> Mat {
        let (a, b) = (self.dim, rhs.dim);
        let mut out = Mat::zeros(a * b);
        for i in 0..a {
            for j in 0..a {
                let v = self[(i, j)];
                if v.is_zero() {
                    continue;
                }
                for k in 0..b {
                    for l in 0..b {
                        out[(i * b + k, j * b + l)] = v * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// The (non-conjugating) transpose.
    pub fn transpose(&self) -> Mat {
        let n = self.dim;
        let mut out = Mat::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// The conjugate transpose.
    pub fn adjoint(&self) -> Mat {
        let n = self.dim;
        let mut out = Mat::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Sum of two matrices.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.dim, rhs.dim, "dimension mismatch in add");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += *r;
        }
        out
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: Cplx) -> Mat {
        let mut out = self.clone();
        for o in out.data.iter_mut() {
            *o *= k;
        }
        out
    }

    /// Whether the entries of `self` and `rhs` agree within the default
    /// tolerance.
    pub fn approx_eq(&self, rhs: &Mat) -> bool {
        self.dim == rhs.dim
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(a, b)| a.approx_eq(*b))
    }

    /// Whether `self * self^dagger = I` within the default tolerance.
    pub fn is_unitary(&self) -> bool {
        self.matmul(&self.adjoint())
            .approx_eq(&Mat::identity(self.dim))
    }

    /// Whether the matrix is diagonal within the default tolerance.
    ///
    /// Diagonal gates are represented with a single (shared) tensor-network
    /// index per wire, which is what makes the paper's hyper-edge interaction
    /// graph (Fig. 5) and the small QFT diagrams possible.
    pub fn is_diagonal(&self) -> bool {
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i != j && !self[(i, j)].is_zero() {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = Cplx;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Cplx {
        &self.data[i * self.dim + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Cplx {
        &mut self.data[i * self.dim + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.dim {
            for j in 0..self.dim {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>8.4}", format!("{}", self[(i, j)]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hadamard() -> Mat {
        let h = Cplx::FRAC_1_SQRT_2;
        Mat::from_rows(&[&[h, h], &[h, -h]])
    }

    #[test]
    fn identity_is_neutral() {
        let h = hadamard();
        assert!(h.matmul(&Mat::identity(2)).approx_eq(&h));
        assert!(Mat::identity(2).matmul(&h).approx_eq(&h));
    }

    #[test]
    fn hadamard_is_unitary_and_self_inverse() {
        let h = hadamard();
        assert!(h.is_unitary());
        assert!(h.matmul(&h).approx_eq(&Mat::identity(2)));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = Mat::from_rows(&[&[Cplx::ZERO, Cplx::ONE], &[Cplx::ONE, Cplx::ZERO]]);
        let xx = x.kron(&x);
        assert_eq!(xx.dim(), 4);
        // X (x) X maps |00> -> |11>.
        let v = xx.matvec(&[Cplx::ONE, Cplx::ZERO, Cplx::ZERO, Cplx::ZERO]);
        assert!(v[3].approx_eq(Cplx::ONE));
        assert!(v[0].approx_eq(Cplx::ZERO));
    }

    #[test]
    fn adjoint_conjugates() {
        let m = Mat::from_rows(&[
            &[Cplx::new(1.0, 2.0), Cplx::new(0.0, 1.0)],
            &[Cplx::ZERO, Cplx::new(-1.0, 0.5)],
        ]);
        let a = m.adjoint();
        assert!(a[(0, 0)].approx_eq(Cplx::new(1.0, -2.0)));
        assert!(a[(1, 0)].approx_eq(Cplx::new(0.0, -1.0)));
    }

    #[test]
    fn diagonal_detection() {
        let z = Mat::diagonal(&[Cplx::ONE, Cplx::NEG_ONE]);
        assert!(z.is_diagonal());
        assert!(!hadamard().is_diagonal());
    }

    #[test]
    fn qubit_count() {
        assert_eq!(Mat::identity(8).qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn qubit_count_rejects_non_power() {
        let _ = Mat::identity(3).qubits();
    }

    #[test]
    fn matvec_matches_matmul() {
        let h = hadamard();
        let v = vec![Cplx::ONE, Cplx::ZERO];
        let mv = h.matvec(&v);
        assert!(mv[0].approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(mv[1].approx_eq(Cplx::FRAC_1_SQRT_2));
    }
}
