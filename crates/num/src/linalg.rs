//! Dense vector routines used as reference implementations.
//!
//! The `qits` core crate performs all subspace arithmetic symbolically on
//! TDDs; these dense equivalents exist so tests can check the symbolic
//! pipeline against textbook linear algebra on small systems.

use crate::{Cplx, DEFAULT_TOLERANCE};

/// Hermitian inner product `<a|b>` (conjugate-linear in the first argument).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn inner(a: &[Cplx], b: &[Cplx]) -> Cplx {
    assert_eq!(a.len(), b.len(), "inner product dimension mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
}

/// Euclidean norm of a complex vector.
pub fn norm(v: &[Cplx]) -> f64 {
    inner(v, v).re.max(0.0).sqrt()
}

/// Scales `v` in place by `k`.
pub fn scale_in_place(v: &mut [Cplx], k: Cplx) {
    for x in v.iter_mut() {
        *x *= k;
    }
}

/// Returns `a - k*b` element-wise.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn axpy_neg(a: &[Cplx], k: Cplx, b: &[Cplx]) -> Vec<Cplx> {
    assert_eq!(a.len(), b.len(), "axpy dimension mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| *x - k * *y).collect()
}

/// Orthonormalises `vectors` with modified Gram–Schmidt, dropping
/// numerically-zero residuals.
///
/// This is the dense mirror of the paper's subspace-join procedure
/// (Section IV-B): the result spans the same space and is orthonormal.
///
/// ```
/// use qits_num::{Cplx, linalg::gram_schmidt};
/// let e0 = vec![Cplx::ONE, Cplx::ZERO];
/// let sum = vec![Cplx::ONE, Cplx::ONE];
/// let basis = gram_schmidt(&[e0, sum]);
/// assert_eq!(basis.len(), 2);
/// ```
pub fn gram_schmidt(vectors: &[Vec<Cplx>]) -> Vec<Vec<Cplx>> {
    let mut basis: Vec<Vec<Cplx>> = Vec::new();
    for v in vectors {
        let mut u = v.clone();
        for b in &basis {
            let c = inner(b, &u);
            u = axpy_neg(&u, c, b);
        }
        let n = norm(&u);
        if n > DEFAULT_TOLERANCE.sqrt() {
            scale_in_place(&mut u, Cplx::real(1.0 / n));
            basis.push(u);
        }
    }
    basis
}

/// The rank of the span of `vectors` (dimension of the subspace).
pub fn rank(vectors: &[Vec<Cplx>]) -> usize {
    gram_schmidt(vectors).len()
}

/// Whether `v` lies in the span of the orthonormal set `basis`, within the
/// default tolerance.
pub fn in_span(basis: &[Vec<Cplx>], v: &[Cplx]) -> bool {
    let mut residual = v.to_vec();
    for b in basis {
        let c = inner(b, &residual);
        residual = axpy_neg(&residual, c, b);
    }
    norm(&residual) <= DEFAULT_TOLERANCE.sqrt() * (v.len() as f64).sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Cplx {
        Cplx::real(re)
    }

    #[test]
    fn inner_product_conjugates_left() {
        let a = vec![Cplx::I];
        let b = vec![Cplx::ONE];
        assert!(inner(&a, &b).approx_eq(-Cplx::I));
        assert!(inner(&b, &a).approx_eq(Cplx::I));
    }

    #[test]
    fn norm_of_unit_vectors() {
        let v = vec![Cplx::FRAC_1_SQRT_2, Cplx::FRAC_1_SQRT_2];
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gram_schmidt_orthonormalises() {
        let v1 = vec![c(1.0), c(1.0), c(0.0)];
        let v2 = vec![c(1.0), c(0.0), c(1.0)];
        let basis = gram_schmidt(&[v1, v2]);
        assert_eq!(basis.len(), 2);
        assert!((norm(&basis[0]) - 1.0).abs() < 1e-10);
        assert!((norm(&basis[1]) - 1.0).abs() < 1e-10);
        assert!(inner(&basis[0], &basis[1]).is_zero_with(1e-10));
    }

    #[test]
    fn gram_schmidt_drops_dependent_vectors() {
        let v1 = vec![c(1.0), c(0.0)];
        let v2 = vec![c(2.0), c(0.0)];
        let v3 = vec![c(0.0), c(3.0)];
        assert_eq!(rank(&[v1, v2, v3]), 2);
    }

    #[test]
    fn span_membership() {
        let basis = gram_schmidt(&[vec![c(1.0), c(1.0)]]);
        assert!(in_span(&basis, &[c(2.0), c(2.0)]));
        assert!(!in_span(&basis, &[c(1.0), c(-1.0)]));
    }

    #[test]
    fn empty_rank_is_zero() {
        assert_eq!(rank(&[]), 0);
        assert_eq!(rank(&[vec![Cplx::ZERO, Cplx::ZERO]]), 0);
    }
}
