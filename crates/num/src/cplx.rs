//! The [`Cplx`] complex-number type.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::approx::{approx_eq_f64, DEFAULT_TOLERANCE};

/// A complex number backed by two `f64` components.
///
/// `qits` deliberately rolls its own complex type instead of pulling in a
/// numerics crate: the workspace needs exactly the operations below, plus
/// tolerance-aware helpers ([`Cplx::approx_eq`], [`Cplx::is_zero`]) that match
/// the decision-diagram weight-interning semantics in `qits-tdd`.
///
/// # Example
///
/// ```
/// use qits_num::Cplx;
///
/// let omega = Cplx::from_polar(1.0, std::f64::consts::FRAC_PI_4);
/// assert!((omega * omega.conj()).approx_eq(Cplx::ONE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Cplx {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };
    /// `-1 + 0i`.
    pub const NEG_ONE: Cplx = Cplx { re: -1.0, im: 0.0 };
    /// `1/sqrt(2)`, the ubiquitous Hadamard amplitude.
    pub const FRAC_1_SQRT_2: Cplx = Cplx {
        re: std::f64::consts::FRAC_1_SQRT_2,
        im: 0.0,
    };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Creates a real-valued complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    ///
    /// ```
    /// use qits_num::Cplx;
    /// let minus_one = Cplx::from_polar(1.0, std::f64::consts::PI);
    /// assert!(minus_one.approx_eq(Cplx::NEG_ONE));
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Cplx::new(r * theta.cos(), r * theta.sin())
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx::new(self.re, -self.im)
    }

    /// The squared magnitude `|z|^2`. Cheaper than [`Cplx::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns [`Cplx::ZERO`] divided by zero semantics (infinities/NaN) if
    /// `self` is exactly zero; callers in this workspace guard with
    /// [`Cplx::is_zero`] first.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Cplx::new(self.re / d, -self.im / d)
    }

    /// The principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Cplx::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Whether both components are within [`DEFAULT_TOLERANCE`] of zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.is_zero_with(DEFAULT_TOLERANCE)
    }

    /// Whether both components are within `tol` of zero.
    #[inline]
    pub fn is_zero_with(self, tol: f64) -> bool {
        self.re.abs() <= tol && self.im.abs() <= tol
    }

    /// Component-wise approximate equality at [`DEFAULT_TOLERANCE`].
    #[inline]
    pub fn approx_eq(self, other: Cplx) -> bool {
        self.approx_eq_with(other, DEFAULT_TOLERANCE)
    }

    /// Component-wise approximate equality at tolerance `tol`.
    #[inline]
    pub fn approx_eq_with(self, other: Cplx, tol: f64) -> bool {
        approx_eq_f64(self.re, other.re, tol) && approx_eq_f64(self.im, other.im, tol)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Cplx::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Cplx) {
        *self = *self + rhs;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cplx {
    #[inline]
    fn sub_assign(&mut self, rhs: Cplx) {
        *self = *self - rhs;
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cplx {
    #[inline]
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

impl Div for Cplx {
    type Output = Cplx;
    #[inline]
    // Division via the reciprocal is the intended formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Cplx) -> Cplx {
        self * rhs.recip()
    }
}

impl DivAssign for Cplx {
    #[inline]
    fn div_assign(&mut self, rhs: Cplx) {
        *self = *self / rhs;
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: f64) -> Cplx {
        self.scale(rhs)
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ZERO, |a, b| a + b)
    }
}

impl Product for Cplx {
    fn product<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ONE, |a, b| a * b)
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        assert_eq!(Cplx::ONE + Cplx::NEG_ONE, Cplx::ZERO);
        assert_eq!(Cplx::I * Cplx::I, Cplx::NEG_ONE);
        assert!((Cplx::FRAC_1_SQRT_2.norm_sqr() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Cplx::new(1.5, -2.0);
        let b = Cplx::new(-0.25, 3.0);
        assert!((a + b - b).approx_eq(a));
        assert!((a * b / b).approx_eq(a));
        assert!((-a + a).approx_eq(Cplx::ZERO));
        assert!((a * a.recip()).approx_eq(Cplx::ONE));
    }

    #[test]
    fn conjugation_and_norm() {
        let a = Cplx::new(3.0, 4.0);
        assert_eq!(a.conj().im, -4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!((a * a.conj()).approx_eq(Cplx::real(25.0)));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cplx::new(-1.0, 1.0);
        let back = Cplx::from_polar(z.abs(), z.arg());
        assert!(back.approx_eq(z));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            Cplx::new(2.0, 0.0),
            Cplx::new(0.0, 1.0),
            Cplx::new(-3.0, 4.0),
        ] {
            let r = z.sqrt();
            assert!((r * r).approx_eq(z), "sqrt({z}) = {r}");
        }
    }

    #[test]
    fn zero_detection_uses_tolerance() {
        assert!(Cplx::new(1e-14, -1e-14).is_zero());
        assert!(!Cplx::new(1e-6, 0.0).is_zero());
        assert!(Cplx::new(0.1, 0.0).is_zero_with(0.2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cplx::real(2.0).to_string(), "2");
        assert_eq!(Cplx::new(0.0, -1.0).to_string(), "-1i");
        assert_eq!(Cplx::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(Cplx::new(1.0, -1.0).to_string(), "1-1i");
    }

    #[test]
    fn sums_and_products() {
        let xs = [Cplx::ONE, Cplx::I, Cplx::NEG_ONE];
        let s: Cplx = xs.iter().copied().sum();
        assert!(s.approx_eq(Cplx::I));
        let p: Cplx = xs.iter().copied().product();
        assert!(p.approx_eq(-Cplx::I));
    }
}
