//! Dense named-index tensors — the reference semantics for `qits`.
//!
//! Everything the symbolic pipeline does (TDD contraction, slicing,
//! addition, renaming) has a dense, obviously-correct counterpart here.
//! The dense representation is exponential in the number of indices, so it
//! is only used for gate bases (rank <= 4) and for cross-checking symbolic
//! results on small systems in tests — exactly the role BDD packages give
//! explicit truth tables.
//!
//! The crate also defines [`Var`], the *global index* type shared by the
//! whole workspace: every tensor-network index is a `Var`, ordered by
//! `(qubit, position-on-wire)`. See the crate-level docs of `qits-tdd` for
//! how this ordering yields the interleaved variable order of the paper's
//! Fig. 1.

mod dense;
mod var;

pub use dense::Tensor;
pub use var::{Var, VarSet};
