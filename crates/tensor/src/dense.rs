//! Dense tensor representation and operations.

use std::collections::BTreeMap;
use std::fmt;

use qits_num::{Cplx, Mat};

use crate::{Var, VarSet};

/// A dense tensor over binary indices, stored in variable order.
///
/// Entry layout: for sorted variables `v_0 < v_1 < ... < v_{k-1}`, the value
/// at assignment `(a_0, ..., a_{k-1})` lives at offset
/// `a_0 * 2^{k-1} + a_1 * 2^{k-2} + ... + a_{k-1}` — the *first* variable is
/// the most significant bit, matching how decision diagrams branch first on
/// the smallest variable.
///
/// # Example
///
/// ```
/// use qits_num::Cplx;
/// use qits_tensor::{Tensor, Var};
///
/// // The Hadamard gate as a rank-2 tensor over column var x, row var y.
/// let h = Cplx::FRAC_1_SQRT_2;
/// let t = Tensor::new(vec![Var(0), Var(1)], vec![h, h, h, -h]);
/// assert!(t.value_at(0b01).approx_eq(h)); // <1|H|0>
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    vars: VarSet,
    data: Vec<Cplx>,
}

impl Tensor {
    /// Creates a tensor from sorted variables and `2^k` values.
    ///
    /// # Panics
    ///
    /// Panics if `vars` are not strictly ascending or `data.len() != 2^k`.
    pub fn new(vars: Vec<Var>, data: Vec<Cplx>) -> Self {
        assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "tensor variables must be strictly ascending"
        );
        assert_eq!(
            data.len(),
            1usize << vars.len(),
            "data length must be 2^rank"
        );
        Tensor {
            vars: VarSet::from_iter(vars),
            data,
        }
    }

    /// The scalar tensor (rank 0) with the given value.
    pub fn scalar(value: Cplx) -> Self {
        Tensor {
            vars: VarSet::new(),
            data: vec![value],
        }
    }

    /// The all-zero tensor over `vars`.
    pub fn zeros(vars: Vec<Var>) -> Self {
        let n = vars.len();
        Tensor::new(vars, vec![Cplx::ZERO; 1 << n])
    }

    /// Builds a rank-`2k` tensor from a `2^k x 2^k` matrix.
    ///
    /// `col_vars` index the matrix columns (kets in), `row_vars` the rows
    /// (kets out); both are given most-significant-qubit first, mirroring
    /// the usual binary encoding of computational basis states.
    ///
    /// # Panics
    ///
    /// Panics if variable counts do not match the matrix dimension or any
    /// variable is repeated.
    pub fn from_matrix(m: &Mat, col_vars: &[Var], row_vars: &[Var]) -> Self {
        let k = m.qubits();
        assert_eq!(col_vars.len(), k, "need one column var per qubit");
        assert_eq!(row_vars.len(), k, "need one row var per qubit");
        let mut all: Vec<Var> = col_vars.iter().chain(row_vars.iter()).copied().collect();
        all.sort_unstable();
        assert!(
            all.windows(2).all(|w| w[0] < w[1]),
            "matrix tensor variables must be distinct"
        );
        let mut t = Tensor::zeros(all);
        for row in 0..m.dim() {
            for col in 0..m.dim() {
                let v = m[(row, col)];
                if v.is_zero() {
                    continue;
                }
                let mut asn: BTreeMap<Var, bool> = BTreeMap::new();
                for (bit, var) in col_vars.iter().enumerate() {
                    asn.insert(*var, (col >> (k - 1 - bit)) & 1 == 1);
                }
                for (bit, var) in row_vars.iter().enumerate() {
                    asn.insert(*var, (row >> (k - 1 - bit)) & 1 == 1);
                }
                let off = t.offset_of(&asn);
                t.data[off] = v;
            }
        }
        t
    }

    /// The tensor's variables in ascending order.
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// The rank (number of indices).
    pub fn rank(&self) -> usize {
        self.vars.len()
    }

    /// Raw data in variable-order layout.
    pub fn as_slice(&self) -> &[Cplx] {
        &self.data
    }

    /// Value at the packed assignment `bits`, where bit `k-1-i` of `bits`
    /// holds the value of the `i`-th (smallest) variable.
    pub fn value_at(&self, bits: usize) -> Cplx {
        self.data[bits]
    }

    /// Value at a full assignment of this tensor's variables.
    ///
    /// Extra variables in `asn` are ignored; missing ones panic.
    pub fn value(&self, asn: &BTreeMap<Var, bool>) -> Cplx {
        self.data[self.offset_of(asn)]
    }

    /// Sets the entry at a full assignment of this tensor's variables.
    ///
    /// # Panics
    ///
    /// Panics if `asn` misses one of this tensor's variables.
    pub fn set(&mut self, asn: &BTreeMap<Var, bool>, value: Cplx) {
        let off = self.offset_of(asn);
        self.data[off] = value;
    }

    fn offset_of(&self, asn: &BTreeMap<Var, bool>) -> usize {
        let k = self.rank();
        let mut off = 0usize;
        for (i, v) in self.vars.iter().enumerate() {
            let bit = *asn
                .get(&v)
                .unwrap_or_else(|| panic!("assignment missing variable {v}"));
            if bit {
                off |= 1 << (k - 1 - i);
            }
        }
        off
    }

    /// Element-wise sum. Both tensors must have identical variable sets.
    ///
    /// # Panics
    ///
    /// Panics if the variable sets differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.vars, other.vars,
            "tensor addition needs equal index sets"
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| *a + *b)
            .collect();
        Tensor {
            vars: self.vars.clone(),
            data,
        }
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: Cplx) -> Tensor {
        Tensor {
            vars: self.vars.clone(),
            data: self.data.iter().map(|v| *v * k).collect(),
        }
    }

    /// Complex-conjugates every entry.
    pub fn conj(&self) -> Tensor {
        Tensor {
            vars: self.vars.clone(),
            data: self.data.iter().map(|v| v.conj()).collect(),
        }
    }

    /// Slices on `var = value`, removing `var` from the index set.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not an index of this tensor.
    pub fn slice(&self, var: Var, value: bool) -> Tensor {
        assert!(
            self.vars.contains(var),
            "cannot slice absent variable {var}"
        );
        let rest: Vec<Var> = self.vars.iter().filter(|v| *v != var).collect();
        let mut out = Tensor::zeros(rest);
        let mut asn = BTreeMap::new();
        for bits in 0..out.data.len() {
            asn.clear();
            for (i, v) in out.vars.iter().enumerate() {
                asn.insert(v, (bits >> (out.rank() - 1 - i)) & 1 == 1);
            }
            asn.insert(var, value);
            out.data[bits] = self.value(&asn);
        }
        out
    }

    /// Contracts two tensors, summing over `sum_vars`.
    ///
    /// The result's indices are `(vars(a) U vars(b)) \ sum_vars`. Variables
    /// in `sum_vars` that appear in *neither* operand still contribute a
    /// factor of 2 per the summation semantics — the same convention the
    /// symbolic algorithm must honour, which is exactly why this oracle
    /// exists.
    pub fn contract(a: &Tensor, b: &Tensor, sum_vars: &VarSet) -> Tensor {
        let union = a.vars.union(&b.vars).union(sum_vars);
        let out_vars = union.difference(sum_vars);
        let mut out = Tensor::zeros(out_vars.iter().collect());
        let sum_list: Vec<Var> = sum_vars.iter().collect();
        let mut asn: BTreeMap<Var, bool> = BTreeMap::new();
        for out_bits in 0..out.data.len() {
            asn.clear();
            for (i, v) in out.vars.iter().enumerate() {
                asn.insert(v, (out_bits >> (out.rank() - 1 - i)) & 1 == 1);
            }
            let mut acc = Cplx::ZERO;
            for sum_bits in 0..(1usize << sum_list.len()) {
                for (i, v) in sum_list.iter().enumerate() {
                    asn.insert(*v, (sum_bits >> (sum_list.len() - 1 - i)) & 1 == 1);
                }
                acc += a.value_masked(&asn) * b.value_masked(&asn);
            }
            out.data[out_bits] = acc;
        }
        out
    }

    /// Like [`Tensor::value`] but ignores variables this tensor lacks.
    fn value_masked(&self, asn: &BTreeMap<Var, bool>) -> Cplx {
        self.data[self.offset_of(asn)]
    }

    /// Renames variables according to `map` (old -> new).
    ///
    /// The renaming need not be monotone; data is permuted as needed.
    ///
    /// # Panics
    ///
    /// Panics if the renaming maps two variables to the same target.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> Tensor {
        let new_of = |v: Var| map.get(&v).copied().unwrap_or(v);
        let new_vars: Vec<Var> = self.vars.iter().map(new_of).collect();
        let sorted = VarSet::from_iter(new_vars.iter().copied());
        assert_eq!(
            sorted.len(),
            new_vars.len(),
            "renaming must keep variables distinct"
        );
        let mut out = Tensor::zeros(sorted.iter().collect());
        let k = self.rank();
        for bits in 0..self.data.len() {
            let mut asn = BTreeMap::new();
            for (i, v) in self.vars.iter().enumerate() {
                asn.insert(new_of(v), (bits >> (k - 1 - i)) & 1 == 1);
            }
            let off = out.offset_of(&asn);
            out.data[off] = self.data[bits];
        }
        out
    }

    /// Whether all entries agree with `other` within the default tolerance.
    pub fn approx_eq(&self, other: &Tensor) -> bool {
        self.vars == other.vars
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b))
    }

    /// Maximum entry magnitude; 0 for the empty tensor.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "](")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64) -> Cplx {
        Cplx::real(x)
    }

    fn hadamard_tensor(xv: Var, yv: Var) -> Tensor {
        let h = Cplx::FRAC_1_SQRT_2;
        let m = Mat::from_rows(&[&[h, h], &[h, -h]]);
        Tensor::from_matrix(&m, &[xv], &[yv])
    }

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(Cplx::I);
        assert_eq!(t.rank(), 0);
        assert!(t.value_at(0).approx_eq(Cplx::I));
    }

    #[test]
    fn from_matrix_layout() {
        // X gate: <y|X|x> nonzero iff y != x.
        let x = Mat::from_rows(&[&[Cplx::ZERO, Cplx::ONE], &[Cplx::ONE, Cplx::ZERO]]);
        let t = Tensor::from_matrix(&x, &[Var(0)], &[Var(1)]);
        // Offset bit0 = var0 (x index), bit1 = var1 (y index); var0 is MSB.
        assert!(t.value_at(0b01).approx_eq(Cplx::ONE)); // x=0,y=1
        assert!(t.value_at(0b10).approx_eq(Cplx::ONE)); // x=1,y=0
        assert!(t.value_at(0b00).approx_eq(Cplx::ZERO));
        assert!(t.value_at(0b11).approx_eq(Cplx::ZERO));
    }

    #[test]
    fn contract_matrix_vector_is_matvec() {
        // H |0> = |+>.
        let t = hadamard_tensor(Var(0), Var(1));
        let ket0 = Tensor::new(vec![Var(0)], vec![Cplx::ONE, Cplx::ZERO]);
        let sum: VarSet = vec![Var(0)].into();
        let out = Tensor::contract(&t, &ket0, &sum);
        assert_eq!(out.vars().as_slice(), &[Var(1)]);
        assert!(out.value_at(0).approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(out.value_at(1).approx_eq(Cplx::FRAC_1_SQRT_2));
    }

    #[test]
    fn contract_chains_matrices() {
        // H then H = identity: contract over the middle index.
        let h1 = hadamard_tensor(Var(0), Var(1));
        let h2 = hadamard_tensor(Var(1), Var(2));
        let sum: VarSet = vec![Var(1)].into();
        let id = Tensor::contract(&h1, &h2, &sum);
        let expect = Tensor::from_matrix(&Mat::identity(2), &[Var(0)], &[Var(2)]);
        assert!(id.approx_eq(&expect));
    }

    #[test]
    fn contract_phantom_sum_var_doubles() {
        // Summing over a variable absent from both operands multiplies by 2.
        let a = Tensor::scalar(c(3.0));
        let b = Tensor::scalar(c(5.0));
        let sum: VarSet = vec![Var(9)].into();
        let out = Tensor::contract(&a, &b, &sum);
        assert!(out.value_at(0).approx_eq(c(30.0)));
    }

    #[test]
    fn contract_shared_free_var_is_elementwise() {
        // A shared index not summed: element-wise (hyper-edge semantics).
        let a = Tensor::new(vec![Var(0)], vec![c(2.0), c(3.0)]);
        let b = Tensor::new(vec![Var(0)], vec![c(5.0), c(7.0)]);
        let out = Tensor::contract(&a, &b, &VarSet::new());
        assert_eq!(out.vars().as_slice(), &[Var(0)]);
        assert!(out.value_at(0).approx_eq(c(10.0)));
        assert!(out.value_at(1).approx_eq(c(21.0)));
    }

    #[test]
    fn slice_picks_hyperplane() {
        let t = hadamard_tensor(Var(0), Var(1));
        let col0 = t.slice(Var(0), false);
        assert_eq!(col0.vars().as_slice(), &[Var(1)]);
        assert!(col0.value_at(0).approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(col0.value_at(1).approx_eq(Cplx::FRAC_1_SQRT_2));
        let col1 = t.slice(Var(0), true);
        assert!(col1.value_at(1).approx_eq(-Cplx::FRAC_1_SQRT_2));
    }

    #[test]
    fn slices_recombine_to_whole() {
        // t = t|v=0 (x) |0><0| + t|v=1 (x) |1><1| — the addition-partition
        // identity, checked densely.
        let t = hadamard_tensor(Var(0), Var(1));
        let s0 = t.slice(Var(0), false);
        let s1 = t.slice(Var(0), true);
        let sel0 = Tensor::new(vec![Var(0)], vec![Cplx::ONE, Cplx::ZERO]);
        let sel1 = Tensor::new(vec![Var(0)], vec![Cplx::ZERO, Cplx::ONE]);
        let none = VarSet::new();
        let rebuilt = Tensor::contract(&s0, &sel0, &none).add(&Tensor::contract(&s1, &sel1, &none));
        assert!(rebuilt.approx_eq(&t));
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::new(vec![Var(0)], vec![c(1.0), c(2.0)]);
        let b = a.scale(c(2.0));
        let s = a.add(&b);
        assert!(s.value_at(0).approx_eq(c(3.0)));
        assert!(s.value_at(1).approx_eq(c(6.0)));
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Tensor::new(vec![Var(0)], vec![Cplx::I, c(1.0)]);
        let cj = a.conj();
        assert!(cj.value_at(0).approx_eq(-Cplx::I));
    }

    #[test]
    fn rename_non_monotone_permutes() {
        // Swap the two indices of a non-symmetric tensor: transposition.
        let x = Mat::from_rows(&[&[c(1.0), c(2.0)], &[c(3.0), c(4.0)]]);
        let t = Tensor::from_matrix(&x, &[Var(0)], &[Var(1)]);
        let mut map = BTreeMap::new();
        map.insert(Var(0), Var(1));
        map.insert(Var(1), Var(0));
        let tt = t.rename(&map);
        let expect = Tensor::from_matrix(&x.transpose(), &[Var(0)], &[Var(1)]);
        assert!(tt.approx_eq(&expect));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_vars() {
        let _ = Tensor::new(vec![Var(1), Var(0)], vec![Cplx::ZERO; 4]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rename_rejects_collisions() {
        let t = Tensor::zeros(vec![Var(0), Var(1)]);
        let mut map = BTreeMap::new();
        map.insert(Var(0), Var(1));
        let _ = t.rename(&map);
    }
}
