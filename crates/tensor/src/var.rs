//! Global tensor-network index identifiers.

use std::fmt;

/// A tensor-network index (a "variable" in decision-diagram terms).
///
/// Encodes `(qubit, position)` as `qubit << 16 | position`, so the natural
/// `u32` order is *qubit-major, then left-to-right along the wire*. With the
/// conventions used throughout `qits`:
///
/// * position `0` on each wire is the **column** (input) variable `x_i`;
/// * the last position on each wire is the **row** (output) variable `y_i`;
/// * kets occupy position `0`; projectors put `x_i` at position 0 and `y_i`
///   at position 1, giving the interleaved order `x1 < y1 < x2 < y2 < ...`
///   shown in Fig. 1 of the paper.
///
/// # Example
///
/// ```
/// use qits_tensor::Var;
/// let x0 = Var::wire(0, 0);
/// let y0 = Var::wire(0, 1);
/// let x1 = Var::wire(1, 0);
/// assert!(x0 < y0 && y0 < x1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Maximum supported position on a single wire (exclusive).
    pub const MAX_POS: u32 = 1 << 16;

    /// Creates the index at `position` on `qubit`'s wire.
    ///
    /// # Panics
    ///
    /// Panics if `position >= Var::MAX_POS` or `qubit >= Var::MAX_POS`.
    #[inline]
    pub fn wire(qubit: u32, position: u32) -> Var {
        assert!(qubit < Self::MAX_POS, "qubit {qubit} out of range");
        assert!(position < Self::MAX_POS, "position {position} out of range");
        Var((qubit << 16) | position)
    }

    /// The qubit whose wire this index lives on.
    #[inline]
    pub fn qubit(self) -> u32 {
        self.0 >> 16
    }

    /// The position of this index along its wire.
    #[inline]
    pub fn position(self) -> u32 {
        self.0 & 0xFFFF
    }

    /// The ket variable (position 0) for `qubit`.
    #[inline]
    pub fn ket(qubit: u32) -> Var {
        Var::wire(qubit, 0)
    }

    /// The projector row variable (position 1) for `qubit`.
    #[inline]
    pub fn row(qubit: u32) -> Var {
        Var::wire(qubit, 1)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}.{}", self.qubit(), self.position())
    }
}

/// A sorted set of [`Var`]s.
///
/// Kept as a sorted `Vec` because the sets in play are small (the indices of
/// one tensor) and the dominant operations are ordered traversal and merge.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    vars: Vec<Var>,
}

impl VarSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Creates a set from an iterator, sorting and deduplicating.
    ///
    /// Also available through the `FromIterator` trait; the inherent
    /// method keeps `VarSet::from_iter(..)` calls working without a
    /// `use` of the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        let mut vars: Vec<Var> = iter.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        VarSet { vars }
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: Var) -> bool {
        self.vars.binary_search(&v).is_ok()
    }

    /// Inserts `v`, keeping the set sorted. Returns `true` if newly added.
    pub fn insert(&mut self, v: Var) -> bool {
        match self.vars.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.vars.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v`. Returns `true` if it was present.
    pub fn remove(&mut self, v: Var) -> bool {
        match self.vars.binary_search(&v) {
            Ok(pos) => {
                self.vars.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The smallest variable, if any.
    pub fn min(&self) -> Option<Var> {
        self.vars.first().copied()
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.vars[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.vars[i..]);
        out.extend_from_slice(&other.vars[j..]);
        VarSet { vars: out }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        VarSet {
            vars: self
                .vars
                .iter()
                .copied()
                .filter(|v| other.contains(*v))
                .collect(),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        VarSet {
            vars: self
                .vars
                .iter()
                .copied()
                .filter(|v| !other.contains(*v))
                .collect(),
        }
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }

    /// The sorted variables as a slice.
    pub fn as_slice(&self) -> &[Var] {
        &self.vars
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        VarSet::from_iter(iter)
    }
}

impl From<Vec<Var>> for VarSet {
    fn from(vars: Vec<Var>) -> Self {
        VarSet::from_iter(vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encoding_orders_qubit_major() {
        assert!(Var::wire(0, 5) < Var::wire(1, 0));
        assert!(Var::wire(2, 0) < Var::wire(2, 1));
        assert_eq!(Var::wire(3, 7).qubit(), 3);
        assert_eq!(Var::wire(3, 7).position(), 7);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Var::wire(2, 4).to_string(), "q2.4");
    }

    #[test]
    fn varset_operations() {
        let a: VarSet = vec![Var(3), Var(1), Var(2), Var(1)].into();
        assert_eq!(a.len(), 3);
        assert_eq!(a.min(), Some(Var(1)));
        assert!(a.contains(Var(2)));

        let b: VarSet = vec![Var(2), Var(4)].into();
        assert_eq!(a.union(&b).as_slice(), &[Var(1), Var(2), Var(3), Var(4)]);
        assert_eq!(a.intersection(&b).as_slice(), &[Var(2)]);
        assert_eq!(a.difference(&b).as_slice(), &[Var(1), Var(3)]);
    }

    #[test]
    fn varset_insert_remove() {
        let mut s = VarSet::new();
        assert!(s.insert(Var(5)));
        assert!(!s.insert(Var(5)));
        assert!(s.insert(Var(1)));
        assert_eq!(s.as_slice(), &[Var(1), Var(5)]);
        assert!(s.remove(Var(1)));
        assert!(!s.remove(Var(1)));
        assert_eq!(s.as_slice(), &[Var(5)]);
    }
}
