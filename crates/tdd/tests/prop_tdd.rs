//! Property-based tests for the TDD package: every operation is checked
//! against the dense tensor oracle on random inputs, and the canonicity
//! invariants are exercised directly.

use proptest::prelude::*;

use qits_num::Cplx;
use qits_tdd::{Edge, TddManager};
use qits_tensor::{Tensor, Var, VarSet};

/// A random dense tensor over the given variables, with entries from a
/// small lattice (so exact zeros and coincidences occur often — the
/// interesting cases for reduction and normalisation).
fn arb_tensor(vars: Vec<Var>) -> impl Strategy<Value = Tensor> {
    let len = 1usize << vars.len();
    proptest::collection::vec((-4i8..=4, -4i8..=4), len).prop_map(move |entries| {
        let data: Vec<Cplx> = entries
            .iter()
            .map(|&(re, im)| Cplx::new(f64::from(re) * 0.25, f64::from(im) * 0.25))
            .collect();
        Tensor::new(vars.clone(), data)
    })
}

fn vars3() -> Vec<Var> {
    vec![Var(0), Var(1), Var(2)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: dense -> TDD -> dense is the identity.
    #[test]
    fn roundtrip(t in arb_tensor(vars3())) {
        let mut m = TddManager::new();
        let e = m.from_tensor(&t);
        prop_assert!(m.to_tensor(e, &vars3()).approx_eq(&t));
    }

    /// Canonicity: structurally different construction orders of the same
    /// tensor produce the *same* edge.
    #[test]
    fn canonicity_under_addition_split(t in arb_tensor(vars3())) {
        let mut m = TddManager::new();
        let whole = m.from_tensor(&t);
        // Rebuild from slices: t = sel0 * t|0 + sel1 * t|1.
        let s0 = t.slice(Var(0), false);
        let s1 = t.slice(Var(0), true);
        let e0 = m.from_tensor(&s0);
        let e1 = m.from_tensor(&s1);
        let sel0 = m.selector(Var(0), false);
        let sel1 = m.selector(Var(0), true);
        let p0 = m.contract(sel0, e0, &[]);
        let p1 = m.contract(sel1, e1, &[]);
        let rebuilt = m.add(p0, p1);
        prop_assert_eq!(rebuilt, whole);
    }

    /// Addition matches the dense oracle and is commutative/associative.
    #[test]
    fn addition_laws(a in arb_tensor(vars3()), b in arb_tensor(vars3()), c in arb_tensor(vars3())) {
        let mut m = TddManager::new();
        let (ea, eb, ec) = (m.from_tensor(&a), m.from_tensor(&b), m.from_tensor(&c));
        let ab = m.add(ea, eb);
        prop_assert!(m.to_tensor(ab, &vars3()).approx_eq(&a.add(&b)));
        let ba = m.add(eb, ea);
        prop_assert_eq!(ab, ba);
        let ab_c = m.add(ab, ec);
        let bc = m.add(eb, ec);
        let a_bc = m.add(ea, bc);
        // Associativity holds up to weight tolerance; compare densely.
        prop_assert!(
            m.to_tensor(a_bc, &vars3()).approx_eq(&m.to_tensor(ab_c, &vars3()))
        );
    }

    /// Contraction over every subset of shared variables matches dense.
    #[test]
    fn contraction_matches_dense(
        a in arb_tensor(vec![Var(0), Var(1), Var(2)]),
        b in arb_tensor(vec![Var(1), Var(2), Var(3)]),
        mask in 0u8..4,
    ) {
        let mut m = TddManager::new();
        let ea = m.from_tensor(&a);
        let eb = m.from_tensor(&b);
        let mut sum = Vec::new();
        if mask & 1 != 0 { sum.push(Var(1)); }
        if mask & 2 != 0 { sum.push(Var(2)); }
        let out = m.contract(ea, eb, &sum);
        let expect = Tensor::contract(&a, &b, &VarSet::from_iter(sum.iter().copied()));
        let out_vars: Vec<Var> = expect.vars().iter().collect();
        prop_assert!(m.to_tensor(out, &out_vars).approx_eq(&expect));
    }

    /// Contraction is bilinear: cont(a, b + c) = cont(a, b) + cont(a, c).
    #[test]
    fn contraction_bilinear(
        a in arb_tensor(vec![Var(0), Var(1)]),
        b in arb_tensor(vec![Var(1), Var(2)]),
        c in arb_tensor(vec![Var(1), Var(2)]),
    ) {
        let mut m = TddManager::new();
        let ea = m.from_tensor(&a);
        let eb = m.from_tensor(&b);
        let ec = m.from_tensor(&c);
        let sum = [Var(1)];
        let bc = m.add(eb, ec);
        let lhs = m.contract(ea, bc, &sum);
        let ab = m.contract(ea, eb, &sum);
        let ac = m.contract(ea, ec, &sum);
        let rhs = m.add(ab, ac);
        let vars = [Var(0), Var(2)];
        prop_assert!(m.to_tensor(lhs, &vars).approx_eq(&m.to_tensor(rhs, &vars)));
    }

    /// Slicing then re-selecting loses nothing; slicing twice commutes.
    #[test]
    fn slicing_laws(t in arb_tensor(vars3())) {
        let mut m = TddManager::new();
        let e = m.from_tensor(&t);
        let s01 = {
            let s0 = m.slice(e, Var(0), true);
            m.slice(s0, Var(1), false)
        };
        let s10 = {
            let s1 = m.slice(e, Var(1), false);
            m.slice(s1, Var(0), true)
        };
        // Equal as tensors (structural equality can differ by float
        // association order in the weight products).
        prop_assert!(m.to_tensor(s01, &[Var(2)]).approx_eq(&m.to_tensor(s10, &[Var(2)])));
        let expect = t.slice(Var(0), true).slice(Var(1), false);
        prop_assert!(m.to_tensor(s01, &[Var(2)]).approx_eq(&expect));
    }

    /// Conjugation is an involution and distributes over addition.
    #[test]
    fn conjugation_laws(a in arb_tensor(vars3()), b in arb_tensor(vars3())) {
        let mut m = TddManager::new();
        let ea = m.from_tensor(&a);
        let eb = m.from_tensor(&b);
        let cc = {
            let c1 = m.conj(ea);
            m.conj(c1)
        };
        prop_assert_eq!(cc, ea);
        let sum_then_conj = {
            let s = m.add(ea, eb);
            m.conj(s)
        };
        let conj_then_sum = {
            let ca = m.conj(ea);
            let cb = m.conj(eb);
            m.add(ca, cb)
        };
        // Equal as tensors; structural equality is not guaranteed across
        // different arithmetic orders (weight interning is path-dependent
        // within the tolerance).
        prop_assert!(m
            .to_tensor(sum_then_conj, &vars3())
            .approx_eq(&m.to_tensor(conj_then_sum, &vars3())));
    }

    /// Inner products satisfy conjugate symmetry and positivity.
    #[test]
    fn inner_product_laws(a in arb_tensor(vars3()), b in arb_tensor(vars3())) {
        let mut m = TddManager::new();
        let ea = m.from_tensor(&a);
        let eb = m.from_tensor(&b);
        let ab = m.inner_product(ea, eb, &vars3());
        let ba = m.inner_product(eb, ea, &vars3());
        prop_assert!(ab.approx_eq_with(ba.conj(), 1e-8));
        let aa = m.inner_product(ea, ea, &vars3());
        prop_assert!(aa.im.abs() < 1e-8);
        prop_assert!(aa.re >= -1e-8);
    }

    /// Monotone renaming preserves structure and values.
    #[test]
    fn renaming_preserves(t in arb_tensor(vars3())) {
        use std::collections::BTreeMap;
        let mut m = TddManager::new();
        let e = m.from_tensor(&t);
        let map: BTreeMap<Var, Var> =
            [(Var(0), Var(10)), (Var(1), Var(11)), (Var(2), Var(12))].into();
        let r = m.rename_monotone(e, &map);
        prop_assert_eq!(m.node_count(e), m.node_count(r));
        let expect = t.rename(&map);
        prop_assert!(m.to_tensor(r, &[Var(10), Var(11), Var(12)]).approx_eq(&expect));
    }

    /// Scaling composes multiplicatively and scaling by zero collapses to
    /// the canonical zero edge.
    #[test]
    fn scaling_laws(t in arb_tensor(vars3()), re in -2.0f64..2.0, im in -2.0f64..2.0) {
        let mut m = TddManager::new();
        let e = m.from_tensor(&t);
        let k = Cplx::new(re, im);
        let ke = m.scale(e, k);
        prop_assert!(m.to_tensor(ke, &vars3()).approx_eq(&t.scale(k)));
        let z = m.scale(e, Cplx::ZERO);
        prop_assert_eq!(z, Edge::ZERO);
    }

    /// Dynamic reordering: a random sequence of adjacent-level swaps
    /// keeps every held handle denoting the same tensor, and — because
    /// each swap is its own inverse — replaying the sequence backwards
    /// restores the original variable order *and* the exact canonical
    /// diagram: rebuilding the tensor from scratch hash-conses onto the
    /// same diagram shape and the same dense readout. The readout
    /// comparison is tolerance-tight rather than bit-exact: the inverse
    /// rebuild is bit-for-bit in exact arithmetic (see the `reorder`
    /// module docs and its unit tests), but weight interning snaps
    /// products to existing table entries, and a path whose product
    /// snapped onto a tolerance-close twin comes back within tolerance
    /// of — not identical to — its original f64s. Slot identity is not
    /// asserted either: a swap that collides under snapping legitimately
    /// re-homes the index entry onto the interned twin.
    #[test]
    fn swap_sequence_and_inverse_restore_the_diagram(
        t in arb_tensor(vec![Var(0), Var(1), Var(2), Var(3)]),
        levels in proptest::collection::vec(0u32..3, 1..12),
    ) {
        use std::collections::BTreeMap;
        let vars4 = [Var(0), Var(1), Var(2), Var(3)];
        let mut m = TddManager::new();
        let e = m.from_tensor(&t);
        let nodes_start = m.node_count(e);
        let dense_start = m.to_tensor(e, &vars4);
        // Forward: denotation survives every swap. eval reads structure
        // and weights directly, so this checks the in-place rewrites.
        for &l in &levels {
            m.swap_adjacent_levels(l);
            for bits in 0..16u32 {
                let asn: BTreeMap<Var, bool> = vars4
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, bits >> (3 - i) & 1 == 1))
                    .collect();
                let expect = t.value(&asn);
                prop_assert!(
                    m.eval(e, &asn).approx_eq_with(expect, 1e-9),
                    "assignment {bits:04b} drifted after swapping level {l}"
                );
            }
        }
        // Backward: each swap is an involution, so the reversed sequence
        // is the inverse. The diagram must come back exactly.
        for &l in levels.iter().rev() {
            m.swap_adjacent_levels(l);
        }
        prop_assert_eq!(
            m.var_order(),
            Some(&vars4[..]),
            "inverse sequence must restore the order"
        );
        prop_assert_eq!(m.node_count(e), nodes_start);
        let dense_end = m.to_tensor(e, &vars4);
        for (i, (a, b)) in dense_end
            .as_slice()
            .iter()
            .zip(dense_start.as_slice())
            .enumerate()
        {
            prop_assert!(
                a.approx_eq_with(*b, 1e-9),
                "entry {i}: restored {a:?} drifted from original {b:?}"
            );
        }
    }

    /// The leftmost non-zero assignment really is non-zero and minimal.
    #[test]
    fn first_nonzero_is_minimal(t in arb_tensor(vars3())) {
        use std::collections::BTreeMap;
        let mut m = TddManager::new();
        let e = m.from_tensor(&t);
        match m.first_nonzero_assignment(e, &vars3()) {
            None => prop_assert!(e.is_zero()),
            Some(asn) => {
                let found: usize = asn.iter().fold(0, |acc, &b| (acc << 1) | usize::from(b));
                let assign_of = |bits: usize| -> BTreeMap<Var, bool> {
                    vars3()
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, (bits >> (2 - i)) & 1 == 1))
                        .collect()
                };
                prop_assert!(!m.eval(e, &assign_of(found)).is_zero());
                for smaller in 0..found {
                    prop_assert!(
                        m.eval(e, &assign_of(smaller)).is_zero(),
                        "assignment {smaller:03b} before {found:03b} is non-zero"
                    );
                }
            }
        }
    }
}
