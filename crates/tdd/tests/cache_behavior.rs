//! Behavioural tests for the manager-owned cache subsystem: cross-call
//! reuse, full clearing, capacity bounds, and result equivalence with
//! caching disabled.

use std::collections::BTreeMap;

use qits_num::{Cplx, Mat};
use qits_tdd::{CacheSizes, Edge, TddManager};
use qits_tensor::{Tensor, Var};

fn rand_tensor(vars: &[Var], seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let data: Vec<Cplx> = (0..(1usize << vars.len()))
        .map(|_| Cplx::new(next(), next()))
        .collect();
    Tensor::new(vars.to_vec(), data)
}

#[test]
fn repeated_contraction_is_a_cache_hit() {
    let mut m = TddManager::new();
    let ta = rand_tensor(&[Var(0), Var(1), Var(2)], 1);
    let tb = rand_tensor(&[Var(1), Var(2), Var(3)], 2);
    let ea = m.from_tensor(&ta);
    let eb = m.from_tensor(&tb);

    let first = m.contract(ea, eb, &[Var(1), Var(2)]);
    let after_first = m.stats();
    assert!(
        after_first.cont_cache.inserts > 0,
        "first call must populate"
    );

    let second = m.contract(ea, eb, &[Var(1), Var(2)]);
    let delta = m.stats().since(&after_first);
    assert_eq!(first, second, "memoised result must be identical");
    assert!(
        delta.cont_cache.hits > 0,
        "repeat contraction must hit the manager-owned cache: {delta:?}"
    );
    assert_eq!(
        delta.cont_cache.misses, 0,
        "repeat contraction must not recompute anything"
    );
}

#[test]
fn contraction_cache_survives_across_different_left_operands() {
    // The block-against-basis-state pattern: the same right operand (a
    // "block") contracted against many different states still reuses the
    // sub-contractions that coincide below the root.
    let mut m = TddManager::new();
    let h = Cplx::FRAC_1_SQRT_2;
    let hm = Mat::from_rows(&[&[h, h], &[h, -h]]);
    let gate = m.from_matrix(&hm, &[Var(1)], &[Var(2)]);
    let ket0 = m.basis_ket(&[Var(0), Var(1)], &[false, false]);
    let ket1 = m.basis_ket(&[Var(0), Var(1)], &[true, false]);

    let _ = m.contract(ket0, gate, &[Var(1)]);
    let snapshot = m.stats();
    let _ = m.contract(ket1, gate, &[Var(1)]);
    let delta = m.stats().since(&snapshot);
    assert!(
        delta.cont_cache.hits > 0,
        "shared sub-contraction across basis states must hit: {delta:?}"
    );
}

#[test]
fn clear_caches_empties_every_table() {
    let mut m = TddManager::new();
    let vars = [Var(0), Var(1), Var(2)];
    let ta = rand_tensor(&vars, 3);
    let tb = rand_tensor(&vars, 4);
    let ea = m.from_tensor(&ta);
    let eb = m.from_tensor(&tb);

    // Populate all five operation caches.
    let _ = m.add(ea, eb);
    let _ = m.contract(ea, eb, &[Var(1)]);
    let _ = m.slice(ea, Var(1), true);
    let _ = m.conj(ea);
    let map: BTreeMap<Var, Var> = [(Var(0), Var(5)), (Var(1), Var(6)), (Var(2), Var(7))].into();
    let _ = m.rename_monotone(ea, &map);

    let sizes = m.cache_sizes();
    assert!(sizes.add > 0, "add cache untouched: {sizes:?}");
    assert!(sizes.cont > 0, "cont cache untouched: {sizes:?}");
    assert!(sizes.slice > 0, "slice cache untouched: {sizes:?}");
    assert!(sizes.conj > 0, "conj cache untouched: {sizes:?}");
    assert!(sizes.rename > 0, "rename cache untouched: {sizes:?}");

    m.clear_caches();
    assert_eq!(m.cache_sizes(), CacheSizes::default());

    // Cleared caches must refill and results stay correct.
    let again = m.contract(ea, eb, &[Var(1)]);
    let expect = {
        let mut fresh = TddManager::new();
        let fa = fresh.from_tensor(&ta);
        let fb = fresh.from_tensor(&tb);
        let r = fresh.contract(fa, fb, &[Var(1)]);
        fresh.to_tensor(r, &[Var(0), Var(2)])
    };
    assert!(m.to_tensor(again, &[Var(0), Var(2)]).approx_eq(&expect));
}

#[test]
fn results_identical_with_caching_disabled() {
    // Same operation sequence on a cached and an uncached manager: every
    // produced tensor must match entry for entry, bit for bit.
    let mut cached = TddManager::new();
    let mut uncached = TddManager::new();
    uncached.set_cache_capacity(0);

    let vars = [Var(0), Var(1), Var(2)];
    let out_vars = [Var(0), Var(3)];
    let ta = rand_tensor(&vars, 7);
    let tb = rand_tensor(&[Var(1), Var(2), Var(3)], 8);

    let run = |m: &mut TddManager| -> Vec<Cplx> {
        let ea = m.from_tensor(&ta);
        let eb = m.from_tensor(&tb);
        let sum = m.add(ea, ea);
        let cont = m.contract(ea, eb, &[Var(1), Var(2)]);
        let cont2 = m.contract(ea, eb, &[Var(1), Var(2)]);
        assert_eq!(cont, cont2, "same manager, same inputs, same edge");
        let sliced = m.slice(ea, Var(1), true);
        let conj = m.conj(ea);
        let mut values = Vec::new();
        for (edge, vs) in [
            (sum, &vars[..]),
            (cont, &out_vars[..]),
            (sliced, &[Var(0), Var(2)][..]),
            (conj, &vars[..]),
        ] {
            values.extend(m.to_tensor(edge, vs).as_slice().iter().copied());
        }
        values
    };

    let with_cache = run(&mut cached);
    let without_cache = run(&mut uncached);
    assert!(
        uncached.cache_sizes().total() == 0,
        "disabled cache stored entries"
    );
    assert!(
        cached.cache_sizes().total() > 0,
        "enabled cache stored nothing"
    );
    assert_eq!(with_cache.len(), without_cache.len());
    for (i, (a, b)) in with_cache.iter().zip(without_cache.iter()).enumerate() {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "entry {i} differs: cached {a} vs uncached {b}"
        );
    }
}

#[test]
fn cache_capacity_bounds_table_growth() {
    let mut m = TddManager::new();
    m.set_cache_capacity(64);
    for seed in 0..20u64 {
        let ta = rand_tensor(&[Var(0), Var(1), Var(2)], 100 + seed);
        let tb = rand_tensor(&[Var(1), Var(2), Var(3)], 200 + seed);
        let ea = m.from_tensor(&ta);
        let eb = m.from_tensor(&tb);
        let _ = m.contract(ea, eb, &[Var(1), Var(2)]);
        let _ = m.add(ea, eb);
    }
    let sizes = m.cache_sizes();
    assert!(sizes.add <= 64, "add cache exceeded capacity: {sizes:?}");
    assert!(sizes.cont <= 64, "cont cache exceeded capacity: {sizes:?}");
    // Work of this volume against a 64-slot bound must have collided.
    let stats = m.stats();
    assert!(
        stats.add_cache.evictions > 0 || stats.cont_cache.evictions > 0,
        "expected at least one collision eviction: {stats:?}"
    );
}

#[test]
fn add_cache_reuses_across_calls() {
    let mut m = TddManager::new();
    let vars = [Var(0), Var(1), Var(2)];
    let ea = m.from_tensor(&rand_tensor(&vars, 11));
    let eb = m.from_tensor(&rand_tensor(&vars, 12));
    let r1 = m.add(ea, eb);
    let snapshot = m.stats();
    let r2 = m.add(ea, eb);
    let delta = m.stats().since(&snapshot);
    assert_eq!(r1, r2);
    assert!(delta.add_cache.hits > 0, "repeat add must hit: {delta:?}");
}

#[test]
fn conj_and_slice_and_rename_caches_reuse() {
    let mut m = TddManager::new();
    let vars = [Var(0), Var(1), Var(2)];
    let e = m.from_tensor(&rand_tensor(&vars, 13));

    let c1 = m.conj(e);
    let s1 = m.slice(e, Var(1), false);
    let map: BTreeMap<Var, Var> = [(Var(0), Var(4)), (Var(1), Var(5)), (Var(2), Var(6))].into();
    let r1 = m.rename_monotone(e, &map);

    let snapshot = m.stats();
    assert_eq!(m.conj(e), c1);
    assert_eq!(m.slice(e, Var(1), false), s1);
    assert_eq!(m.rename_monotone(e, &map), r1);
    let delta = m.stats().since(&snapshot);
    assert!(delta.conj_cache.hits > 0, "conj repeat must hit: {delta:?}");
    assert!(
        delta.slice_cache.hits > 0,
        "slice repeat must hit: {delta:?}"
    );
    assert!(
        delta.rename_cache.hits > 0,
        "rename repeat must hit: {delta:?}"
    );
    assert_eq!(delta.conj_cache.misses, 0);
    assert_eq!(delta.slice_cache.misses, 0);
    assert_eq!(delta.rename_cache.misses, 0);
}

#[test]
fn zero_capacity_matches_edge_level_canonicity() {
    // Even without caches, hash-consing alone guarantees canonical edges.
    let mut m = TddManager::new();
    m.set_cache_capacity(0);
    let t = rand_tensor(&[Var(0), Var(1)], 21);
    let a = m.from_tensor(&t);
    let b = m.from_tensor(&t);
    assert_eq!(a, b);
    let z = m.sub(a, b);
    assert_eq!(z, Edge::ZERO);
}
